"""Figure 5(g,h,i): ChaseBench scenarios Doctors, DoctorsFD and LUBM.

These rule sets are "warded by chance" (no null propagation to exploit), so
the experiment checks that the engine remains competitive as a general
chase / query-answering tool.  Paper expectation (shape): comparable times
across engines, with the Skolem/grounding baseline closest on plain Datalog
(LUBM) and the restricted-chase baseline paying its homomorphism checks as
the source instance grows.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, rows_as_dicts
from repro.workloads.chasebench import doctors_fd_scenario, doctors_scenario, lubm_scenario

SIZE_SWEEP = (100, 200, 400)
ENGINES = ("vadalog", "restricted-chase", "skolem-chase")

_rows = []


@pytest.mark.figure("5g")
@pytest.mark.parametrize("size", SIZE_SWEEP)
@pytest.mark.parametrize("engine", ENGINES)
def test_doctors(size, engine, once):
    row = once(run_scenario, doctors_scenario(size), engine)
    row.extra["task"] = "Doctors"
    _rows.append(row)
    assert row.output_facts > 0


@pytest.mark.figure("5h")
@pytest.mark.parametrize("size", SIZE_SWEEP)
@pytest.mark.parametrize("engine", ENGINES)
def test_doctors_fd(size, engine, once):
    row = once(run_scenario, doctors_fd_scenario(size), engine)
    row.extra["task"] = "DoctorsFD"
    _rows.append(row)
    assert row.output_facts > 0


@pytest.mark.figure("5i")
@pytest.mark.parametrize("size", SIZE_SWEEP)
@pytest.mark.parametrize("engine", ENGINES)
def test_lubm(size, engine, once):
    row = once(run_scenario, lubm_scenario(size), engine)
    row.extra["task"] = "LUBM"
    _rows.append(row)
    assert row.output_facts > 0


@pytest.mark.figure("5ghi")
def test_report_figure_5ghi(once):
    once(lambda: None)
    print()
    print(
        format_table(
            rows_as_dicts(_rows),
            columns=["task", "source_facts", "engine", "elapsed_seconds", "output_facts"],
            title="Figure 5(g,h,i) — ChaseBench scenarios across engines",
        )
    )
    assert len(_rows) == 3 * len(SIZE_SWEEP) * len(ENGINES)
