"""Figure 5(a): reasoning times for the eight iWarded scenarios (synthA..synthH).

Paper expectation (shape): synthB and synthH are the fastest (joins through
wards dominate), synthE and synthF the slowest (heavy recursion), synthC is
the baseline mix and synthG behaves like a plain Datalog program.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, rows_as_dicts
from repro.workloads.iwarded import SCENARIO_CONFIGS, iwarded_scenario

FACTS_PER_PREDICATE = 8

_rows = []


@pytest.mark.figure("5a")
@pytest.mark.parametrize("name", list(SCENARIO_CONFIGS))
def test_iwarded_scenario(name, once):
    scenario = iwarded_scenario(name, facts_per_predicate=FACTS_PER_PREDICATE)
    row = once(run_scenario, scenario, "vadalog")
    _rows.append(row)
    assert row.total_facts > 0


@pytest.mark.figure("5a")
def test_report_figure_5a(once):
    once(lambda: None)
    print()
    print(
        format_table(
            rows_as_dicts(_rows),
            columns=[
                "scenario",
                "elapsed_seconds",
                "total_facts",
                "chase_steps",
                "isomorphism_checks",
            ],
            title="Figure 5(a) — iWarded scenarios, Vadalog engine",
        )
    )
    assert len(_rows) == len(SCENARIO_CONFIGS)
