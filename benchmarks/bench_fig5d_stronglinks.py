"""Figure 5(d): SpecStrongLinks and AllStrongLinks over a growing number of companies.

Paper expectation (shape): AllStrongLinks grows steeply with the number of
companies (the output itself is quadratic-ish), while SpecStrongLinks —
restricted to one company — stays nearly flat.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, rows_as_dicts
from repro.workloads.dbpedia import strong_links_scenario

COMPANY_SWEEP = (20, 40, 60)

_rows = []


@pytest.mark.figure("5d")
@pytest.mark.parametrize("companies", COMPANY_SWEEP)
def test_all_strong_links(companies, once):
    scenario = strong_links_scenario(n_companies=companies, n_persons=40, threshold=3)
    row = once(run_scenario, scenario, "vadalog")
    row.extra["task"] = "AllStrongLinks"
    _rows.append(row)
    assert row.total_facts > 0


@pytest.mark.figure("5d")
@pytest.mark.parametrize("companies", COMPANY_SWEEP)
def test_spec_strong_links(companies, once):
    scenario = strong_links_scenario(
        n_companies=companies, n_persons=40, threshold=1, specific_company="company1"
    )
    row = once(run_scenario, scenario, "vadalog")
    row.extra["task"] = "SpecStrongLinks"
    _rows.append(row)
    assert row.total_facts > 0


@pytest.mark.figure("5d")
def test_report_figure_5d(once):
    once(lambda: None)
    print()
    print(
        format_table(
            rows_as_dicts(_rows),
            columns=["task", "companies", "elapsed_seconds", "output_facts"],
            title="Figure 5(d) — strong links between companies",
        )
    )
    assert len(_rows) == 2 * len(COMPANY_SWEEP)
