"""Figure 7: Algorithm 1 (lifted linear forest) vs the trivial isomorphism check.

The ablation of Section 6.6: the same AllPSC-style scenario is run with the
full warded termination strategy and with the "trivial technique" that stores
every generated fact and checks isomorphism globally.  Paper expectation
(shape): the two coincide on small inputs and diverge as the instance grows,
with the trivial technique storing many more facts / performing more
expensive bookkeeping.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, rows_as_dicts
from repro.workloads.dbpedia import allpsc_scenario

PERSON_SWEEP = (50, 100, 200, 400)
COMPANIES = 150

_rows = []


@pytest.mark.figure("7")
@pytest.mark.parametrize("persons", PERSON_SWEEP)
@pytest.mark.parametrize("engine", ["vadalog", "vadalog-trivial"])
def test_allpsc_strategies(persons, engine, once):
    scenario = allpsc_scenario(n_companies=COMPANIES, n_persons=persons)
    row = once(run_scenario, scenario, engine)
    _rows.append(row)
    assert row.output_facts > 0


@pytest.mark.figure("7")
def test_report_figure_7(once):
    once(lambda: None)
    print()
    print(
        format_table(
            rows_as_dicts(_rows),
            columns=[
                "engine",
                "persons",
                "elapsed_seconds",
                "total_facts",
                "isomorphism_checks",
                "stored_facts",
            ],
            title="Figure 7 — warded strategy vs trivial isomorphism check (AllPSC)",
        )
    )
    # Both strategies must compute the same number of output facts per size.
    by_size = {}
    for row in _rows:
        by_size.setdefault(row.params["persons"], {})[row.engine] = row.output_facts
    for size, engines in by_size.items():
        assert engines["vadalog"] == engines["vadalog-trivial"], size
    assert len(_rows) == 2 * len(PERSON_SWEEP)
