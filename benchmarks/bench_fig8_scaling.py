"""Figure 8: scalability along database size, number of rules, rule width and arity.

Paper expectation (shape): (a) polynomial, close-to-linear growth in the
source size; (b) linear growth in the number of independent rule blocks;
(c) moderate growth when join rules get wider; (d) nearly flat behaviour
when the predicate arity grows.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, rows_as_dicts
from repro.workloads.scaling import (
    arity_scenario,
    atom_count_scenario,
    dbsize_scenario,
    rule_count_scenario,
)

_rows = {"dbsize": [], "rules": [], "atoms": [], "arity": []}


@pytest.mark.figure("8a")
@pytest.mark.parametrize("facts", (5, 10, 20))
def test_dbsize(facts, once):
    row = once(run_scenario, dbsize_scenario(facts), "vadalog")
    row.extra["x"] = facts
    _rows["dbsize"].append(row)
    assert row.total_facts > 0


@pytest.mark.figure("8b")
@pytest.mark.parametrize("blocks", (1, 2, 3))
def test_rule_count(blocks, once):
    row = once(run_scenario, rule_count_scenario(blocks, facts_per_predicate=5), "vadalog")
    row.extra["x"] = blocks * 100
    _rows["rules"].append(row)
    assert row.total_facts > 0


@pytest.mark.figure("8c")
@pytest.mark.parametrize("atoms", (2, 4, 8))
def test_atom_count(atoms, once):
    row = once(run_scenario, atom_count_scenario(atoms, facts_per_predicate=5), "vadalog")
    row.extra["x"] = atoms
    _rows["atoms"].append(row)
    assert row.total_facts > 0


@pytest.mark.figure("8d")
@pytest.mark.parametrize("arity", (3, 6, 12))
def test_arity(arity, once):
    row = once(run_scenario, arity_scenario(arity, facts_per_predicate=5), "vadalog")
    row.extra["x"] = arity
    _rows["arity"].append(row)
    assert row.total_facts > 0


@pytest.mark.figure("8")
def test_report_figure_8(once):
    once(lambda: None)
    print()
    for key, title in (
        ("dbsize", "Figure 8(a) — database size"),
        ("rules", "Figure 8(b) — number of rules"),
        ("atoms", "Figure 8(c) — body atoms per join rule"),
        ("arity", "Figure 8(d) — predicate arity"),
    ):
        print(
            format_table(
                rows_as_dicts(_rows[key]),
                columns=["scenario", "x", "elapsed_seconds", "total_facts", "output_facts"],
                title=title,
            )
        )
        print()
    assert all(_rows[key] for key in _rows)
