"""Figure 5(e,f): industrial validation — company control on ownership graphs.

AllReal/QueryReal use a denser "real-like" scale-free graph; AllRand/QueryRand
use the random scale-free graphs generated with the learned parameters
(α=0.71, β=0.09, γ=0.2).  Paper expectation (shape): growth is slow in the
number of companies, the synthetic graphs track the real-like ones closely,
and restricting to specific query pairs does not change the picture much.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, rows_as_dicts
from repro.workloads.companies import ScaleFreeConfig, control_scenario

COMPANY_SWEEP = (25, 50, 100)
REAL_LIKE = ScaleFreeConfig(alpha=0.65, beta=0.15, gamma=0.20, seed=5)

_rows = []


@pytest.mark.figure("5e")
@pytest.mark.parametrize("companies", COMPANY_SWEEP)
@pytest.mark.parametrize("variant", ["all", "query"])
def test_real_like_graphs(companies, variant, once):
    scenario = control_scenario(companies, variant=variant, config=REAL_LIKE)
    row = once(run_scenario, scenario, "vadalog")
    row.extra["graph"] = "real-like"
    row.extra["task"] = "AllReal" if variant == "all" else "QueryReal"
    _rows.append(row)
    assert row.total_facts > 0


@pytest.mark.figure("5f")
@pytest.mark.parametrize("companies", COMPANY_SWEEP)
@pytest.mark.parametrize("variant", ["all", "query"])
def test_random_scale_free_graphs(companies, variant, once):
    scenario = control_scenario(companies, variant=variant)
    row = once(run_scenario, scenario, "vadalog")
    row.extra["graph"] = "scale-free"
    row.extra["task"] = "AllRand" if variant == "all" else "QueryRand"
    _rows.append(row)
    assert row.total_facts > 0


@pytest.mark.figure("5ef")
def test_report_figure_5ef(once):
    once(lambda: None)
    print()
    print(
        format_table(
            rows_as_dicts(_rows),
            columns=["task", "graph", "companies", "edges", "elapsed_seconds", "output_facts"],
            title="Figure 5(e,f) — company control on ownership graphs",
        )
    )
    assert len(_rows) == 4 * len(COMPANY_SWEEP)
