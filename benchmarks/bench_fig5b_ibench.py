"""Figure 5(b): iBench STB-128 / ONT-256 — Vadalog vs chase-based baselines.

Paper expectation (shape): the Vadalog engine outperforms both the
restricted-chase (Graal/LLunatic/PDQ-style) and the Skolem-grounding
(DLV/RDFox-style) baselines on these non-trivially warded scenarios, and
ONT-256 is substantially heavier than STB-128 for every engine.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_table, rows_as_dicts
from repro.workloads.ibench import ibench_scenario

SOURCE_FACTS = 8
ENGINES = ("vadalog", "restricted-chase", "skolem-chase")

_rows = []


@pytest.mark.figure("5b")
@pytest.mark.parametrize("scenario_name", ["STB-128", "ONT-256"])
@pytest.mark.parametrize("engine", ENGINES)
def test_ibench(scenario_name, engine, once):
    scenario = ibench_scenario(scenario_name, source_facts=SOURCE_FACTS)
    row = once(run_scenario, scenario, engine)
    _rows.append(row)
    assert row.total_facts > 0


@pytest.mark.figure("5b")
def test_report_figure_5b(once):
    once(lambda: None)
    print()
    print(
        format_table(
            rows_as_dicts(_rows),
            columns=["scenario", "engine", "elapsed_seconds", "total_facts", "output_facts"],
            title="Figure 5(b) — iBench scenarios across engines",
        )
    )
    assert len(_rows) == len(ENGINES) * 2
