#!/usr/bin/env python
"""Run the fig5–fig8 benchmark scenarios at small scale across executors.

This is the perf-trajectory harness of the repository: it runs every
benchmark family of the paper's evaluation (Section 6) at laptop scale on
the selected chase executors — ``naive`` (interpreted), ``compiled`` (the
slot-machine default), ``streaming`` (the pull-based pipeline of PR 2) and
``parallel`` (the sharded worker-pool chase of PR 4) — in the same
process, and writes ``BENCH_PR10.json`` with per-scenario wall-clock,
facts/second and compiled-over-naive speedups, each row tagged with its
executor name.

Since PR 10 the report carries the **scaling-curve sweeps**: the
parametric iWarded generator is swept along every knob axis (recursion
depth, existential density, arity, join fan-in, fact-set size with skew)
and each grid point is measured on the sweep executors and answer-checked
against the naive executor — the curves the
``tools/check_bench.py --scaling-curves`` gate gates at smoke scale.

Since PR 5 the report carries the **magic-rewrite section**: the
point-query workloads (companies single-ancestor control, DBpedia
single-entity PSC, LUBM-style bound queries) are run with
``reason(query=..., rewrite="none")`` and ``rewrite="magic"`` on the
compiled, streaming and parallel executors, asserting identical certain
answers and recording the derived-fact and wall-clock reductions the
existential-safe magic-set rewriting achieves.

Since PR 4 the report carries the **parallel worker sweep**: the psc, lubm
and fig8-scaling scenarios are run on the compiled executor and on
``executor="parallel"`` at 1, 2 and 4 workers, recording the speedup over
compiled per worker count together with the machine's CPU count — on a
GIL build of CPython the thread backend cannot beat compiled on CPU-bound
joins regardless of cores, so the sweep also runs the ``fork`` process
backend whenever the machine has more than one core.

For the streaming executor the report adds the **streaming-vs-
materialization** comparison: the wall-clock latency until the first answer
fact reaches a sink and the number of facts resident at that moment,
against the full materialization size of the compiled chase.  On
recursion-heavy scenarios streaming must reach a first answer while holding
strictly fewer resident facts than full materialization.

Since PR 3 the report also carries the **datasource backend** section:
the companies and DBpedia scenarios are run once from the in-memory
database and once end-to-end from a SQLite file (``@bind`` datasources) on
both the compiled and the streaming executor, asserting identical answers,
and the majority-control scenario demonstrates selection pushdown — the
SQLite source's ``rows_scanned`` stays strictly below the full relation
because the ``W > 0.5`` filter runs inside the database.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py              # full small-scale run
    PYTHONPATH=src python benchmarks/run_all.py --smoke      # CI smoke (tiny scale)
    PYTHONPATH=src python benchmarks/run_all.py --executor compiled streaming
    PYTHONPATH=src python benchmarks/run_all.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import statistics
import sys
import sysconfig
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.reasoner import EXECUTORS, VadalogReasoner  # noqa: E402
from repro.engine.service import ReasoningService  # noqa: E402
from repro.obs.report import top_rules  # noqa: E402
from repro.workloads import sweep as scaling_sweep  # noqa: E402
from repro.workloads import (  # noqa: E402
    arity_scenario,
    atom_count_scenario,
    control_point_query_scenario,
    control_scenario,
    dbsize_scenario,
    doctors_scenario,
    ibench_scenario,
    iwarded_scenario,
    lubm_point_query_scenario,
    lubm_scenario,
    majority_control_scenario,
    psc_point_query_scenario,
    psc_scenario,
    rule_count_scenario,
    service_operations,
    service_scenario,
    strong_links_scenario,
)

# name -> (figure, chase_heavy, recursion_heavy, full-scale factory, smoke factory).
# "chase heavy" marks scenarios whose runtime is dominated by join/chase
# work (the compiled executor is expected to speed those up ≥ 2×);
# "recursion heavy" marks scenarios with deep recursive derivations, where
# the streaming pipeline must reach a first answer while resident facts are
# still a fraction of the full materialization.
SCENARIOS = {
    "bench_fig5a_iwarded": (
        "5a",
        True,
        True,
        lambda: iwarded_scenario("synthA", facts_per_predicate=8),
        lambda: iwarded_scenario("synthA", facts_per_predicate=3),
    ),
    "bench_fig5b_ibench": (
        "5b",
        False,
        False,
        lambda: ibench_scenario("STB-128", source_facts=5),
        lambda: ibench_scenario("STB-128", source_facts=2),
    ),
    "bench_fig5c_psc": (
        "5c",
        True,
        True,
        lambda: psc_scenario(n_companies=300, n_persons=150),
        lambda: psc_scenario(n_companies=20, n_persons=12),
    ),
    "bench_fig5d_stronglinks": (
        "5d",
        False,
        False,
        lambda: strong_links_scenario(n_companies=50, n_persons=45, threshold=3),
        lambda: strong_links_scenario(n_companies=12, n_persons=10, threshold=2),
    ),
    "bench_fig5gh_doctors": (
        "5g-h",
        False,
        False,
        lambda: doctors_scenario(400),
        lambda: doctors_scenario(60),
    ),
    "bench_fig5i_lubm": (
        "5i",
        True,
        True,
        lambda: lubm_scenario(2500),
        lambda: lubm_scenario(100),
    ),
    "bench_fig6_control": (
        "6",
        False,
        True,
        lambda: control_scenario(120),
        lambda: control_scenario(30),
    ),
    "bench_fig8_scaling": (
        "8a",
        True,
        True,
        lambda: dbsize_scenario(20),
        lambda: dbsize_scenario(6),
    ),
    "bench_fig8_rules": (
        "8b",
        True,
        True,
        lambda: rule_count_scenario(3, facts_per_predicate=6),
        lambda: rule_count_scenario(2, facts_per_predicate=3),
    ),
    "bench_fig8_atoms": (
        "8c",
        True,
        True,
        lambda: atom_count_scenario(6, facts_per_predicate=6),
        lambda: atom_count_scenario(3, facts_per_predicate=3),
    ),
    "bench_fig8_arity": (
        "8d",
        True,
        True,
        lambda: arity_scenario(10, facts_per_predicate=8),
        lambda: arity_scenario(4, facts_per_predicate=3),
    ),
}

SPEEDUP_TARGET = 2.0
#: Target for the parallel worker sweep: parallel at 4 workers should beat
#: the compiled executor by this factor on multi-core machines.
PARALLEL_SPEEDUP_TARGET = 1.5
SWEEP_WORKER_COUNTS = (1, 2, 4)
SWEEP_SCENARIOS = ("bench_fig5c_psc", "bench_fig5i_lubm", "bench_fig8_scaling")

#: Point-query workloads of the magic-rewrite section: name -> (full-scale
#: factory, smoke factory).  Each scenario carries its bound query atom.
MAGIC_SCENARIOS = {
    "magic_control_point": (
        lambda: control_point_query_scenario(120),
        lambda: control_point_query_scenario(30),
    ),
    "magic_psc_point": (
        lambda: psc_point_query_scenario(200, 150),
        lambda: psc_point_query_scenario(30, 20),
    ),
    "magic_lubm_member": (
        lambda: lubm_point_query_scenario(2500, kind="member"),
        lambda: lubm_point_query_scenario(100, kind="member"),
    ),
    "magic_lubm_takes": (
        lambda: lubm_point_query_scenario(2500, kind="takes"),
        lambda: lubm_point_query_scenario(100, kind="takes"),
    ),
}
#: Acceptance target: the magic run must derive at least this many times
#: fewer facts than the unrewritten run on ≥ 2 point-query workloads.
MAGIC_FACT_REDUCTION_TARGET = 2.0
MAGIC_EXECUTORS = ("compiled", "streaming", "parallel")

#: Telemetry section (PR 7): traced-over-untraced wall-clock design goal of
#: the observability layer.  The CI gate (``check_bench.py
#: --trace-overhead``) allows 10%; this is the tighter target the report
#: documents.  The tiny smoke scenarios are noise-dominated, so the
#: headline number is the median ratio across all (scenario, executor)
#: pairs, not any single pair.
TRACE_OVERHEAD_TARGET = 1.02
TELEMETRY_EXECUTORS = ("compiled", "streaming", "parallel")
TELEMETRY_RUNS = 3

#: Service-throughput section (PR 9): the resident reasoner must sustain at
#: least this many times the queries/sec of a from-scratch re-chase service
#: on the mixed update/query workload.
SERVICE_SPEEDUP_TARGET = 2.0
SERVICE_DEFAULT_RATIOS = ("1:10",)


def _parse_ratio(text: str):
    updates, queries = text.split(":", 1)
    return int(updates), int(queries)


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_service_resident(scenario, operations) -> dict:
    """Drive the mixed stream through the resident ReasoningService."""
    service = ReasoningService(scenario.program.copy(), database=scenario.database)
    latencies = []
    started = time.perf_counter()
    for kind, payload in operations:
        if kind == "upsert":
            service.upsert(payload)
        elif kind == "retract":
            service.retract(payload)
        else:
            t0 = time.perf_counter()
            service.query(payload)
            latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    stats = service.stats()
    return {
        "elapsed_seconds": round(elapsed, 4),
        "queries": len(latencies),
        "queries_per_second": round(len(latencies) / elapsed, 1) if elapsed > 0 else None,
        "p50_query_seconds": round(_percentile(latencies, 0.50), 6),
        "p99_query_seconds": round(_percentile(latencies, 0.99), 6),
        "cache_hits": stats["cache_hits"],
        "invalidations": stats["invalidations"],
        "overdeleted": stats["resident"]["overdeleted"],
        "rederived": stats["resident"]["rederived"],
        "final_reach": sorted(service.query().ground_tuples("Reach")),
    }


def _run_service_scratch(scenario, operations) -> dict:
    """The from-scratch baseline: re-chase on the first query after a write.

    This is the honest non-resident service: answers are memoized between
    writes (anything less would strawman the baseline), but every write
    invalidates the materialisation and the next query pays a full chase.
    """
    from repro.engine.reasoner import _filter_answers
    from repro.core.parser import parse_atom

    reasoner = VadalogReasoner(scenario.program.copy())
    edges = {tuple(row) for row in scenario.database.relation("Edge")}
    sources = [tuple(row) for row in scenario.database.relation("Source")]
    result = None
    latencies = []
    started = time.perf_counter()
    for kind, payload in operations:
        if kind == "upsert":
            edges.update(tuple(row) for row in payload.get("Edge", ()))
            sources.extend(tuple(row) for row in payload.get("Source", ()))
            result = None
        elif kind == "retract":
            edges.difference_update(tuple(row) for row in payload.get("Edge", ()))
            result = None
        else:
            t0 = time.perf_counter()
            if result is None:
                result = reasoner.reason(
                    database={"Edge": sorted(edges), "Source": sources},
                    outputs=scenario.outputs,
                )
            answers = result.answers
            if payload is not None:
                answers = _filter_answers(answers, parse_atom(payload))
            latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    final = reasoner.reason(
        database={"Edge": sorted(edges), "Source": sources}, outputs=scenario.outputs
    )
    return {
        "elapsed_seconds": round(elapsed, 4),
        "queries": len(latencies),
        "queries_per_second": round(len(latencies) / elapsed, 1) if elapsed > 0 else None,
        "p50_query_seconds": round(_percentile(latencies, 0.50), 6),
        "p99_query_seconds": round(_percentile(latencies, 0.99), 6),
        "final_reach": sorted(final.answers.ground_tuples("Reach")),
    }


def run_service_throughput(smoke: bool, ratios=SERVICE_DEFAULT_RATIOS) -> dict:
    """Resident vs from-scratch service loop at the given update:query ratios.

    Both services replay the identical operation stream; the section
    records sustained queries/sec, p50/p99 query latency and the resident
    speedup, and asserts the two services agree on the final ``Reach``
    relation (the ground differential check of the workload).
    """
    n_nodes = 30 if smoke else 50
    n_ops = 150 if smoke else 400
    section = {
        "speedup_target": SERVICE_SPEEDUP_TARGET,
        "n_nodes": n_nodes,
        "n_ops": n_ops,
        "ratios": {},
    }
    meets = []
    for ratio_text in ratios:
        ratio = _parse_ratio(ratio_text)
        scenario = service_scenario(n_nodes=n_nodes)
        operations = list(
            service_operations(scenario, n_ops=n_ops, update_ratio=ratio)
        )
        print(f"== service throughput: update:query {ratio_text}", flush=True)
        resident = _run_service_resident(scenario, operations)
        scratch = _run_service_scratch(service_scenario(n_nodes=n_nodes), operations)
        answers_identical = resident.pop("final_reach") == scratch.pop("final_reach")
        speedup = (
            round(resident["queries_per_second"] / scratch["queries_per_second"], 2)
            if scratch["queries_per_second"]
            else None
        )
        if speedup is not None and speedup >= SERVICE_SPEEDUP_TARGET:
            meets.append(ratio_text)
        section["ratios"][ratio_text] = {
            "resident": resident,
            "from_scratch": scratch,
            "speedup_vs_scratch": speedup,
            "answers_identical": answers_identical,
        }
        print(
            f"   resident {resident['queries_per_second']} q/s "
            f"(p50 {resident['p50_query_seconds'] * 1000:.2f}ms, "
            f"p99 {resident['p99_query_seconds'] * 1000:.2f}ms) vs "
            f"scratch {scratch['queries_per_second']} q/s — "
            f"speedup {speedup}x, identical={answers_identical}",
            flush=True,
        )
    section["ratios_meeting_target"] = meets
    section["meets_2x_target"] = bool(meets)
    return section


def run_scaling_sweeps(smoke: bool) -> dict:
    """The scaling-curve section: grid sweeps along every generator knob.

    Delegates to :func:`repro.workloads.sweep.run_sweep`: each knob axis of
    the parametric iWarded generator (recursion depth, existential density,
    arity, join fan-in, fact-set size) is swept over >= 4 grid values on the
    sweep executors, producing per-point wall-clock, derived-fact and
    peak-resident-fact curves.  Every point is answer-checked against the
    naive executor — the run aborts on a mismatch instead of reporting
    curves it cannot vouch for.
    """
    print("== scaling-curve sweeps (parametric iWarded grid)", flush=True)
    section = scaling_sweep.run_sweep(smoke=smoke, answer_check=True)
    for axis, curve in section["axes"].items():
        by_executor = {}
        for point in curve["points"]:
            by_executor.setdefault(point["executor"], []).append(point)
        for executor, points in by_executor.items():
            trail = " ".join(
                f"{p['value']}:{p['elapsed_seconds']:.3f}s/{p['derived_facts']}f"
                for p in points
            )
            print(f"   {axis} [{executor}]: {trail}", flush=True)
    return section


def run_one(
    factory,
    executor: str,
    parallelism=None,
    parallel_backend: str = "threads",
    trace: bool = False,
) -> dict:
    scenario = factory()
    started = time.perf_counter()
    kwargs = {}
    if executor == "parallel":
        kwargs = {"parallelism": parallelism, "parallel_backend": parallel_backend}
    reasoner = VadalogReasoner(
        scenario.program.copy(),
        executor=executor,
        base_path=scenario.base_path,
        **kwargs,
    )
    result = reasoner.reason(
        database=scenario.database, outputs=scenario.outputs, trace=trace
    )
    elapsed = time.perf_counter() - started
    total_facts = len(result.chase.store)
    row = {
        "executor": executor,
        "elapsed_seconds": round(elapsed, 4),
        "total_facts": total_facts,
        "derived_facts": len(result.chase.derived_facts()),
        "facts_per_second": round(total_facts / elapsed, 1) if elapsed > 0 else None,
        "rounds": result.chase.rounds,
        "chase_steps": result.chase.chase_steps,
        "peak_resident_facts": result.chase.peak_resident_facts,
        "answers": len(result.answers),
    }
    if executor == "streaming":
        extra = result.chase.extra_stats
        row["pruned_rules"] = extra.get("pipeline_pruned_rules")
        row["facts_pulled"] = extra.get("pipeline_facts_pulled")
        row["pull_protocol"] = extra.get("pull_protocol")
    if executor == "parallel":
        extra = result.chase.extra_stats
        row["workers"] = extra.get("parallel_workers")
        row["backend"] = extra.get("parallel_backend")
        imbalances = [
            r["imbalance"] for r in result.shard_balance if r.get("imbalance")
        ]
        row["mean_shard_imbalance"] = (
            round(sum(imbalances) / len(imbalances), 3) if imbalances else None
        )
    if result.source_stats:
        row["datasources"] = result.source_stats
    if trace and result.trace is not None:
        row["top_rules"] = top_rules(result.trace, limit=5)
    return row


def run_worker_sweep(smoke: bool, executors, only=None) -> dict:
    """Parallel worker sweep on the chase-heavy headline scenarios.

    Runs compiled once per scenario and ``executor="parallel"`` at 1, 2 and
    4 workers (threads backend; plus the fork process backend on multi-core
    machines, where it is the only way past the GIL for pure-Python joins),
    recording the speedup over compiled per worker count.
    """
    if "parallel" not in executors:
        return {}
    cpus = os.cpu_count() or 1
    backends = ["threads"]
    if cpus > 1 and "fork" in multiprocessing.get_all_start_methods():
        backends.append("fork")
    section = {
        "worker_counts": list(SWEEP_WORKER_COUNTS),
        "backends": backends,
        "cpu_count": cpus,
        "gil_build": not bool(sysconfig.get_config_var("Py_GIL_DISABLED")),
        "target": PARALLEL_SPEEDUP_TARGET,
        "scenarios": {},
    }
    meets = []
    for name in SWEEP_SCENARIOS:
        if only and name not in only:
            continue
        figure, _heavy, _recursive, full, smoke_factory = SCENARIOS[name]
        factory = smoke_factory if smoke else full
        print(f"== worker sweep: {name} (figure {figure})", flush=True)
        compiled_row = run_one(factory, "compiled")
        runs = {}
        best_at_4 = None
        for backend in backends:
            for workers in SWEEP_WORKER_COUNTS:
                row = run_one(
                    factory, "parallel", parallelism=workers, parallel_backend=backend
                )
                speedup = (
                    round(compiled_row["elapsed_seconds"] / row["elapsed_seconds"], 2)
                    if row["elapsed_seconds"] > 0
                    else None
                )
                row["speedup_vs_compiled"] = speedup
                runs[f"{backend}-w{workers}"] = row
                if workers == 4 and speedup is not None:
                    best_at_4 = max(best_at_4 or 0.0, speedup)
                print(
                    f"   {backend} w={workers}: {row['elapsed_seconds']:.3f}s "
                    f"(compiled {compiled_row['elapsed_seconds']:.3f}s, "
                    f"speedup {speedup})",
                    flush=True,
                )
        section["scenarios"][name] = {
            "compiled": compiled_row,
            "parallel": runs,
            "best_speedup_at_4_workers": best_at_4,
        }
        if best_at_4 is not None and best_at_4 >= PARALLEL_SPEEDUP_TARGET:
            meets.append(name)
    section["scenarios_meeting_target_at_4_workers"] = meets
    section["meets_target_on_two_scenarios"] = len(meets) >= 2
    if cpus <= 1:
        section["note"] = (
            "single-core machine: wall-clock parallel speedup is not "
            "achievable here (the sweep documents overhead); on a multi-core "
            "host the fork backend rows carry the speedup evidence"
        )
    return section


def run_backend_comparison(smoke: bool) -> dict:
    """Memory vs SQLite backends on companies/dbpedia, both executors.

    Each scenario is generated twice from the same seed — once with its
    extensional data in memory, once exported to a SQLite file and read
    back through ``@bind`` — and run on the compiled and streaming
    executors.  The section records answer agreement plus the SQLite source
    counters: per-predicate rows scanned vs. full relation size (the
    pushdown evidence) and the bind/read traffic.
    """
    scale = 30 if smoke else 120
    psc_scale = (20, 12) if smoke else (200, 150)
    families = {
        "company-control": (
            lambda: control_scenario(scale),
            lambda d: control_scenario(scale, backend="sqlite", data_dir=d),
        ),
        "dbpedia-psc": (
            lambda: psc_scenario(*psc_scale),
            lambda d: psc_scenario(*psc_scale, backend="sqlite", data_dir=d),
        ),
        "company-majority-control": (
            lambda: majority_control_scenario(scale),
            lambda d: majority_control_scenario(scale, backend="sqlite", data_dir=d),
        ),
    }
    section = {}
    for name, (memory_factory, sqlite_factory) in families.items():
        row = {"executors": {}}
        with tempfile.TemporaryDirectory() as tmp:
            for executor in ("compiled", "streaming"):
                results = {}
                for backend, factory in (
                    ("memory", memory_factory),
                    ("sqlite", lambda: sqlite_factory(tmp)),
                ):
                    scenario = factory()
                    reasoner = VadalogReasoner(
                        scenario.program.copy(),
                        executor=executor,
                        base_path=scenario.base_path,
                    )
                    started = time.perf_counter()
                    results[backend] = (
                        reasoner.reason(
                            database=scenario.database, outputs=scenario.outputs
                        ),
                        time.perf_counter() - started,
                        scenario,
                    )
                memory_result, memory_elapsed, scenario = results["memory"]
                sqlite_result, sqlite_elapsed, _ = results["sqlite"]
                identical = all(
                    memory_result.ground_tuples(p) == sqlite_result.ground_tuples(p)
                    and memory_result.answers.count(p)
                    == sqlite_result.answers.count(p)
                    for p in scenario.outputs
                )
                sources = sqlite_result.source_stats
                pushdown_sources = {
                    predicate: {
                        "rows_scanned": stats["rows_scanned"],
                        "relation_rows": stats["relation_rows"],
                        "pushdown": stats["pushdown"],
                    }
                    for predicate, stats in sources.items()
                    if stats["pushdown"] is not None
                }
                row["executors"][executor] = {
                    "answers_identical": identical,
                    "memory_seconds": round(memory_elapsed, 4),
                    "sqlite_seconds": round(sqlite_elapsed, 4),
                    "sqlite_sources": sources,
                    "pushdown_sources": pushdown_sources,
                    "pushdown_rows_saved": sum(
                        (s["relation_rows"] or 0) - s["rows_scanned"]
                        for s in pushdown_sources.values()
                    ),
                }
        section[name] = row
    return section


def run_magic_comparison(smoke: bool, executors) -> dict:
    """Magic-rewritten vs unrewritten point queries, on every executor.

    Each point-query workload is run twice per executor —
    ``reason(query=..., rewrite="none")`` (full chase, answers filtered)
    and ``reason(query=..., rewrite="magic")`` (existential-safe magic-set
    rewriting) — asserting identical certain answers and recording the
    wall-clock and derived-fact reductions.  The headline acceptance
    metric is the compiled executor's derived-fact reduction: ≥
    ``MAGIC_FACT_REDUCTION_TARGET`` on at least two workloads.
    """
    chosen = [e for e in MAGIC_EXECUTORS if e in executors] or ["compiled"]
    section = {
        "executors": chosen,
        "fact_reduction_target": MAGIC_FACT_REDUCTION_TARGET,
        "scenarios": {},
    }
    meets = []
    for name, (full, smoke_factory) in MAGIC_SCENARIOS.items():
        factory = smoke_factory if smoke else full
        print(f"== magic rewrite: {name}", flush=True)
        row = {"query": factory().query, "executors": {}}
        for executor in chosen:
            runs = {}
            for rewrite in ("none", "magic"):
                scenario = factory()
                reasoner = VadalogReasoner(scenario.program.copy(), executor=executor)
                started = time.perf_counter()
                result = reasoner.reason(
                    database=scenario.database,
                    query=scenario.query,
                    rewrite=rewrite,
                )
                elapsed = time.perf_counter() - started
                runs[rewrite] = {
                    "elapsed_seconds": round(elapsed, 4),
                    "derived_facts": len(result.chase.derived_facts()),
                    "total_facts": len(result.chase.store),
                    "answers": len(result.answers),
                    "result": result,
                }
            predicate = row["query"].split("(", 1)[0]
            identical = (
                runs["none"]["result"].ground_tuples(predicate)
                == runs["magic"]["result"].ground_tuples(predicate)
            )
            derived_none = runs["none"]["derived_facts"]
            derived_magic = runs["magic"]["derived_facts"]
            # max(1, ...) keeps the ratio finite when the magic run needs no
            # derivations at all (the denominator then undersells the win).
            fact_reduction = round(derived_none / max(1, derived_magic), 2)
            speedup = (
                round(
                    runs["none"]["elapsed_seconds"] / runs["magic"]["elapsed_seconds"],
                    2,
                )
                if runs["magic"]["elapsed_seconds"] > 0
                else None
            )
            magic_stats = runs["magic"]["result"].magic_rewriting
            for run in runs.values():
                run.pop("result")
            row["executors"][executor] = {
                "unrewritten": runs["none"],
                "magic": runs["magic"],
                "answers_identical": identical,
                "derived_fact_reduction": fact_reduction,
                "speedup": speedup,
                "rewrite": magic_stats.stats() if magic_stats else None,
            }
            print(
                f"   {executor}: none={runs['none']['elapsed_seconds']:.3f}s "
                f"({derived_none} derived) magic="
                f"{runs['magic']['elapsed_seconds']:.3f}s ({derived_magic} derived) "
                f"reduction={fact_reduction}x identical={identical}",
                flush=True,
            )
        compiled_row = row["executors"].get("compiled")
        if (
            compiled_row
            and compiled_row["derived_fact_reduction"] is not None
            and compiled_row["derived_fact_reduction"] >= MAGIC_FACT_REDUCTION_TARGET
        ):
            meets.append(name)
        section["scenarios"][name] = row
    section["scenarios_meeting_fact_reduction_target"] = sorted(meets)
    section["meets_target_on_two_workloads"] = len(meets) >= 2
    section["answers_identical_everywhere"] = all(
        run["answers_identical"]
        for row in section["scenarios"].values()
        for run in row["executors"].values()
    )
    return section


def run_telemetry_comparison(smoke: bool, executors, only=None) -> dict:
    """Traced vs untraced wall-clock per scenario, plus per-rule hot spots.

    Every scenario is run ``TELEMETRY_RUNS`` times untraced and traced
    (interleaved, median-of) on each selected executor; the section records
    the overhead ratio and the traced run's ``top_rules`` aggregation — the
    per-rule observability evidence of the telemetry layer.
    """
    chosen = [e for e in TELEMETRY_EXECUTORS if e in executors] or ["compiled"]
    section = {
        "executors": chosen,
        "overhead_target": TRACE_OVERHEAD_TARGET,
        "runs_per_median": TELEMETRY_RUNS,
        "scenarios": {},
    }
    ratios = []
    for name, (_figure, _heavy, _recursive, full, smoke_factory) in SCENARIOS.items():
        if only and name not in only:
            continue
        factory = smoke_factory if smoke else full
        print(f"== telemetry: {name}", flush=True)
        row = {}
        for executor in chosen:
            untraced, traced = [], []
            traced_row = None
            for _ in range(TELEMETRY_RUNS):
                untraced.append(run_one(factory, executor)["elapsed_seconds"])
                traced_row = run_one(factory, executor, trace=True)
                traced.append(traced_row["elapsed_seconds"])
            untraced_median = statistics.median(untraced)
            traced_median = statistics.median(traced)
            overhead = (
                round(traced_median / untraced_median, 3)
                if untraced_median > 0
                else None
            )
            if overhead is not None:
                ratios.append(overhead)
            row[executor] = {
                "untraced_seconds": untraced_median,
                "traced_seconds": traced_median,
                "overhead_ratio": overhead,
                "top_rules": traced_row.get("top_rules", []),
            }
            print(
                f"   {executor}: untraced={untraced_median:.4f}s "
                f"traced={traced_median:.4f}s overhead={overhead}x",
                flush=True,
            )
        section["scenarios"][name] = row
    section["median_overhead_ratio"] = (
        round(statistics.median(ratios), 3) if ratios else None
    )
    return section


def run_first_answer(factory) -> dict:
    """Measure the lazy streaming path: latency + residency at first answer."""
    scenario = factory()
    reasoner = VadalogReasoner(scenario.program.copy(), executor="streaming")
    started = time.perf_counter()
    lazy = reasoner.stream(database=scenario.database, outputs=scenario.outputs)
    first = lazy.first_answer()
    latency = time.perf_counter() - started
    facts_at_first = len(lazy.chase.store)
    lazy.complete()
    return {
        "first_answer_seconds": round(latency, 4),
        "found_answer": first is not None,
        "facts_at_first_answer": facts_at_first,
        "facts_at_completion": len(lazy.chase.store),
        "peak_resident_buffer_items": lazy.chase.extra_stats.get(
            "pipeline_peak_resident_buffer_items"
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny scale (CI)")
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR10.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--only", nargs="*", help="run only the named scenarios", default=None
    )
    parser.add_argument(
        "--service-ratios",
        nargs="*",
        default=list(SERVICE_DEFAULT_RATIOS),
        metavar="U:Q",
        help="update:query ratios of the service-throughput section "
        "(e.g. 1:10 1:1 10:1)",
    )
    parser.add_argument(
        "--executor",
        nargs="*",
        choices=list(EXECUTORS),
        default=list(EXECUTORS),
        help="which executors to benchmark (default: all three)",
    )
    args = parser.parse_args(argv)

    executors = list(dict.fromkeys(args.executor))
    rows = {}
    for name, (figure, chase_heavy, recursion_heavy, full, smoke) in SCENARIOS.items():
        if args.only and name not in args.only:
            continue
        factory = smoke if args.smoke else full
        print(f"== {name} (figure {figure})", flush=True)
        runs = {executor: run_one(factory, executor) for executor in executors}
        baseline_name = "naive" if "naive" in runs else ("compiled" if "compiled" in runs else None)
        baseline = runs.get(baseline_name) if baseline_name else None
        fact_counts = {
            executor: run["total_facts"]
            for executor, run in runs.items()
            if executor != "streaming"  # streaming prunes irrelevant inputs
        }
        if len(set(fact_counts.values())) > 1:
            print(f"   WARNING: fact counts differ across executors: {fact_counts}")
        speedups = {}
        if baseline is not None:
            for executor, run in runs.items():
                if run is baseline or run["elapsed_seconds"] <= 0:
                    continue
                speedups[executor] = round(
                    baseline["elapsed_seconds"] / run["elapsed_seconds"], 2
                )
        row = {
            "figure": figure,
            "chase_heavy": chase_heavy,
            "recursion_heavy": recursion_heavy,
            "executors": runs,
            # The baseline the speedups are measured against is named
            # explicitly: with --executor excluding naive it is compiled.
            "speedup_baseline": baseline_name,
            "speedups": speedups,
        }
        if "streaming" in executors:
            row["streaming_first_answer"] = run_first_answer(factory)
        rows[name] = row
        summary = " ".join(
            f"{executor}={run['elapsed_seconds']:.3f}s" for executor, run in runs.items()
        )
        print(f"   {summary}")
        if "streaming_first_answer" in row:
            fa = row["streaming_first_answer"]
            print(
                f"   first-answer: {fa['first_answer_seconds']:.4f}s holding "
                f"{fa['facts_at_first_answer']} facts "
                f"(completion: {fa['facts_at_completion']})"
            )

    heavy = {
        name: row["speedups"].get("compiled")
        for name, row in rows.items()
        if row["chase_heavy"]
        and row["speedup_baseline"] == "naive"
        and row["speedups"].get("compiled")
    }
    meets = sorted(n for n, s in heavy.items() if s and s >= SPEEDUP_TARGET)

    # Streaming-vs-materialization: on recursion-heavy scenarios the pipeline
    # must reach its first answer while resident facts are strictly below the
    # compiled chase's full materialization.
    streaming_wins = []
    for name, row in rows.items():
        fa = row.get("streaming_first_answer")
        compiled = row["executors"].get("compiled")
        if not fa or not compiled or not fa["found_answer"]:
            continue
        if row["recursion_heavy"] and fa["facts_at_first_answer"] < compiled["total_facts"]:
            streaming_wins.append(
                {
                    "scenario": name,
                    "facts_at_first_answer": fa["facts_at_first_answer"],
                    "materialized_facts": compiled["total_facts"],
                    "residency_ratio": round(
                        fa["facts_at_first_answer"] / compiled["total_facts"], 4
                    ),
                    "first_answer_seconds": fa["first_answer_seconds"],
                    "full_chase_seconds": compiled["elapsed_seconds"],
                }
            )

    # Parallel worker sweep: compiled vs parallel at 1/2/4 workers.
    sweep_section = run_worker_sweep(args.smoke, executors, args.only)

    # Magic rewriting: point queries, rewritten vs unrewritten, per executor.
    magic_section = run_magic_comparison(args.smoke, executors)

    # Telemetry: traced vs untraced overhead + per-rule hot spots.
    telemetry_section = run_telemetry_comparison(args.smoke, executors, args.only)

    # Service throughput: resident vs from-scratch mixed update/query loop.
    service_section = run_service_throughput(args.smoke, args.service_ratios)

    # Scaling curves: grid sweeps along the parametric generator knobs.
    scaling_section = run_scaling_sweeps(args.smoke)

    # Datasource backends: memory vs SQLite equivalence + pushdown evidence.
    backend_section = run_backend_comparison(args.smoke)
    backends_match = all(
        run["answers_identical"]
        for row in backend_section.values()
        for run in row["executors"].values()
    )
    pushdown_rows = [
        {
            "scenario": name,
            "executor": executor,
            **source,
        }
        for name, row in backend_section.items()
        for executor, run in row["executors"].items()
        for source in run["pushdown_sources"].values()
    ]
    # The acceptance criterion is specifically about the streaming pipeline:
    # its SQLite source must scan fewer rows than the full relation.
    pushdown_demonstrated = any(
        run["pushdown_rows_saved"] > 0
        for row in backend_section.values()
        for executor, run in row["executors"].items()
        if executor == "streaming"
    )

    report = {
        "pr": 10,
        "description": (
            "scenario lab: scaling-curve sweeps along the parametric "
            "iWarded generator knobs (recursion depth, existential density, "
            "arity, join fan-in, fact-set size), answer-checked per grid "
            "point, on top of the PR-9 matrix: incremental service "
            "throughput, telemetry overhead, magic-set rewriting, "
            "sequential/streaming/parallel executors, worker sweep, "
            "datasource backends"
        ),
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "executors": executors,
        "speedup_target": SPEEDUP_TARGET,
        "chase_heavy_speedups": heavy,
        "scenarios_meeting_target": meets,
        "meets_2x_target_on_two_scenarios": len(meets) >= 2,
        "streaming_vs_materialization": streaming_wins,
        "streaming_fewer_resident_on_two_recursion_heavy": len(streaming_wins) >= 2,
        "parallel_worker_sweep": sweep_section,
        "scaling_sweeps": scaling_section,
        "magic_rewrite": magic_section,
        "telemetry": telemetry_section,
        "service_throughput": service_section,
        "datasource_backends": backend_section,
        "sqlite_answers_match_memory": backends_match,
        "sqlite_pushdown_rows": pushdown_rows,
        "sqlite_pushdown_scans_fewer_rows": pushdown_demonstrated,
        "scenarios": rows,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    if heavy:
        print(
            f"chase-heavy scenarios at ≥{SPEEDUP_TARGET}x: "
            f"{', '.join(meets) if meets else 'none'}"
        )
    if "streaming" in executors:
        print(
            f"streaming holds fewer resident facts at first answer on "
            f"{len(streaming_wins)} recursion-heavy scenario(s)"
        )
    if sweep_section:
        meets = sweep_section["scenarios_meeting_target_at_4_workers"]
        print(
            f"parallel sweep at ≥{PARALLEL_SPEEDUP_TARGET}x over compiled "
            f"(4 workers): {', '.join(meets) if meets else 'none'} "
            f"[{sweep_section['cpu_count']} cpu(s), "
            f"backends: {', '.join(sweep_section['backends'])}]"
        )
    checked_points = sum(
        1
        for curve in scaling_section["axes"].values()
        for point in curve["points"]
        if point["answer_checked"]
    )
    print(
        f"scaling sweeps: {len(scaling_section['axes'])} knob axes on "
        f"{', '.join(scaling_section['executors'])}; "
        f"{checked_points} curve points answer-checked against "
        f"{scaling_section['answer_reference']}"
    )
    print(
        f"sqlite backend answers match memory: {backends_match}; "
        f"pushdown scans fewer rows: {pushdown_demonstrated}"
    )
    meets_magic = magic_section["scenarios_meeting_fact_reduction_target"]
    print(
        f"magic rewrite at ≥{MAGIC_FACT_REDUCTION_TARGET}x fewer derived facts: "
        f"{', '.join(meets_magic) if meets_magic else 'none'} "
        f"(answers identical: {magic_section['answers_identical_everywhere']})"
    )
    if telemetry_section["median_overhead_ratio"] is not None:
        print(
            f"telemetry overhead (median traced/untraced ratio): "
            f"{telemetry_section['median_overhead_ratio']}x "
            f"(target ≤{TRACE_OVERHEAD_TARGET}x)"
        )
    meets_service = service_section["ratios_meeting_target"]
    print(
        f"service throughput at ≥{SERVICE_SPEEDUP_TARGET}x over from-scratch: "
        f"{', '.join(meets_service) if meets_service else 'none'}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
