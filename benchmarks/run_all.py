#!/usr/bin/env python
"""Run the fig5–fig8 benchmark scenarios at small scale, compiled vs naive.

This is the perf-trajectory harness of the repository: it runs every
benchmark family of the paper's evaluation (Section 6) at laptop scale on
**both** chase executors — the compiled slot-machine path (the default) and
the naive interpreted path kept behind ``executor="naive"`` — in the same
process, and writes ``BENCH_PR1.json`` with per-scenario wall-clock,
facts/second and the compiled-over-naive speedup.  Future PRs append their
own ``BENCH_PR<n>.json`` so the perf history stays comparable.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # full small-scale run
    PYTHONPATH=src python benchmarks/run_all.py --smoke    # CI smoke (tiny scale)
    PYTHONPATH=src python benchmarks/run_all.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.reasoner import VadalogReasoner  # noqa: E402
from repro.workloads import (  # noqa: E402
    arity_scenario,
    atom_count_scenario,
    control_scenario,
    dbsize_scenario,
    doctors_scenario,
    ibench_scenario,
    iwarded_scenario,
    lubm_scenario,
    psc_scenario,
    rule_count_scenario,
    strong_links_scenario,
)

# name -> (figure, chase_heavy, full-scale factory, smoke-scale factory).
# "chase heavy" marks scenarios whose runtime is dominated by join/chase
# work (rather than stateful aggregation or answer extraction); these are
# the ones the compiled executor is expected to speed up ≥ 2×.
SCENARIOS = {
    "bench_fig5a_iwarded": (
        "5a",
        True,
        lambda: iwarded_scenario("synthA", facts_per_predicate=8),
        lambda: iwarded_scenario("synthA", facts_per_predicate=3),
    ),
    "bench_fig5b_ibench": (
        "5b",
        False,
        lambda: ibench_scenario("STB-128", source_facts=5),
        lambda: ibench_scenario("STB-128", source_facts=2),
    ),
    "bench_fig5c_psc": (
        "5c",
        True,
        lambda: psc_scenario(n_companies=300, n_persons=150),
        lambda: psc_scenario(n_companies=20, n_persons=12),
    ),
    "bench_fig5d_stronglinks": (
        "5d",
        False,
        lambda: strong_links_scenario(n_companies=50, n_persons=45, threshold=3),
        lambda: strong_links_scenario(n_companies=12, n_persons=10, threshold=2),
    ),
    "bench_fig5gh_doctors": (
        "5g-h",
        False,
        lambda: doctors_scenario(400),
        lambda: doctors_scenario(60),
    ),
    "bench_fig5i_lubm": (
        "5i",
        True,
        lambda: lubm_scenario(2500),
        lambda: lubm_scenario(100),
    ),
    "bench_fig6_control": (
        "6",
        False,
        lambda: control_scenario(120),
        lambda: control_scenario(30),
    ),
    "bench_fig8_scaling": (
        "8a",
        True,
        lambda: dbsize_scenario(20),
        lambda: dbsize_scenario(6),
    ),
    "bench_fig8_rules": (
        "8b",
        True,
        lambda: rule_count_scenario(3, facts_per_predicate=6),
        lambda: rule_count_scenario(2, facts_per_predicate=3),
    ),
    "bench_fig8_atoms": (
        "8c",
        True,
        lambda: atom_count_scenario(6, facts_per_predicate=6),
        lambda: atom_count_scenario(3, facts_per_predicate=3),
    ),
    "bench_fig8_arity": (
        "8d",
        True,
        lambda: arity_scenario(10, facts_per_predicate=8),
        lambda: arity_scenario(4, facts_per_predicate=3),
    ),
}

SPEEDUP_TARGET = 2.0


def run_one(factory, executor: str) -> dict:
    scenario = factory()
    started = time.perf_counter()
    reasoner = VadalogReasoner(scenario.program.copy(), executor=executor)
    result = reasoner.reason(database=scenario.database, outputs=scenario.outputs)
    elapsed = time.perf_counter() - started
    total_facts = len(result.chase.store)
    return {
        "elapsed_seconds": round(elapsed, 4),
        "total_facts": total_facts,
        "derived_facts": len(result.chase.derived_facts()),
        "facts_per_second": round(total_facts / elapsed, 1) if elapsed > 0 else None,
        "rounds": result.chase.rounds,
        "chase_steps": result.chase.chase_steps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny scale (CI)")
    parser.add_argument(
        "-o",
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR1.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--only", nargs="*", help="run only the named scenarios", default=None
    )
    args = parser.parse_args(argv)

    rows = {}
    for name, (figure, chase_heavy, full, smoke) in SCENARIOS.items():
        if args.only and name not in args.only:
            continue
        factory = smoke if args.smoke else full
        print(f"== {name} (figure {figure})", flush=True)
        naive = run_one(factory, "naive")
        compiled = run_one(factory, "compiled")
        if compiled["total_facts"] != naive["total_facts"]:
            print(
                f"   WARNING: fact counts differ "
                f"(naive={naive['total_facts']}, compiled={compiled['total_facts']})"
            )
        speedup = (
            naive["elapsed_seconds"] / compiled["elapsed_seconds"]
            if compiled["elapsed_seconds"] > 0
            else None
        )
        rows[name] = {
            "figure": figure,
            "chase_heavy": chase_heavy,
            "naive": naive,
            "compiled": compiled,
            "speedup": round(speedup, 2) if speedup else None,
        }
        print(
            f"   naive={naive['elapsed_seconds']:.3f}s "
            f"compiled={compiled['elapsed_seconds']:.3f}s "
            f"speedup={speedup:.2f}x facts={compiled['total_facts']}"
        )

    heavy = {
        n: r["speedup"]
        for n, r in rows.items()
        if r["chase_heavy"] and r["speedup"] is not None
    }
    meets = sorted(n for n, s in heavy.items() if s >= SPEEDUP_TARGET)
    report = {
        "pr": 1,
        "description": "compiled slot-machine executor vs naive interpreted chase",
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "speedup_target": SPEEDUP_TARGET,
        "chase_heavy_speedups": heavy,
        "scenarios_meeting_target": meets,
        "meets_2x_target_on_two_scenarios": len(meets) >= 2,
        "scenarios": rows,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"chase-heavy scenarios at ≥{SPEEDUP_TARGET}x: "
        f"{', '.join(meets) if meets else 'none'}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
