"""Figure 5(c): DBpedia PSC and AllPSC — scaling over persons, vs RDBMS and graph baselines.

Paper expectation (shape): near-linear growth for PSC and AllPSC with the two
curves almost coinciding (monotonic aggregation adds no overhead); the
recursive-SQL baseline is several times slower; the specialised graph-BFS
engine is fast on this pure reachability task.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.bench.reporting import format_series, format_table, rows_as_dicts
from repro.workloads.dbpedia import allpsc_scenario, psc_scenario

PERSON_SWEEP = (50, 100, 200)
COMPANIES = 120

_rows = []


@pytest.mark.figure("5c")
@pytest.mark.parametrize("persons", PERSON_SWEEP)
@pytest.mark.parametrize("engine", ["vadalog", "recursive-sql", "graph-bfs"])
def test_psc(persons, engine, once):
    scenario = psc_scenario(n_companies=COMPANIES, n_persons=persons)
    row = once(run_scenario, scenario, engine)
    _rows.append(row)
    assert row.output_facts > 0


@pytest.mark.figure("5c")
@pytest.mark.parametrize("persons", PERSON_SWEEP)
def test_allpsc(persons, once):
    scenario = allpsc_scenario(n_companies=COMPANIES, n_persons=persons)
    row = once(run_scenario, scenario, "vadalog")
    row.extra["task"] = "AllPSC"
    _rows.append(row)
    assert row.output_facts > 0


@pytest.mark.figure("5c")
def test_report_figure_5c(once):
    once(lambda: None)
    print()
    print(
        format_table(
            rows_as_dicts(_rows),
            columns=["scenario", "engine", "persons", "elapsed_seconds", "output_facts"],
            title="Figure 5(c) — PSC / AllPSC scaling over persons",
        )
    )
    print(format_series([r for r in _rows if r.scenario == "dbpedia-psc"], x_key="persons", title="PSC series"))
    assert _rows
