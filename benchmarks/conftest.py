"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6) at laptop scale: the sweeps cover the same relative sizes as the
paper but with smaller absolute instances (documented in EXPERIMENTS.md).
Each test prints the rows/series it measured, so running

    pytest benchmarks/ --benchmark-only

reproduces the evaluation tables in textual form.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): paper figure the benchmark reproduces")


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (scenarios are not micro-benchmarks)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
