"""Figure 6: the iWarded scenario parameter table.

This benchmark regenerates the table describing the eight synthetic
scenarios (rule mixes) and verifies that the generated programs actually
exhibit the configured characteristics (rule counts, existential rules,
harmful joins, wardedness).
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.wardedness import analyse_program
from repro.workloads.iwarded import SCENARIO_CONFIGS, iwarded_scenario


@pytest.mark.figure("6")
def test_report_figure_6(once):
    def build_rows():
        rows = []
        for name, config in SCENARIO_CONFIGS.items():
            scenario = iwarded_scenario(name, facts_per_predicate=5)
            summary = analyse_program(scenario.program).summary()
            rows.append(
                {
                    "scenario": name,
                    "L_rules": config.linear_rules,
                    "1_rules": config.join_rules,
                    "L_recursive": config.linear_recursive,
                    "1_recursive": config.join_recursive,
                    "exist_rules": config.existential_rules,
                    "hrml_ward": config.harmless_join_with_ward,
                    "hrml_no_ward": config.harmless_join_without_ward,
                    "hrmf_hrmf": config.harmful_joins,
                    "generated_rules": summary["rules"],
                    "generated_existentials": summary["existential_rules"],
                    "warded": summary["warded"],
                }
            )
        return rows

    rows = once(build_rows)
    print()
    print(format_table(rows, title="Figure 6 — iWarded scenario configurations"))
    assert all(row["generated_rules"] == 100 for row in rows)
    assert all(row["warded"] for row in rows)
