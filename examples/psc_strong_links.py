"""Persons of significant control and strong links (Examples 11-13 of the paper).

This example runs two reasoning tasks on a synthetic DBpedia-style company
graph:

* **PSC** — compute every person with significant control over every company
  (transitive propagation of key persons along the control relationship), and
  cross-check the answer against the specialised graph-traversal baseline;
* **Strong links** — find pairs of companies sharing at least one person of
  significant control, using existential quantification (every company has at
  least one PSC, possibly anonymous) and the ``mcount`` monotonic aggregation.

Run with:  python examples/psc_strong_links.py
"""

from repro import VadalogReasoner
from repro.baselines import GraphTraversalEngine
from repro.workloads.dbpedia import generate_company_graph, psc_scenario, strong_links_scenario


def run_psc() -> None:
    scenario = psc_scenario(n_companies=120, n_persons=80)
    reasoner = VadalogReasoner(scenario.program)
    result = reasoner.reason(database=scenario.database, outputs=["PSC"])
    psc = result.ground_tuples("PSC")
    print(f"PSC: {len(psc)} (company, person) pairs derived by the reasoner")

    control = [tuple(r) for r in scenario.database.relation("Control").tuples]
    key_people = [tuple(r) for r in scenario.database.relation("KeyPerson").tuples]
    traversal = GraphTraversalEngine(control).propagate_labels(key_people)
    print(f"PSC: {len(traversal.pairs())} pairs derived by the graph-BFS baseline")
    print(f"Both engines agree: {traversal.pairs() == psc}")


def run_strong_links() -> None:
    scenario = strong_links_scenario(n_companies=60, n_persons=40, threshold=2)
    reasoner = VadalogReasoner(scenario.program)
    result = reasoner.reason(database=scenario.database, outputs=["StrongLink"])
    links = sorted(result.ground_tuples("StrongLink"), key=lambda row: -row[2])
    print(f"\nStrong links (sharing at least 2 persons of significant control): {len(links)}")
    for company_a, company_b, shared in links[:10]:
        print(f"    {company_a} <-> {company_b}  ({shared} shared PSC)")
    for warning in result.warnings:
        print(f"    note: {warning}")


def main() -> None:
    run_psc()
    run_strong_links()


if __name__ == "__main__":
    main()
