"""Quickstart: reasoning over a small company knowledge graph.

This example walks through the basic API of the library:

1. write a Vadalog program (Warded Datalog± with annotations);
2. provide an extensional database (plain Python tuples);
3. run the reasoner and inspect universal and certain answers.

Run with:  python examples/quickstart.py
"""

from repro import VadalogReasoner

PROGRAM = """
% Every company has a key person (possibly unknown -> existential).
KeyPerson(P, X) :- Company(X).

% Key persons propagate along the control relationship (Example 3 of the paper).
KeyPerson(P, Y) :- Control(X, Y), KeyPerson(P, X).

@output("KeyPerson").
"""

DATABASE = {
    "Company": [("hsbc",), ("hsb",), ("iba",)],
    "Control": [("hsbc", "hsb"), ("hsb", "iba")],
    "KeyPerson": [("alice", "hsbc")],
}


def main() -> None:
    reasoner = VadalogReasoner(PROGRAM)

    # The explain() output shows the compiled plan and the detected fragment.
    print(reasoner.explain())
    print()

    result = reasoner.reason(database=DATABASE)

    print("Universal answer (includes anonymous key persons as labelled nulls):")
    for fact in sorted(result.facts("KeyPerson"), key=repr):
        print("   ", fact)
    print()

    print("Certain answer (null-free facts only):")
    for person, company in sorted(result.ground_tuples("KeyPerson")):
        print(f"    {person} is a key person of {company}")
    print()

    print("Chase statistics:", result.chase.stats())


if __name__ == "__main__":
    main()
