"""Data integration with existential rules, constraints and CSV sources.

This example mirrors the data-exchange style scenarios of the evaluation
(Doctors / iBench): source relations are mapped into a target schema by
existential rules, functional dependencies on the target are expressed as
EGDs, negative constraints reject inconsistent sources, and the data is
loaded from CSV files through the ``@bind`` annotation.

Run with:  python examples/data_integration.py
"""

import csv
import tempfile
from pathlib import Path

from repro import VadalogReasoner

PROGRAM = """
@bind("Employee", "csv", "employees.csv").
@bind("Assignment", "csv", "assignments.csv").

% Every employee works in some department (unknown -> existential D).
WorksIn(E, D) :- Employee(E, N).

% Known project assignments fix the department through the project registry.
WorksIn(E, D) :- Assignment(E, P), ProjectDept(P, D).

% Target schema: a directory of employees with their display name.
Directory(E, N) :- Employee(E, N).

% Functional dependency on the target: one name per employee.
N1 = N2 :- Directory(E, N1), Directory(E, N2).

% Nobody may be assigned to the retired project "legacy".
:- Assignment(E, "legacy").

@output("WorksIn").
@output("Directory").
@post("WorksIn", "certain").
"""


def write_sources(directory: Path) -> None:
    with (directory / "employees.csv").open("w", newline="") as handle:
        csv.writer(handle).writerows(
            [["e1", "Ada"], ["e2", "Grace"], ["e3", "Edsger"]]
        )
    with (directory / "assignments.csv").open("w", newline="") as handle:
        csv.writer(handle).writerows([["e1", "p-graph"], ["e2", "p-chase"]])


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        write_sources(directory)

        reasoner = VadalogReasoner(PROGRAM, base_path=str(directory))
        result = reasoner.reason(
            database={"ProjectDept": [("p-graph", "research"), ("p-chase", "engineering")]}
        )

        print("Directory (target relation):")
        for employee, name in sorted(result.ground_tuples("Directory")):
            print(f"    {employee}: {name}")

        print("\nWorksIn (certain answers only, @post drops the anonymous departments):")
        for employee, department in sorted(result.answers.ground_tuples("WorksIn")):
            print(f"    {employee} -> {department}")

        print("\nConstraint violations:", result.chase.violations or "none")
        print("Universal WorksIn facts (with anonymous departments):",
              len(result.chase.store.by_predicate("WorksIn")))


if __name__ == "__main__":
    main()
