"""Streaming pipeline: first answers before the model is materialised.

The streaming executor (``executor="streaming"``) evaluates a program
through the paper's pull-based pipes-and-filters runtime instead of the
materializing chase: sinks issue ``next()`` calls that propagate backwards
through rule filters to record-manager sources, so

1. ``first_answer()`` returns as soon as *one* derivation chain completes —
   on a deep recursive closure that happens while only a handful of facts
   are resident;
2. ``iter_answers()`` streams answers lazily, pulling exactly as much of
   the pipeline as each answer requires;
3. rules that cannot reach the requested output predicates are pruned and
   their sources never read (query-driven evaluation).

Run with:  python examples/streaming_pipeline.py
"""

from repro import VadalogReasoner

PROGRAM = """
% Reachability over a long supply chain (transitive closure).
Reach(X, Y) :- Delivers(X, Y).
Reach(X, Z) :- Reach(X, Y), Delivers(Y, Z).

% A second rule family the query never asks about: pruned by the pipeline.
Audit(X) :- AuditLog(X).

@output("Reach").
"""


def make_database(chain_length: int = 60):
    suppliers = [f"s{i}" for i in range(chain_length)]
    return {
        "Delivers": [(a, b) for a, b in zip(suppliers, suppliers[1:])],
        "AuditLog": [(s,) for s in suppliers],
    }


def main() -> None:
    reasoner = VadalogReasoner(PROGRAM, executor="streaming")
    database = make_database()

    # --- lazy: stop pulling at the first answer -----------------------------
    lazy = reasoner.stream(database=database)
    first = lazy.first_answer()
    resident = len(lazy.chase.store)
    print(f"first answer: {first}")
    print(f"facts resident when it was produced: {resident}")

    # --- lazy: stream a few answers, then drain -----------------------------
    stream = lazy.iter_answers()
    print("next answers off the pipe:")
    for _ in range(3):
        print("   ", next(stream))
    lazy.complete()  # drain to the fixpoint, apply post-processing
    print(f"answers after completion: {lazy.answers.count('Reach')}")
    print(f"facts materialised in total: {len(lazy.chase.store)}")

    # --- eager: same answers, plus the pipeline diagnostics ------------------
    result = reasoner.reason(database=database)
    stats = result.chase.stats()
    print()
    print("query-driven pruning:",
          stats["pipeline_pruned_rules"], "rule(s) and",
          stats["pipeline_pruned_sources"], "source(s) never entered the pipeline")
    print("pull protocol:", stats["pull_protocol"])
    print("time to first answer:", f"{result.timings['first_answer'] * 1000:.2f} ms",
          "of", f"{result.timings['chase'] * 1000:.2f} ms", "total chase time")


if __name__ == "__main__":
    main()
