"""Company control over an ownership graph (Example 2 of the paper).

The program uses recursion plus monotonic aggregation (``msum``) to decide
which companies control which others: ``x`` controls ``y`` when it directly
owns more than half of ``y``, or when the companies it controls jointly own
more than half of ``y``.

The example generates a scale-free ownership graph with the parameters the
paper learned from the European company graph (α=0.71, β=0.09, γ=0.2) and
answers the three kinds of questions listed in the paper: all control pairs,
the companies controlled by a given company, and a point query.

Run with:  python examples/company_control.py
"""

from repro import VadalogReasoner
from repro.workloads.companies import company_control_program, generate_ownership_graph


def main() -> None:
    database = generate_ownership_graph(n_companies=80)
    print(
        f"Ownership graph: {database.size('Company')} companies, "
        f"{database.size('Own')} ownership edges"
    )

    reasoner = VadalogReasoner(company_control_program())
    result = reasoner.reason(database=database)
    control = sorted(result.ground_tuples("Control"))

    print(f"\n1. All control relationships ({len(control)} pairs):")
    for owner, owned in control[:15]:
        print(f"    {owner} controls {owned}")
    if len(control) > 15:
        print(f"    ... and {len(control) - 15} more")

    # 2. Which companies are controlled by f0?  Which companies control f2?
    controlled_by_f0 = sorted(y for x, y in control if x == "f0")
    controlling_f2 = sorted(x for x, y in control if y == "f2")
    print(f"\n2. Companies controlled by f0: {controlled_by_f0 or 'none'}")
    print(f"   Companies controlling f2:  {controlling_f2 or 'none'}")

    # 3. Does f0 control f1?
    print(f"\n3. Does f0 control f1?  {('f0', 'f1') in set(control)}")

    print("\nReasoning took %.3f s" % result.timings["total"])


if __name__ == "__main__":
    main()
