"""Benchmark harness: scenario runners and table/series reporting."""

from .harness import BenchmarkRow, run_scenario, run_sweep, ENGINES
from .reporting import format_table, format_series

__all__ = [
    "BenchmarkRow",
    "run_scenario",
    "run_sweep",
    "ENGINES",
    "format_table",
    "format_series",
]
