"""Plain-text tables and series for the benchmark output.

Every benchmark prints the rows/series the corresponding paper figure
reports, using these helpers, so running ``pytest benchmarks/
--benchmark-only`` regenerates the evaluation tables in textual form.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .harness import BenchmarkRow


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    rows = [dict(r) for r in rows]
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def format_series(
    rows: Sequence[BenchmarkRow],
    x_key: str,
    title: str = "",
    value_key: str = "elapsed_seconds",
) -> str:
    """Render benchmark rows as one series per engine (the figure line plots)."""
    series: Dict[str, List[str]] = {}
    for row in rows:
        data = row.as_dict()
        x_value = data.get(x_key, "?")
        series.setdefault(row.engine, []).append(f"{x_value}:{data.get(value_key)}")
    lines = [title] if title else []
    for engine, points in series.items():
        lines.append(f"  {engine:<18} " + "  ".join(points))
    return "\n".join(lines)


def rows_as_dicts(rows: Iterable[BenchmarkRow]) -> List[Dict[str, object]]:
    return [row.as_dict() for row in rows]
