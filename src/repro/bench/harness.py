"""Scenario runner used by all benchmarks (one per paper table/figure).

The harness runs a :class:`~repro.workloads.scenario.Scenario` end to end on
one of the engines and returns a :class:`BenchmarkRow` with the elapsed time
and output sizes.  Engines:

``vadalog``
    The full system: logic optimizer + warded termination strategy
    (Algorithm 1).
``vadalog-trivial``
    The same system with the trivial global isomorphism-check strategy
    (the Section 6.6 ablation).
``restricted-chase``
    The restricted-chase baseline (Graal / LLunatic / PDQ style).
``skolem-chase``
    The unrestricted Skolem-chase baseline (DLV / RDFox style).
``recursive-sql``
    The recursive-CTE baseline (PostgreSQL / MySQL / Oracle style); only for
    existential-free programs.
``graph-bfs``
    The graph-traversal baseline (Neo4J style); only for the PSC reachability
    shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..baselines.graph_engine import GraphTraversalEngine
from ..baselines.restricted_chase import RestrictedChaseEngine
from ..baselines.skolem_chase import SkolemChaseEngine
from ..baselines.sql_recursion import RecursiveSqlEngine
from ..core.chase import ChaseConfig
from ..engine.reasoner import VadalogReasoner
from ..workloads.scenario import Scenario

ENGINES = (
    "vadalog",
    "vadalog-trivial",
    "restricted-chase",
    "skolem-chase",
    "recursive-sql",
    "graph-bfs",
)


@dataclass
class BenchmarkRow:
    """One measurement: a scenario run on one engine."""

    scenario: str
    engine: str
    elapsed_seconds: float
    output_facts: int
    total_facts: int
    params: Dict[str, object] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        data = {
            "scenario": self.scenario,
            "engine": self.engine,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "output_facts": self.output_facts,
            "total_facts": self.total_facts,
        }
        data.update(self.params)
        data.update(self.extra)
        return data


def _run_vadalog(scenario: Scenario, strategy: str) -> BenchmarkRow:
    started = time.perf_counter()
    reasoner = VadalogReasoner(
        scenario.program.copy(),
        strategy=strategy,
        chase_config=ChaseConfig(max_rounds=5000),
    )
    result = reasoner.reason(database=scenario.database, outputs=scenario.outputs)
    elapsed = time.perf_counter() - started
    output_facts = sum(len(result.answers.facts(p)) for p in scenario.outputs)
    return BenchmarkRow(
        scenario=scenario.name,
        engine="vadalog" if strategy == "warded" else "vadalog-trivial",
        elapsed_seconds=elapsed,
        output_facts=output_facts,
        total_facts=len(result.chase.store),
        params=dict(scenario.params),
        extra={
            "chase_steps": result.chase.chase_steps,
            "isomorphism_checks": result.chase.strategy.stats.isomorphism_checks,
            "stored_facts": result.chase.strategy.stats.stored_facts,
        },
    )


def _run_restricted(scenario: Scenario) -> BenchmarkRow:
    engine = RestrictedChaseEngine(scenario.program.copy(), max_rounds=5000)
    started = time.perf_counter()
    result = engine.run(scenario.database.facts())
    elapsed = time.perf_counter() - started
    output_facts = sum(len(result.facts(p)) for p in scenario.outputs)
    return BenchmarkRow(
        scenario=scenario.name,
        engine="restricted-chase",
        elapsed_seconds=elapsed,
        output_facts=output_facts,
        total_facts=len(result.store),
        params=dict(scenario.params),
        extra={"homomorphism_checks": result.homomorphism_checks},
    )


def _run_skolem(scenario: Scenario) -> BenchmarkRow:
    engine = SkolemChaseEngine(scenario.program.copy(), max_rounds=5000)
    started = time.perf_counter()
    result = engine.run(scenario.database.facts())
    elapsed = time.perf_counter() - started
    output_facts = sum(len(result.facts(p)) for p in scenario.outputs)
    return BenchmarkRow(
        scenario=scenario.name,
        engine="skolem-chase",
        elapsed_seconds=elapsed,
        output_facts=output_facts,
        total_facts=len(result.store),
        params=dict(scenario.params),
        extra={"grounded_instances": getattr(result, "grounded_instances", 0)},
    )


def _run_sql(scenario: Scenario) -> BenchmarkRow:
    engine = RecursiveSqlEngine(scenario.program.copy(), max_rounds=5000)
    started = time.perf_counter()
    result = engine.run(scenario.database.facts())
    elapsed = time.perf_counter() - started
    output_facts = sum(len(result.facts(p)) for p in scenario.outputs)
    return BenchmarkRow(
        scenario=scenario.name,
        engine="recursive-sql",
        elapsed_seconds=elapsed,
        output_facts=output_facts,
        total_facts=len(result.store),
        params=dict(scenario.params),
    )


def _run_graph(scenario: Scenario) -> BenchmarkRow:
    """Graph-BFS baseline for the PSC-shaped scenarios (Control + KeyPerson)."""
    control = [tuple(r) for r in scenario.database.relation("Control").tuples]
    key_persons = [tuple(r) for r in scenario.database.relation("KeyPerson").tuples]
    started = time.perf_counter()
    engine = GraphTraversalEngine(control)
    result = engine.propagate_labels(key_persons)
    elapsed = time.perf_counter() - started
    return BenchmarkRow(
        scenario=scenario.name,
        engine="graph-bfs",
        elapsed_seconds=elapsed,
        output_facts=len(result.derived_pairs),
        total_facts=len(result.derived_pairs),
        params=dict(scenario.params),
        extra={"visited_edges": result.visited_edges},
    )


def run_scenario(scenario: Scenario, engine: str = "vadalog") -> BenchmarkRow:
    """Run one scenario on one engine and return its measurement row."""
    if engine == "vadalog":
        return _run_vadalog(scenario, "warded")
    if engine == "vadalog-trivial":
        return _run_vadalog(scenario, "trivial-isomorphism")
    if engine == "restricted-chase":
        return _run_restricted(scenario)
    if engine == "skolem-chase":
        return _run_skolem(scenario)
    if engine == "recursive-sql":
        return _run_sql(scenario)
    if engine == "graph-bfs":
        return _run_graph(scenario)
    raise ValueError(f"unknown engine {engine!r}; known: {', '.join(ENGINES)}")


def run_sweep(
    scenarios: Sequence[Scenario], engines: Sequence[str] = ("vadalog",)
) -> List[BenchmarkRow]:
    """Run every scenario on every engine (the generic sweep used by figures)."""
    rows: List[BenchmarkRow] = []
    for scenario in scenarios:
        for engine in engines:
            rows.append(run_scenario(scenario, engine))
    return rows
