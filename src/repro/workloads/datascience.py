"""Reasoning-meets-ML workloads ("Data Science with Vadalog", arXiv:1807.08712).

The paper positions Vadalog as the reasoning core of data-science pipelines:
upstream ML models emit *predictions* that become extensional facts, and the
reasoner post-processes them with recursive rules, monotonic aggregations,
equality-generating dependencies and datasource writeback.  No previous
scenario in this repo exercised aggregates + EGDs + ``@output`` writeback
together; the two scenarios here do, in the two canonical shapes:

* **Entity-resolution score fusion** (:func:`er_fusion_scenario`) — several
  matcher models score record pairs; reasoning fuses the scores per pair
  (``mmax``), thresholds them into a symmetric-transitive ``SameEntity``
  closure, invents an existential ``Entity`` witness per cluster, counts
  cluster sizes (``mcount``) and checks a *single-source* EGD over the
  record registry.
* **Classification-label propagation** (:func:`label_propagation_scenario`)
  — a classifier labels some graph nodes with confidences; high-confidence
  predictions become seeds whose influence propagates along undirected
  edges; per-node support is aggregated with ``mcount`` (with and
  without contributor lists) and a *seed-uniqueness* EGD flags nodes the
  classifier labelled ambiguously.

Both scenarios run on three interchangeable backends: ``memory`` (facts in a
:class:`~repro.storage.database.Database`), ``csv`` and ``sqlite`` (facts
ingested through ``@bind`` datasources, answers written back through the
``@output`` bindings).  Answers are identical across backends on every
executor — the property :mod:`tests.test_scenario_lab` pins down.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.parser import parse_program
from ..core.rules import Program
from ..storage.csv_io import save_relation_csv
from ..storage.database import Database
from ..storage.datasources import save_database_sqlite
from .scenario import Scenario

#: Fusion threshold above which a record pair is considered the same entity.
MATCH_THRESHOLD = 0.7
#: Classifier confidence above which a prediction becomes a propagation seed.
SEED_CONFIDENCE = 0.8

# ---------------------------------------------------------------------------
# Entity-resolution score fusion
# ---------------------------------------------------------------------------

#: ``Score(model, a, b, w)`` are matcher outputs, ``Record(r, source)`` the
#: record registry.  ``FusedScore`` keeps the best score any model produced
#: for a pair, ``SameEntity`` is its thresholded symmetric-transitive
#: closure, ``Entity`` invents one (labelled-null) entity witness per record
#: and spreads it over the cluster, ``ClusterSize`` counts each record's
#: cluster.  The EGD requires the registry to list each record under one
#: source — the generator plants one conflicting registration, so the
#: violation set is non-empty and deterministic.
ER_FUSION_PROGRAM = """
@output("FusedScore").
@output("SameEntity").
@output("ClusterSize").
FusedScore(A, B, S) :- Score(M, A, B, W), S = mmax(W).
SameEntity(A, B) :- FusedScore(A, B, S), S > 0.7.
SameEntity(B, A) :- SameEntity(A, B).
SameEntity(A, C) :- SameEntity(A, B), SameEntity(B, C).
ClusterSize(A, N) :- SameEntity(A, B), N = mcount(B).
Entity(A, E) :- Record(A, Src).
Entity(B, E) :- Entity(A, E), SameEntity(A, B).
Src1 = Src2 :- Record(A, Src1), Record(A, Src2).
"""

ER_OUTPUTS: Tuple[str, ...] = ("FusedScore", "SameEntity", "ClusterSize")

#: Registry sources the synthetic records are attributed to (round-robin).
_RECORD_SOURCES: Tuple[str, ...] = ("crm", "web", "erp")


def generate_er_database(
    n_records: int = 12, n_models: int = 3, seed: int = 11
) -> Database:
    """Synthetic matcher outputs: ``n_models`` models score candidate pairs.

    Pairs along the record chain plus random extras get a shared "true"
    affinity; each model reports it with bounded noise (two decimals, so the
    values survive CSV/SQLite round-trips bit-identically).  Record ``r0``
    is deliberately registered under two sources — the single-source EGD
    must flag it.
    """
    if n_records < 2:
        raise ValueError(f"n_records must be >= 2, got {n_records}")
    if n_models < 1:
        raise ValueError(f"n_models must be >= 1, got {n_models}")
    rng = random.Random(seed)
    records = [f"r{i}" for i in range(n_records)]
    record_rows = [
        (record, _RECORD_SOURCES[i % len(_RECORD_SOURCES)])
        for i, record in enumerate(records)
    ]
    record_rows.append((records[0], "legacy"))  # conflicting registration
    pairs = {(records[i], records[i + 1]) for i in range(n_records - 1)}
    while len(pairs) < 2 * n_records:
        a, b = rng.sample(records, 2)
        pairs.add((a, b))
    score_rows: List[Tuple[str, str, str, float]] = []
    for a, b in sorted(pairs):
        affinity = rng.random()
        for model in range(n_models):
            noise = (rng.random() - 0.5) * 0.2
            score = round(min(1.0, max(0.0, affinity + noise)), 2)
            score_rows.append((f"m{model}", a, b, score))
    database = Database()
    database.add_tuples("Record", sorted(set(record_rows)))
    database.add_tuples("Score", score_rows)
    return database


# ---------------------------------------------------------------------------
# Classification-label propagation
# ---------------------------------------------------------------------------

#: ``Predicted(node, label, confidence)`` are classifier outputs over the
#: nodes of an undirected graph ``Link(a, b)``.  High-confidence predictions
#: seed the propagation; ``Influence(seed, node, label)`` tracks which seeds
#: reach which nodes; ``Support`` counts supporting seeds per node and
#: label, ``LabelCount`` counts *distinct* labels reaching a node (the
#: contributor list ``<L>`` dedupes), and ``Accepted`` keeps labels with at
#: least two independent seeds (a monotone threshold over ``mcount``).  The
#: EGD requires each node to have at most one seed label — the generator
#: plants one ambiguous node.
LABEL_PROPAGATION_PROGRAM = """
@output("Support").
@output("LabelCount").
@output("Accepted").
Edge(A, B) :- Link(A, B).
Edge(B, A) :- Link(A, B).
Seed(N, L) :- Predicted(N, L, C), C > 0.8.
Influence(S, S, L) :- Seed(S, L).
Influence(S, M, L) :- Influence(S, N, L), Edge(N, M).
Support(N, L, V) :- Influence(S, N, L), V = mcount(S).
LabelCount(N, K) :- Influence(S, N, L), K = mcount(L, <L>).
Accepted(N, L) :- Influence(S, N, L), V = mcount(S), V >= 2.
L1 = L2 :- Seed(N, L1), Seed(N, L2).
"""

LP_OUTPUTS: Tuple[str, ...] = ("Support", "LabelCount", "Accepted")

_LABELS: Tuple[str, ...] = ("ham", "spam", "gray")


def generate_lp_database(
    n_nodes: int = 14, n_labels: int = 2, seed: int = 19
) -> Database:
    """Synthetic classifier outputs over a small community graph.

    The graph is a ring of ``n_labels`` communities (cliques of
    ``n_nodes // n_labels`` nodes bridged by single edges); each community
    gets two or more high-confidence seeds of its own label plus
    low-confidence noise predictions elsewhere.  One bridge node receives
    two high-confidence labels — the seed-uniqueness EGD must flag it.
    """
    if n_nodes < 4:
        raise ValueError(f"n_nodes must be >= 4, got {n_nodes}")
    if not 1 <= n_labels <= len(_LABELS):
        raise ValueError(
            f"n_labels must be between 1 and {len(_LABELS)}, got {n_labels}"
        )
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(n_nodes)]
    community_size = max(2, n_nodes // n_labels)
    communities: List[List[str]] = [
        nodes[start : start + community_size]
        for start in range(0, n_nodes, community_size)
    ]
    link_rows: List[Tuple[str, str]] = []
    for community in communities:
        for i in range(len(community) - 1):
            link_rows.append((community[i], community[i + 1]))
        if len(community) > 2:
            link_rows.append((community[0], community[-1]))
    for current, following in zip(communities, communities[1:]):
        link_rows.append((current[-1], following[0]))
    predicted_rows: List[Tuple[str, str, float]] = []
    for index, community in enumerate(communities):
        label = _LABELS[index % n_labels]
        seeds = community[: max(2, len(community) // 2)]
        for node in seeds:
            predicted_rows.append((node, label, round(0.85 + rng.random() * 0.14, 2)))
        for node in community[len(seeds) :]:
            other = _LABELS[rng.randrange(n_labels)]
            predicted_rows.append((node, other, round(0.2 + rng.random() * 0.5, 2)))
    # One deliberately ambiguous node: two labels above the seed threshold.
    ambiguous = communities[0][0]
    conflicting = _LABELS[(1 if n_labels > 1 else 0)]
    predicted_rows.append((ambiguous, conflicting + "_alt", 0.93))
    database = Database()
    database.add_tuples("Link", sorted(set(link_rows)))
    database.add_tuples("Predicted", sorted(set(predicted_rows)))
    return database


# ---------------------------------------------------------------------------
# Backend plumbing: memory / csv / sqlite through the @bind layer
# ---------------------------------------------------------------------------

BACKENDS: Tuple[str, ...] = ("memory", "csv", "sqlite")


def _bound_scenario_parts(
    database: Database,
    data_dir: Union[str, Path, None],
    program_text: str,
    backend: str,
    db_name: str,
    outputs: Tuple[str, ...],
) -> Tuple[Program, Database, str]:
    """Export ``database`` and rewrite the program to ``@bind`` the backend.

    Every extensional relation becomes an input binding and every ``@output``
    predicate a writeback binding of the same kind, so answers land next to
    the source data.  Returns the bound program, an **empty** database (the
    facts now live in the files) and the reasoner's ``base_path``.
    """
    if data_dir is None:
        raise ValueError(f"backend={backend!r} needs a data_dir to hold the data files")
    directory = Path(data_dir)
    directory.mkdir(parents=True, exist_ok=True)
    binds: List[str] = []
    if backend == "csv":
        for name in sorted(database.relations()):
            file_name = f"{name.lower()}.csv"
            save_relation_csv(database.relation(name), directory / file_name)
            binds.append(f'@bind("{name}", "csv", "{file_name}").\n')
        for name in outputs:
            binds.append(f'@bind("{name}", "csv", "{name.lower()}_out.csv").\n')
    elif backend == "sqlite":
        save_database_sqlite(database, directory / db_name)
        for name in sorted(database.relations()):
            binds.append(f'@bind("{name}", "sqlite", "{db_name}").\n')
        for name in outputs:
            binds.append(f'@bind("{name}", "sqlite", "{db_name}").\n')
    else:  # pragma: no cover - callers validate first
        raise ValueError(f"unsupported bound backend {backend!r}")
    program = parse_program("".join(binds) + program_text)
    return program, Database(), str(directory)


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {', '.join(BACKENDS)}, got {backend!r}"
        )


def er_fusion_scenario(
    n_records: int = 12,
    n_models: int = 3,
    seed: int = 11,
    backend: str = "memory",
    data_dir: Union[str, Path, None] = None,
) -> Scenario:
    """Entity-resolution score fusion over synthetic matcher outputs."""
    _check_backend(backend)
    database = generate_er_database(n_records=n_records, n_models=n_models, seed=seed)
    params: Dict[str, object] = {
        "records": n_records,
        "models": n_models,
        "scores": database.size("Score"),
        "backend": backend,
        "threshold": MATCH_THRESHOLD,
    }
    base_path: Optional[str] = None
    if backend == "memory":
        program = parse_program(ER_FUSION_PROGRAM)
    else:
        program, database, base_path = _bound_scenario_parts(
            database, data_dir, ER_FUSION_PROGRAM, backend, "er_fusion.db", ER_OUTPUTS
        )
    suffix = "" if backend == "memory" else f"-{backend}"
    return Scenario(
        name=f"ds-er-fusion-{n_records}{suffix}",
        program=program,
        database=database,
        outputs=ER_OUTPUTS,
        description="Entity-resolution score fusion (aggregates + EGD + writeback)",
        params=params,
        base_path=base_path,
    )


def label_propagation_scenario(
    n_nodes: int = 14,
    n_labels: int = 2,
    seed: int = 19,
    backend: str = "memory",
    data_dir: Union[str, Path, None] = None,
) -> Scenario:
    """Classification-label propagation over a community graph."""
    _check_backend(backend)
    database = generate_lp_database(n_nodes=n_nodes, n_labels=n_labels, seed=seed)
    params: Dict[str, object] = {
        "nodes": n_nodes,
        "labels": n_labels,
        "links": database.size("Link"),
        "predictions": database.size("Predicted"),
        "backend": backend,
        "seed_confidence": SEED_CONFIDENCE,
    }
    base_path: Optional[str] = None
    if backend == "memory":
        program = parse_program(LABEL_PROPAGATION_PROGRAM)
    else:
        program, database, base_path = _bound_scenario_parts(
            database,
            data_dir,
            LABEL_PROPAGATION_PROGRAM,
            backend,
            "label_prop.db",
            LP_OUTPUTS,
        )
    suffix = "" if backend == "memory" else f"-{backend}"
    return Scenario(
        name=f"ds-label-prop-{n_nodes}{suffix}",
        program=program,
        database=database,
        outputs=LP_OUTPUTS,
        description="Classification-label propagation (aggregates + EGD + writeback)",
        params=params,
        base_path=base_path,
    )
