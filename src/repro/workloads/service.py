"""Mixed update/query service workload for the resident reasoner.

The tail of the paper's architecture (Section 5) is a long-lived reasoning
service: clients issue point queries while the extensional data keeps
changing underneath.  This module generates that workload — a recursive
reachability program with an existential audit rule over a random sparse
graph, plus a deterministic operation stream interleaving upserts,
retractions and point queries at a configurable ``update:query`` ratio.

The program is deliberately aggregate-free so retractions stay on the
incremental delete-and-rederive path (aggregate programs fall back to a
rebuild; the benchmark measures maintenance, not the fallback).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from ..core.parser import parse_program
from ..storage.database import Database
from .scenario import Scenario

SERVICE_PROGRAM = """
@output("Reach").
@output("Audit").
Reach(X, Y) :- Edge(X, Y).
Reach(X, Z) :- Reach(X, Y), Edge(Y, Z).
Audit(Y, Z) :- Source(X), Reach(X, Y).
"""

#: One operation of the mixed stream: ``("upsert", {pred: rows})``,
#: ``("retract", {pred: rows})`` or ``("query", query_text)``.
ServiceOp = Tuple[str, object]


def _random_edges(
    rng: random.Random, n_nodes: int, n_edges: int
) -> List[Tuple[str, str]]:
    edges: set = set()
    while len(edges) < n_edges:
        a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        if a != b:
            edges.add((f"n{a}", f"n{b}"))
    return sorted(edges)


def service_scenario(
    n_nodes: int = 60,
    n_edges: Optional[int] = None,
    n_sources: int = 3,
    seed: int = 9,
) -> Scenario:
    """The resident-service scenario: recursive reach + existential audit."""
    rng = random.Random(seed)
    if n_edges is None:
        n_edges = 2 * n_nodes
    database = Database()
    edge = database.relation("Edge", 2)
    for a, b in _random_edges(rng, n_nodes, n_edges):
        edge.add((a, b))
    source = database.relation("Source", 1)
    for i in sorted(rng.sample(range(n_nodes), min(n_sources, n_nodes))):
        source.add((f"n{i}",))
    return Scenario(
        name="service-mixed",
        program=parse_program(SERVICE_PROGRAM),
        database=database,
        outputs=("Reach", "Audit"),
        description="mixed update/query service loop over recursive reachability",
        params={
            "n_nodes": n_nodes,
            "n_edges": n_edges,
            "n_sources": n_sources,
            "seed": seed,
        },
    )


def service_operations(
    scenario: Scenario,
    n_ops: int = 200,
    update_ratio: Tuple[int, int] = (1, 10),
    retract_every: int = 3,
    seed: int = 97,
) -> Iterator[ServiceOp]:
    """A deterministic mixed operation stream over ``scenario``'s graph.

    ``update_ratio`` is ``(updates, queries)`` — e.g. ``(1, 10)`` yields one
    update per ten queries, ``(10, 1)`` ten updates per query.  Updates are
    append-mostly (the realistic shape of a streaming ingestion feed):
    every ``retract_every``-th update retracts a currently-present edge
    (tracked against the evolving edge set, so every retraction targets a
    fact that is actually extensional at that point), the rest upsert fresh
    edges.  Queries alternate between bound ``Reach`` point lookups and
    full declared-output extraction.
    """
    rng = random.Random(seed)
    n_nodes = int(scenario.params.get("n_nodes", 60))
    edges = {tuple(row) for row in scenario.database.relation("Edge")}
    updates, queries = update_ratio
    if updates <= 0 or queries <= 0:
        raise ValueError("update_ratio parts must be positive")
    if retract_every <= 0:
        raise ValueError("retract_every must be positive")
    cycle = ["update"] * updates + ["query"] * queries
    update_count = 0
    toggle_query = True
    for index in range(n_ops):
        kind = cycle[index % len(cycle)]
        if kind == "update":
            update_count += 1
            if update_count % retract_every != 0 or not edges:
                while True:
                    a = rng.randrange(n_nodes)
                    b = rng.randrange(n_nodes)
                    if a != b and (f"n{a}", f"n{b}") not in edges:
                        break
                row = (f"n{a}", f"n{b}")
                edges.add(row)
                yield ("upsert", {"Edge": [row]})
            else:
                row = rng.choice(sorted(edges))
                edges.discard(row)
                yield ("retract", {"Edge": [row]})
        else:
            if toggle_query:
                yield ("query", f'Reach("n{rng.randrange(n_nodes)}", Y)')
            else:
                yield ("query", None)  # full declared-output extraction
            toggle_query = not toggle_query


__all__ = ["SERVICE_PROGRAM", "ServiceOp", "service_scenario", "service_operations"]
