"""The common scenario abstraction used by examples, tests and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.rules import Program
from ..core.wardedness import analyse_program
from ..storage.database import Database


@dataclass
class Scenario:
    """A reasoning scenario: a program, its extensional data and its outputs."""

    name: str
    program: Program
    database: Database
    outputs: Tuple[str, ...]
    description: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    #: Base directory for ``@bind`` locations when the scenario reads its
    #: extensional data through external datasources instead of ``database``
    #: (pass it as ``VadalogReasoner(..., base_path=scenario.base_path)``).
    base_path: Optional[str] = None
    #: Point-query variants carry the bound query atom text (pass it as
    #: ``reasoner.reason(query=scenario.query, rewrite="magic")``); ``None``
    #: for whole-program scenarios.
    query: Optional[str] = None

    def facts(self):
        return self.database.facts()

    def summary(self) -> Dict[str, object]:
        analysis = analyse_program(self.program)
        data = dict(analysis.summary())
        data.update(
            {
                "name": self.name,
                "db_facts": len(self.database),
                "outputs": list(self.outputs),
            }
        )
        data.update(self.params)
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario({self.name!r}, rules={len(self.program.rules)}, "
            f"facts={len(self.database)})"
        )
