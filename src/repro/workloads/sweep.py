"""Scaling-curve sweeps along the parametric iWarded knob axes.

The paper's evaluation (Section 6.1, Figures 6/8) sweeps *generated
scenario families* along controlled axes instead of timing a handful of
fixed programs.  This module does the same over the parametric generator of
:mod:`repro.workloads.iwarded`: every :class:`SweepAxis` varies one knob
(recursion chain depth, existential density, predicate arity, join fan-in,
fact-set size) while the others stay at the sweep defaults, and
:func:`run_sweep` measures each grid point on the requested executors —
wall-clock, derived facts and peak-resident facts per step — producing the
*curves* that ``benchmarks/run_all.py`` persists and
``tools/check_bench.py --scaling-curves`` gates.

Every measured point is **answer-checked**: the reference executor
(``naive``) materialises the same grid point once and each measured
executor must reproduce its ground answers exactly and its null-answer
*pattern set* per output predicate — the same contract the executor
differentials enforce for recursive-existential scenarios, where
derivation order may retain different (homomorphically equivalent,
pattern-identical) null witnesses.

Two grid scales exist: the ``full`` grid is the nightly sweep; the
``smoke`` grid is small enough for the per-PR CI gate and the tier-1
smoke test, and its curve points are committed to
``benchmarks/baseline_smoke.json`` for the regression gate.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.isomorphism import pattern_key
from .iwarded import parametric_scenario
from .scenario import Scenario

#: Executors the nightly full sweep covers.
SWEEP_EXECUTORS: Tuple[str, ...] = ("compiled", "streaming", "parallel")
#: Executors the smoke-scale gate covers (kept to two so the gate stays fast).
SMOKE_SWEEP_EXECUTORS: Tuple[str, ...] = ("compiled", "streaming")
#: The answer-check reference executor.
REFERENCE_EXECUTOR = "naive"
#: Pinned worker count for the parallel executor (matches the bench gate —
#: the auto default scales with the host CPU count, which would make curve
#: points incomparable across machines).
SWEEP_PARALLELISM = 2

#: ``facts_per_predicate`` used on the axes that do not sweep the fact-set
#: size themselves.
FULL_SWEEP_FACTS = 20
SMOKE_SWEEP_FACTS = 6


@dataclass(frozen=True)
class SweepAxis:
    """One knob axis of the sweep grid.

    ``knob`` is the :func:`repro.workloads.iwarded.parametric_config`
    keyword the axis varies; ``full`` and ``smoke`` are its grid values at
    the two scales (always >= 4 points, the acceptance floor).
    """

    name: str
    knob: str
    full: Tuple[object, ...]
    smoke: Tuple[object, ...]

    def values(self, smoke: bool) -> Tuple[object, ...]:
        return self.smoke if smoke else self.full


#: The sweep grid: one axis per generator knob.
SWEEP_AXES: Tuple[SweepAxis, ...] = (
    SweepAxis("recursion-depth", "recursion_depth", (1, 2, 4, 6), (1, 2, 3, 4)),
    SweepAxis(
        "existential-density",
        "existential_density",
        (0.0, 0.25, 0.5, 1.0),
        (0.0, 0.25, 0.5, 1.0),
    ),
    SweepAxis("arity", "arity", (2, 3, 4, 5), (2, 3, 4, 5)),
    SweepAxis("join-fanin", "join_fanin", (2, 3, 4, 5), (2, 3, 4, 5)),
    SweepAxis("fact-size", "facts_per_predicate", (10, 20, 40, 80), (4, 6, 8, 10)),
)


def axis_by_name(name: str) -> SweepAxis:
    for axis in SWEEP_AXES:
        if axis.name == name:
            return axis
    raise ValueError(
        f"unknown sweep axis {name!r}; known axes: "
        f"{', '.join(a.name for a in SWEEP_AXES)}"
    )


def grid_scenario(axis: SweepAxis, value: object, smoke: bool = False) -> Scenario:
    """The scenario of one grid point: ``axis.knob = value``, rest default."""
    knobs: Dict[str, object] = {
        "facts_per_predicate": SMOKE_SWEEP_FACTS if smoke else FULL_SWEEP_FACTS
    }
    knobs[axis.knob] = value
    return parametric_scenario(**knobs)


def _answer_signature(result, outputs: Sequence[str]) -> Dict[str, object]:
    """Executor-comparable answer digest: exact ground facts + null patterns."""
    signature: Dict[str, object] = {}
    for predicate in outputs:
        facts = result.answers.facts_by_predicate.get(predicate, [])
        ground = frozenset(f for f in facts if not f.has_nulls)
        patterns = frozenset(pattern_key(f) for f in facts if f.has_nulls)
        signature[predicate] = (ground, patterns)
    return signature


def _reason(scenario: Scenario, executor: str, parallelism: Optional[int]):
    from ..engine.reasoner import VadalogReasoner

    kwargs = {}
    if executor == "parallel":
        kwargs["parallelism"] = parallelism
    reasoner = VadalogReasoner(
        scenario.program.copy(), executor=executor, **kwargs
    )
    return reasoner.reason(database=scenario.database, outputs=scenario.outputs)


class SweepAnswerMismatch(AssertionError):
    """A measured executor disagreed with the reference on a grid point."""


def run_axis(
    axis: SweepAxis,
    executors: Sequence[str],
    smoke: bool = False,
    answer_check: bool = True,
    measure_runs: int = 1,
    parallelism: Optional[int] = SWEEP_PARALLELISM,
) -> List[Dict[str, object]]:
    """Measure one axis: every grid value on every executor.

    Returns one point-row per (value, executor) with the curve metrics.
    With ``answer_check`` every (value, executor) result is compared to one
    reference (:data:`REFERENCE_EXECUTOR`) run of the same grid point;
    a mismatch raises :class:`SweepAnswerMismatch` — a sweep that cannot
    vouch for its answers must not produce curves.
    """
    points: List[Dict[str, object]] = []
    for value in axis.values(smoke):
        scenario = grid_scenario(axis, value, smoke=smoke)
        reference = None
        if answer_check:
            reference = _answer_signature(
                _reason(scenario, REFERENCE_EXECUTOR, parallelism),
                scenario.outputs,
            )
        for executor in executors:
            samples: List[float] = []
            result = None
            for _ in range(max(1, measure_runs)):
                started = time.perf_counter()
                result = _reason(scenario, executor, parallelism)
                samples.append(time.perf_counter() - started)
            checked = False
            if reference is not None:
                candidate = _answer_signature(result, scenario.outputs)
                if candidate != reference:
                    raise SweepAnswerMismatch(
                        f"sweep point {axis.name}={value} [{executor}] disagrees "
                        f"with the {REFERENCE_EXECUTOR} reference"
                    )
                checked = True
            points.append(
                {
                    "axis": axis.name,
                    "knob": axis.knob,
                    "value": value,
                    "scenario": scenario.name,
                    "rules": len(scenario.program.rules),
                    "db_facts": len(scenario.database),
                    "executor": executor,
                    "elapsed_seconds": round(statistics.median(samples), 4),
                    "total_facts": len(result.chase.store),
                    "derived_facts": len(result.chase.derived_facts()),
                    "rounds": result.chase.rounds,
                    "peak_resident_facts": result.chase.peak_resident_facts,
                    "answers": len(result.answers),
                    "answer_checked": checked,
                }
            )
    return points


def run_sweep(
    executors: Optional[Sequence[str]] = None,
    smoke: bool = False,
    axes: Optional[Sequence[str]] = None,
    answer_check: bool = True,
    measure_runs: int = 1,
    parallelism: Optional[int] = SWEEP_PARALLELISM,
) -> Dict[str, object]:
    """Run the grid sweep and return the curve section.

    The result maps every axis to its curve points (see :func:`run_axis`)
    plus enough context (grid values, executors, reference) for
    ``tools/check_bench.py --scaling-curves`` to re-derive expectations.
    """
    if executors is None:
        executors = SMOKE_SWEEP_EXECUTORS if smoke else SWEEP_EXECUTORS
    selected = (
        [axis_by_name(name) for name in axes]
        if axes is not None
        else list(SWEEP_AXES)
    )
    curves: Dict[str, object] = {}
    for axis in selected:
        curves[axis.name] = {
            "knob": axis.knob,
            "values": list(axis.values(smoke)),
            "points": run_axis(
                axis,
                executors,
                smoke=smoke,
                answer_check=answer_check,
                measure_runs=measure_runs,
                parallelism=parallelism,
            ),
        }
    return {
        "mode": "smoke" if smoke else "full",
        "executors": list(executors),
        "answer_reference": REFERENCE_EXECUTOR if answer_check else None,
        "facts_per_predicate_default": SMOKE_SWEEP_FACTS if smoke else FULL_SWEEP_FACTS,
        "parallelism": parallelism,
        "axes": curves,
    }
