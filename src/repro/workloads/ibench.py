"""iBench-style data-integration scenarios: STB-128 and ONT-256 (Section 6.2).

iBench generates large, complex data-integration rule sets.  The two
scenarios the paper uses (STB-128 and ONT-256, as packaged by ChaseBench)
are characterised by:

===============  =========  =========
property          STB-128    ONT-256
===============  =========  =========
rules              ~250       ~789
existential rules   25%        35%
harmful joins        15        295
null propagations    30       >300
source predicates   112        220
facts/predicate    1000       1000
===============  =========  =========

This generator reproduces those structural statistics at a configurable
scale: the default sizes are reduced (Python-friendly) but keep the same
proportions, so the relative behaviour of the engines — which is what the
experiment compares — is preserved.  Rules are organised in layered "mapping
chains" (source → intermediate → target) with recursion inside the
intermediate layer, existential invention of target identifiers and warded
propagation of the invented values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..core.atoms import Atom
from ..core.rules import Program, Rule
from ..core.terms import Variable
from ..storage.database import Database
from .scenario import Scenario


@dataclass(frozen=True)
class IBenchConfig:
    """Scale parameters of an iBench-like scenario."""

    name: str
    chains: int
    chain_length: int
    existential_ratio: float
    harmful_joins: int
    recursive_ratio: float
    source_facts: int
    seed: int = 31


STB_128 = IBenchConfig(
    name="STB-128",
    chains=16,
    chain_length=4,
    existential_ratio=0.25,
    harmful_joins=3,
    recursive_ratio=0.2,
    source_facts=60,
)

ONT_256 = IBenchConfig(
    name="ONT-256",
    chains=28,
    chain_length=5,
    existential_ratio=0.35,
    harmful_joins=6,
    recursive_ratio=0.25,
    source_facts=60,
)


def generate_ibench(config: IBenchConfig) -> Tuple[Program, Database]:
    """Generate an iBench-like warded integration scenario."""
    rng = random.Random(config.seed)
    program = Program()
    x, y, z, p = Variable("X"), Variable("Y"), Variable("Z"), Variable("P")

    source_preds: List[str] = []
    target_preds: List[str] = []
    affected_targets: List[str] = []

    rule_index = 0
    for chain in range(config.chains):
        source = f"Src{chain}"
        source_preds.append(source)
        previous = source
        previous_affected = False
        for layer in range(config.chain_length):
            target = f"T{chain}_{layer}"
            target_preds.append(target)
            label = f"m{rule_index}"
            rule_index += 1
            make_existential = rng.random() < config.existential_ratio
            if make_existential:
                # Source tuple generates a target tuple with an invented value
                # that is then propagated (warded) further down the chain.
                program.add_rule(
                    Rule(
                        body=(Atom(previous, (x, y)),),
                        head=(Atom(target, (x, p)),),
                        label=label,
                    )
                )
                affected_targets.append(target)
                previous_affected = True
            elif previous_affected:
                # Warded propagation of the invented identifier through a join
                # with a ground source relation.
                program.add_rule(
                    Rule(
                        body=(Atom(previous, (x, p)), Atom(source, (x, y))),
                        head=(Atom(target, (y, p)),),
                        label=label,
                    )
                )
                affected_targets.append(target)
            else:
                program.add_rule(
                    Rule(
                        body=(Atom(previous, (x, y)), Atom(source, (y, z))),
                        head=(Atom(target, (x, z)),),
                        label=label,
                    )
                )
            if rng.random() < config.recursive_ratio and not previous_affected:
                # Recursive closure inside the chain (pervasive recursion).
                program.add_rule(
                    Rule(
                        body=(Atom(target, (x, y)), Atom(target, (y, z))),
                        head=(Atom(target, (x, z)),),
                        label=f"m{rule_index}",
                    )
                )
                rule_index += 1
            previous = target

    # Harmful joins: strong-link style rules over affected target predicates.
    for index in range(config.harmful_joins):
        if len(affected_targets) < 2:
            break
        first, second = rng.sample(affected_targets, 2)
        program.add_rule(
            Rule(
                body=(Atom(first, (x, p)), Atom(second, (y, p))),
                head=(Atom(f"Link{index}", (x, y)),),
                label=f"hj{index}",
            )
        )

    program.outputs = set(target_preds) | {
        f"Link{i}" for i in range(config.harmful_joins)
    }

    database = Database()
    domain = max(20, config.source_facts // 2)
    for source in source_preds:
        rows = set()
        while len(rows) < config.source_facts:
            rows.add((f"s{rng.randrange(domain)}", f"s{rng.randrange(domain)}"))
        database.add_tuples(source, sorted(rows))
    return program, database


def ibench_scenario(name: str = "STB-128", source_facts: int | None = None) -> Scenario:
    """Build the STB-128-like or ONT-256-like scenario."""
    config = {"STB-128": STB_128, "ONT-256": ONT_256}.get(name)
    if config is None:
        raise KeyError(f"unknown iBench scenario {name!r}; known: STB-128, ONT-256")
    if source_facts is not None:
        config = IBenchConfig(
            name=config.name,
            chains=config.chains,
            chain_length=config.chain_length,
            existential_ratio=config.existential_ratio,
            harmful_joins=config.harmful_joins,
            recursive_ratio=config.recursive_ratio,
            source_facts=source_facts,
            seed=config.seed,
        )
    program, database = generate_ibench(config)
    return Scenario(
        name=f"ibench-{name.lower()}",
        program=program,
        database=database,
        outputs=tuple(sorted(program.outputs)),
        description=f"iBench-like integration scenario {name}",
        params={
            "chains": config.chains,
            "chain_length": config.chain_length,
            "existential_ratio": config.existential_ratio,
            "harmful_joins": config.harmful_joins,
            "source_facts": config.source_facts,
        },
    )
