"""ChaseBench-style scenarios: Doctors, DoctorsFD and LUBM (Section 6.5).

These scenarios are "warded by chance": mostly harmless joins and no
propagation of labelled nulls, i.e. typical data-exchange / pure-Datalog
settings where the warded machinery gives no special advantage.  The paper
uses them to show the Vadalog system is also competitive as a general
chase / query-answering engine.

* **Doctors** — a classic schema-mapping scenario from the data-exchange
  literature: source relations about doctors, hospitals and prescriptions
  mapped into a target schema by non-recursive s-t TGDs with existentials.
* **DoctorsFD** — the same mapping plus functional dependencies on the
  target, expressed as EGDs.
* **LUBM** — the Lehigh University Benchmark: a university-domain ontology;
  we include the core subset of its class hierarchy / transitive rules that
  the 14 standard queries exercise, with a parametric data generator.
"""

from __future__ import annotations

import random

from ..core.parser import parse_program
from ..storage.database import Database
from .scenario import Scenario

DOCTORS_PROGRAM = """
@output("Doctor").
@output("Prescription").
@output("Hospital").
Doctor(N, S, H) :- Person(N, S), WorksAt(N, H).
Hospital(H, C) :- HospitalInfo(H, C).
Prescription(I, N, M) :- Prescribes(N, M, I).
Treatment(I, P, M) :- Prescription(I, N, M), TreatedBy(P, N).
TargetPatient(P, D) :- TreatedBy(P, N), Doctor(N, S, H), D = N.
"""

DOCTORS_FD_PROGRAM = DOCTORS_PROGRAM + """
S1 = S2 :- Doctor(N, S1, H1), Doctor(N, S2, H2).
C1 = C2 :- Hospital(H, C1), Hospital(H, C2).
"""

LUBM_PROGRAM = """
@output("Professor").
@output("Student").
@output("Person").
@output("MemberOf").
@output("TakesCourseAtDept").
Professor(X) :- FullProfessor(X).
Professor(X) :- AssociateProfessor(X).
Professor(X) :- AssistantProfessor(X).
Faculty(X) :- Professor(X).
Faculty(X) :- Lecturer(X).
Person(X) :- Faculty(X).
Person(X) :- Student(X).
Student(X) :- UndergraduateStudent(X).
Student(X) :- GraduateStudent(X).
MemberOf(X, D) :- WorksFor(X, D).
MemberOf(X, D) :- StudentOf(X, D).
SubOrganizationOf(X, Z) :- SubOrganizationOf(X, Y), SubOrganizationOf(Y, Z).
MemberOf(X, U) :- MemberOf(X, D), SubOrganizationOf(D, U).
TeacherOf(P, C) :- Teaches(P, C), Professor(P).
TakesCourseAtDept(S, C, D) :- TakesCourse(S, C), TeacherOf(P, C), WorksFor(P, D).
Advisor(S, P) :- AdvisedBy(S, P), Professor(P).
HeadOf(P, D) :- Chairs(P, D), WorksFor(P, D).
"""


def doctors_database(n_facts: int, seed: int = 41) -> Database:
    """Generate a Doctors source instance with roughly ``n_facts`` facts."""
    rng = random.Random(seed)
    database = Database()
    n_doctors = max(5, n_facts // 5)
    n_patients = max(5, n_facts // 4)
    n_hospitals = max(3, n_facts // 20)
    doctors = [f"doc{i}" for i in range(n_doctors)]
    patients = [f"pat{i}" for i in range(n_patients)]
    hospitals = [f"hosp{i}" for i in range(n_hospitals)]
    medicines = [f"med{i}" for i in range(max(3, n_facts // 10))]

    database.add_tuples("Person", [(d, f"spec{i % 7}") for i, d in enumerate(doctors)])
    database.add_tuples("WorksAt", [(d, rng.choice(hospitals)) for d in doctors])
    database.add_tuples("HospitalInfo", [(h, f"city{i % 5}") for i, h in enumerate(hospitals)])
    database.add_tuples(
        "Prescribes",
        [
            (rng.choice(doctors), rng.choice(medicines), f"rx{i}")
            for i in range(max(5, n_facts // 3))
        ],
    )
    database.add_tuples(
        "TreatedBy", [(p, rng.choice(doctors)) for p in patients]
    )
    return database


def doctors_scenario(n_facts: int = 500, seed: int = 41) -> Scenario:
    """The Doctors mapping scenario."""
    return Scenario(
        name="doctors",
        program=parse_program(DOCTORS_PROGRAM),
        database=doctors_database(n_facts, seed),
        outputs=("Doctor", "Prescription", "Hospital"),
        description="Doctors schema-mapping scenario (data exchange literature)",
        params={"source_facts": n_facts},
    )


def doctors_fd_scenario(n_facts: int = 500, seed: int = 41) -> Scenario:
    """The DoctorsFD scenario: the Doctors mapping plus target EGDs."""
    return Scenario(
        name="doctors-fd",
        program=parse_program(DOCTORS_FD_PROGRAM),
        database=doctors_database(n_facts, seed),
        outputs=("Doctor", "Prescription", "Hospital"),
        description="Doctors scenario with functional dependencies (EGDs) on the target",
        params={"source_facts": n_facts},
    )


def lubm_database(n_facts: int, seed: int = 43) -> Database:
    """Generate a LUBM-like university instance with roughly ``n_facts`` facts."""
    rng = random.Random(seed)
    database = Database()
    n_universities = max(1, n_facts // 400)
    n_departments = max(3, n_facts // 60)
    n_professors = max(5, n_facts // 15)
    n_students = max(10, n_facts // 4)
    n_courses = max(5, n_facts // 20)

    universities = [f"univ{i}" for i in range(n_universities)]
    departments = [f"dept{i}" for i in range(n_departments)]
    professors = [f"prof{i}" for i in range(n_professors)]
    students = [f"stud{i}" for i in range(n_students)]
    courses = [f"course{i}" for i in range(n_courses)]

    database.add_tuples(
        "SubOrganizationOf", [(d, rng.choice(universities)) for d in departments]
    )
    database.add_tuples(
        "FullProfessor", [(p,) for p in professors if rng.random() < 0.3]
    )
    database.add_tuples(
        "AssociateProfessor", [(p,) for p in professors if rng.random() < 0.3]
    )
    database.add_tuples(
        "AssistantProfessor",
        [(p,) for p in professors if rng.random() < 0.3] or [(professors[0],)],
    )
    database.add_tuples("Lecturer", [(p,) for p in professors if rng.random() < 0.1])
    database.add_tuples("WorksFor", [(p, rng.choice(departments)) for p in professors])
    database.add_tuples(
        "UndergraduateStudent", [(s,) for s in students if rng.random() < 0.7]
    )
    database.add_tuples(
        "GraduateStudent", [(s,) for s in students if rng.random() < 0.3] or [(students[0],)]
    )
    database.add_tuples("StudentOf", [(s, rng.choice(departments)) for s in students])
    database.add_tuples("Teaches", [(rng.choice(professors), c) for c in courses])
    database.add_tuples(
        "TakesCourse",
        [(rng.choice(students), rng.choice(courses)) for _ in range(max(10, n_facts // 3))],
    )
    database.add_tuples(
        "AdvisedBy", [(s, rng.choice(professors)) for s in students if rng.random() < 0.4]
    )
    database.add_tuples("Chairs", [(rng.choice(professors), d) for d in departments])
    return database


def lubm_scenario(n_facts: int = 1000, seed: int = 43) -> Scenario:
    """The LUBM-like university scenario."""
    return Scenario(
        name="lubm",
        program=parse_program(LUBM_PROGRAM),
        database=lubm_database(n_facts, seed),
        outputs=("Professor", "Student", "Person", "MemberOf", "TakesCourseAtDept"),
        description="Lehigh University Benchmark (LUBM) style ontology reasoning",
        params={"source_facts": n_facts},
    )


#: Bound-query templates for :func:`lubm_point_query_scenario`, in the
#: spirit of the standard LUBM queries (a named individual, free rest).
LUBM_POINT_QUERIES = {
    # LUBM Q11/Q12 flavour: every organisation one student is a member of
    # (exercises the recursive SubOrganizationOf closure under a binding).
    "member": 'MemberOf("{student}", U)',
    # LUBM Q9 flavour: the course/department pairs of one student
    # (a three-way join where the binding cascades through TeacherOf,
    # Professor and WorksFor demands).
    "takes": 'TakesCourseAtDept("{student}", C, D)',
}


def _lubm_student_with_answer(database: Database, kind: str) -> str:
    """Deterministically pick a student whose bound query has answers.

    For ``"member"`` any enrolled student works; for ``"takes"`` the
    student must take a course taught by a professor (the rule joins
    ``TakesCourse``, ``TeacherOf`` — which requires ``Professor`` — and
    ``WorksFor``), so the choice walks the raw relations the same way the
    rules would.
    """

    def rows(name):
        try:
            return sorted(database.relation(name).tuples)
        except KeyError:
            return []

    if kind == "takes":
        professors = {r[0] for n in ("FullProfessor", "AssociateProfessor", "AssistantProfessor") for r in rows(n)}
        employed = {r[0] for r in rows("WorksFor")}
        teacher_of = {course: prof for prof, course in rows("Teaches")}
        for student, course in rows("TakesCourse"):
            professor = teacher_of.get(course)
            if professor in professors and professor in employed:
                return student
    enrolled = rows("StudentOf")
    return enrolled[0][0] if enrolled else "stud0"


def lubm_point_query_scenario(
    n_facts: int = 1000,
    seed: int = 43,
    kind: str = "member",
    student: str = "",
) -> Scenario:
    """A LUBM-style bound query over the university instance.

    ``kind`` selects the query template from :data:`LUBM_POINT_QUERIES`;
    both bind one student individual, mirroring how the standard LUBM
    queries name an entity and ask for its closure.  The scenario carries
    the query text so the magic-set rewriting cascades the binding through
    the ontology rules (``MemberOf`` → ``SubOrganizationOf``, or
    ``TakesCourseAtDept`` → ``TeacherOf`` → ``Professor``).  When
    ``student`` is empty a deterministic individual with a non-empty answer
    is chosen from the generated instance (the first enrolled/taking
    student in sorted order).
    """
    if kind not in LUBM_POINT_QUERIES:
        raise ValueError(
            f"kind must be one of {', '.join(sorted(LUBM_POINT_QUERIES))}"
        )
    database = lubm_database(n_facts, seed)
    if not student:
        student = _lubm_student_with_answer(database, kind)
    query = LUBM_POINT_QUERIES[kind].format(student=student)
    predicate = query.split("(", 1)[0]
    return Scenario(
        name=f"lubm-point-{kind}",
        program=parse_program(LUBM_PROGRAM),
        database=database,
        outputs=(predicate,),
        description=f"LUBM-style bound query ({kind}) for one student",
        params={"source_facts": n_facts, "kind": kind, "student": student},
        query=query,
    )
