"""Workload and scenario generators for the experimental evaluation (Section 6)."""

from .scenario import Scenario
from .iwarded import (
    GenerationError,
    IWardedConfig,
    SCENARIO_CONFIGS,
    generate_iwarded,
    iwarded_scenario,
    parametric_config,
    parametric_scenario,
)
from .datascience import (
    er_fusion_scenario,
    generate_er_database,
    generate_lp_database,
    label_propagation_scenario,
)
from .sweep import SWEEP_AXES, SweepAxis, grid_scenario, run_axis, run_sweep
from .dbpedia import (
    generate_company_graph,
    psc_scenario,
    psc_point_query_scenario,
    allpsc_scenario,
    strong_links_scenario,
)
from .companies import (
    ScaleFreeConfig,
    generate_ownership_graph,
    control_scenario,
    control_point_query_scenario,
    majority_control_scenario,
    company_control_program,
)
from .ibench import ibench_scenario
from .chasebench import (
    doctors_scenario,
    doctors_fd_scenario,
    lubm_scenario,
    lubm_point_query_scenario,
)
from .service import (
    SERVICE_PROGRAM,
    service_operations,
    service_scenario,
)
from .scaling import (
    dbsize_scenario,
    rule_count_scenario,
    atom_count_scenario,
    arity_scenario,
)

__all__ = [
    "Scenario",
    "GenerationError",
    "IWardedConfig",
    "SCENARIO_CONFIGS",
    "generate_iwarded",
    "iwarded_scenario",
    "parametric_config",
    "parametric_scenario",
    "er_fusion_scenario",
    "generate_er_database",
    "generate_lp_database",
    "label_propagation_scenario",
    "SWEEP_AXES",
    "SweepAxis",
    "grid_scenario",
    "run_axis",
    "run_sweep",
    "generate_company_graph",
    "psc_scenario",
    "psc_point_query_scenario",
    "allpsc_scenario",
    "strong_links_scenario",
    "ScaleFreeConfig",
    "generate_ownership_graph",
    "control_scenario",
    "control_point_query_scenario",
    "majority_control_scenario",
    "company_control_program",
    "ibench_scenario",
    "doctors_scenario",
    "doctors_fd_scenario",
    "lubm_scenario",
    "lubm_point_query_scenario",
    "SERVICE_PROGRAM",
    "service_operations",
    "service_scenario",
    "dbsize_scenario",
    "rule_count_scenario",
    "atom_count_scenario",
    "arity_scenario",
]
