"""DBpedia-style company/person reasoning scenarios (Section 6.3).

The paper extracts from DBpedia the relations ``Control(company, company)``
(from ``dbo:parentCompany``) and ``KeyPerson(company, person)`` (from
``dbo:keyPerson``) plus the ``Company`` and ``Person`` unary relations, and
runs four reasoning tasks on them: PSC, AllPSC, SpecStrongLinks and
AllStrongLinks (Examples 11-13).

DBpedia itself is not available offline, so :func:`generate_company_graph`
produces a synthetic dataset with the same schema and comparable shape:
control edges form a forest of chains/trees (companies have at most a few
parents, control chains can be long) and key persons are attached to a
subset of companies with a small fan-out, which is what drives the
transitive-closure behaviour the experiments measure.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..core.parser import parse_program
from ..storage.database import Database
from ..storage.datasources import save_database_sqlite
from .scenario import Scenario

PSC_PROGRAM = """
@output("PSC").
PSC(X, P) :- KeyPerson(X, P), Person(P).
PSC(X, P) :- Control(Y, X), PSC(Y, P).
"""

ALLPSC_PROGRAM = """
@output("PSCSet").
PSCSet(X, J) :- KeyPerson(X, P), Person(P), J = munion(P).
PSCSet(X, J) :- Control(Y, X), PSC(Y, P), J = munion(P).
PSC(X, P) :- KeyPerson(X, P), Person(P).
PSC(X, P) :- Control(Y, X), PSC(Y, P).
"""

STRONG_LINKS_PROGRAM_TEMPLATE = """
@output("StrongLink").
PSC(X, P) :- KeyPerson(X, P).
PSC(X, P) :- Company(X).
PSC(X, P) :- Control(Y, X), PSC(Y, P).
StrongLink(X, Y, W) :- PSC(X, P), PSC(Y, P), X > Y, W = mcount(P), W >= {threshold}.
"""

SQLITE_DB_NAME = "dbpedia.db"

#: ``@bind`` header for the SQLite-backed variant.  All four extracted
#: relations are bound; rules only consume three of them, so the streaming
#: pipeline prunes the ``Company`` source and its table is never read.
SQLITE_BINDINGS = """
@bind("Control", "sqlite", "{db}").
@bind("KeyPerson", "sqlite", "{db}").
@bind("Person", "sqlite", "{db}").
@bind("Company", "sqlite", "{db}").
"""


def _sqlite_parts(
    database: Database, data_dir: Union[str, Path, None], program_text: str
) -> Tuple[object, Database, str]:
    """Export the company graph to SQLite and bind the program to it."""
    if data_dir is None:
        raise ValueError("backend='sqlite' needs a data_dir to hold the .db file")
    directory = Path(data_dir)
    directory.mkdir(parents=True, exist_ok=True)
    save_database_sqlite(database, directory / SQLITE_DB_NAME)
    bound = SQLITE_BINDINGS.format(db=SQLITE_DB_NAME) + program_text
    return parse_program(bound), Database(), str(directory)


def generate_company_graph(
    n_companies: int,
    n_persons: int,
    seed: int = 11,
    chain_length: int = 8,
    key_person_ratio: float = 0.6,
) -> Database:
    """Generate a synthetic DBpedia-like company/person graph.

    * companies are organised in control chains/trees of average depth
      ``chain_length`` (long control chains are what makes the PSC closure
      expensive, as in the real DBpedia extract);
    * roughly ``key_person_ratio`` of the companies have at least one key
      person; persons may be shared between companies (which is what produces
      strong links).
    """
    rng = random.Random(seed)
    database = Database()
    companies = [f"company{i}" for i in range(n_companies)]
    persons = [f"person{i}" for i in range(max(1, n_persons))]

    database.add_tuples("Company", [(c,) for c in companies])
    database.add_tuples("Person", [(p,) for p in persons])

    control_rows: List[Tuple[str, str]] = []
    for index, company in enumerate(companies):
        if index == 0:
            continue
        if index % chain_length == 0:
            # Start of a new chain: attach to a random earlier root to form a tree.
            parent = companies[rng.randrange(0, max(1, index // chain_length))]
        else:
            parent = companies[index - 1]
        control_rows.append((parent, company))
        # A small fraction of companies have a second controller.
        if rng.random() < 0.08 and index > 2:
            control_rows.append((companies[rng.randrange(0, index - 1)], company))
    database.add_tuples("Control", sorted(set(control_rows)))

    key_rows: List[Tuple[str, str]] = []
    for company in companies:
        if rng.random() < key_person_ratio:
            for _ in range(1 + (rng.random() < 0.25)):
                key_rows.append((company, rng.choice(persons)))
    database.add_tuples("KeyPerson", sorted(set(key_rows)))
    return database


def psc_scenario(
    n_companies: int = 200,
    n_persons: int = 400,
    seed: int = 11,
    backend: str = "memory",
    data_dir: Union[str, Path, None] = None,
) -> Scenario:
    """The PSC scenario (Example 11): persons with significant control.

    ``backend="sqlite"`` exports the company graph into
    ``data_dir/dbpedia.db`` and reads it back through ``@bind`` datasources
    (same answers as the in-memory backend on every executor).
    """
    if backend not in {"memory", "sqlite"}:
        raise ValueError("backend must be 'memory' or 'sqlite'")
    database = generate_company_graph(n_companies, n_persons, seed=seed)
    params = {"companies": n_companies, "persons": n_persons, "backend": backend}
    base_path: Optional[str] = None
    if backend == "sqlite":
        program, database, base_path = _sqlite_parts(database, data_dir, PSC_PROGRAM)
    else:
        program = parse_program(PSC_PROGRAM)
    return Scenario(
        name="dbpedia-psc",
        program=program,
        database=database,
        outputs=("PSC",),
        description="Persons with significant control over DBpedia-like companies",
        params=params,
        base_path=base_path,
    )


def psc_point_query_scenario(
    n_companies: int = 200,
    n_persons: int = 400,
    seed: int = 11,
    company: Optional[str] = None,
) -> Scenario:
    """Single-entity PSC: the persons with significant control of *one* company.

    The point-query counterpart of :func:`psc_scenario`: the scenario
    carries ``query='PSC("<c>", P)'``, and the magic-set rewriting walks
    the ``Control`` chain *backwards* from the queried company (demand rule
    ``magic(Y) :- magic(X), Control(Y, X)``), so only that company's
    ancestor cone is ever materialised.  ``company`` defaults to the last
    generated company — the end of a control chain, i.e. the deepest
    ancestor cone in the instance.
    """
    database = generate_company_graph(n_companies, n_persons, seed=seed)
    if company is None:
        company = f"company{n_companies - 1}"
    return Scenario(
        name="dbpedia-psc-point",
        program=parse_program(PSC_PROGRAM),
        database=database,
        outputs=("PSC",),
        description="Persons with significant control over a single company",
        params={
            "companies": n_companies,
            "persons": n_persons,
            "company": company,
        },
        query=f'PSC("{company}", P)',
    )


def allpsc_scenario(
    n_companies: int = 200, n_persons: int = 400, seed: int = 11
) -> Scenario:
    """The AllPSC scenario (Example 12): group all PSC of a company with munion."""
    database = generate_company_graph(n_companies, n_persons, seed=seed)
    return Scenario(
        name="dbpedia-allpsc",
        program=parse_program(ALLPSC_PROGRAM),
        database=database,
        outputs=("PSCSet",),
        description="All PSC of each company grouped in a single set",
        params={"companies": n_companies, "persons": n_persons},
    )


def strong_links_scenario(
    n_companies: int = 120,
    n_persons: int = 100,
    threshold: int = 1,
    specific_company: Optional[str] = None,
    seed: int = 11,
) -> Scenario:
    """The SpecStrongLinks / AllStrongLinks scenarios (Example 13).

    ``threshold`` is the minimum number of shared PSC (the paper uses N=1 for
    the single-company variant and N=3 for the all-pairs variant).  When
    ``specific_company`` is given, the scenario asks only for the strong links
    of that company (SpecStrongLinks); otherwise all pairs are requested
    (AllStrongLinks).
    """
    database = generate_company_graph(
        n_companies, n_persons, seed=seed, key_person_ratio=0.8
    )
    text = STRONG_LINKS_PROGRAM_TEMPLATE.format(threshold=threshold)
    if specific_company is not None:
        text += f'\nSpecLink(Y, W) :- StrongLink("{specific_company}", Y, W).\n'
        text += f'SpecLink(X, W) :- StrongLink(X, "{specific_company}", W).\n'
        text += '@output("SpecLink").\n'
    program = parse_program(text)
    outputs = ("SpecLink",) if specific_company is not None else ("StrongLink",)
    name = "dbpedia-specstronglinks" if specific_company else "dbpedia-allstronglinks"
    return Scenario(
        name=name,
        program=program,
        database=database,
        outputs=outputs,
        description="Strong links between companies sharing persons of significant control",
        params={
            "companies": n_companies,
            "persons": n_persons,
            "threshold": threshold,
            "specific_company": specific_company,
        },
    )
