"""Scalability scenario variants of SynthB (Section 6.7, Figure 8).

The paper characterises scalability along four further dimensions, all as
variations of the SynthB scenario of Section 6.1:

* **DbSize**  — growing source instances (uniform value distribution);
* **Rule#**   — more rules obtained by composing independent copies (blocks)
  of the basic rule set, each renamed and wired to its own input predicates
  so that blocks do not interact and only the number of rules grows;
* **Atom#**   — join rules with more body atoms (2 → 16), added so that the
  number of output facts is preserved;
* **Arity**   — predicates of growing arity (3 → 24), adding variables that
  do not create new interactions between atoms.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..core.atoms import Atom
from ..core.rules import Program, Rule
from ..core.terms import Variable
from ..storage.database import Database
from .iwarded import SCENARIO_CONFIGS, generate_iwarded
from .scenario import Scenario


def _base_synthb(facts_per_predicate: int = 40) -> Tuple[Program, Database]:
    config = dataclasses.replace(
        SCENARIO_CONFIGS["synthB"], facts_per_predicate=facts_per_predicate
    )
    return generate_iwarded(config)


def dbsize_scenario(n_facts_per_predicate: int) -> Scenario:
    """Figure 8(a): SynthB with a source database of growing size."""
    program, database = _base_synthb(n_facts_per_predicate)
    return Scenario(
        name=f"scaling-dbsize-{n_facts_per_predicate}",
        program=program,
        database=database,
        outputs=tuple(sorted(program.outputs)),
        description="SynthB with a growing source database (Figure 8a)",
        params={"facts_per_predicate": n_facts_per_predicate, "db_facts": len(database)},
    )


def rule_count_scenario(blocks: int, facts_per_predicate: int = 25) -> Scenario:
    """Figure 8(b): SynthB composed of ``blocks`` independent renamed copies."""
    program = Program()
    database = Database()
    for block in range(blocks):
        block_program, block_database = _base_synthb(facts_per_predicate)
        renaming = {p.name: f"B{block}_{p.name}" for p in block_program.predicates()}
        for rule in block_program.rules:
            program.add_rule(
                Rule(
                    body=tuple(Atom(renaming[a.predicate], a.terms) for a in rule.body),
                    head=tuple(Atom(renaming[a.predicate], a.terms) for a in rule.head),
                    conditions=rule.conditions,
                    assignments=rule.assignments,
                    aggregate=rule.aggregate,
                    label=f"B{block}_{rule.label}",
                )
            )
        program.outputs |= {renaming[name] for name in block_program.outputs}
        for relation_name in block_database.relations():
            database.add_tuples(
                renaming[relation_name], block_database.relation(relation_name).tuples
            )
    return Scenario(
        name=f"scaling-rules-{blocks * 100}",
        program=program,
        database=database,
        outputs=tuple(sorted(program.outputs)),
        description="SynthB composed of independent blocks (Figure 8b)",
        params={"blocks": blocks, "rules": len(program.rules), "db_facts": len(database)},
    )


def atom_count_scenario(body_atoms: int, facts_per_predicate: int = 25) -> Scenario:
    """Figure 8(c): SynthB with join rules widened to ``body_atoms`` body atoms.

    Extra atoms are chained copies of an auxiliary edge predicate ``Pad`` that
    contains a single reflexive tuple per domain constant, so the join result
    (and hence the output) is preserved while the processing pipeline gets
    longer — the same construction the paper uses to isolate the effect of
    rule width.
    """
    if body_atoms < 2:
        raise ValueError("body_atoms must be at least 2")
    program, database = _base_synthb(facts_per_predicate)
    widened = Program()
    widened.outputs = set(program.outputs)
    for rule in program.rules:
        body = list(rule.body)
        if len(rule.relational_body) >= 2:
            anchor = rule.relational_body[0]
            anchor_vars = anchor.variables()
            if anchor_vars:
                link = anchor_vars[0]
                extra: List[Atom] = []
                previous = link
                for extra_index in range(body_atoms - len(rule.relational_body)):
                    extra.append(Atom("Pad", (previous, previous)))
                body = body + extra
        widened.add_rule(
            Rule(
                body=tuple(body),
                head=rule.head,
                conditions=rule.conditions,
                assignments=rule.assignments,
                aggregate=rule.aggregate,
                label=rule.label,
            )
        )
    # Pad contains the reflexive pair of every domain constant.
    constants = set()
    for relation_name in database.relations():
        for row in database.relation(relation_name).tuples:
            constants.update(row)
    database.add_tuples("Pad", [(c, c) for c in sorted(constants)])
    return Scenario(
        name=f"scaling-atoms-{body_atoms}",
        program=widened,
        database=database,
        outputs=tuple(sorted(widened.outputs)),
        description="SynthB with wider join rules (Figure 8c)",
        params={"body_atoms": body_atoms, "db_facts": len(database)},
    )


def arity_scenario(arity: int, facts_per_predicate: int = 25) -> Scenario:
    """Figure 8(d): SynthB with predicates padded to the given arity.

    Every predicate gets ``arity - 2`` extra positions holding pass-through
    variables (bound in the body, copied to the head); database facts are
    padded with constant filler values.  The padding adds data volume without
    creating new interactions between atoms, as in the paper.
    """
    if arity < 2:
        raise ValueError("arity must be at least 2")
    program, database = _base_synthb(facts_per_predicate)
    extra = arity - 2
    if extra == 0:
        padded_program, padded_database = program, database
    else:
        pad_vars = tuple(Variable(f"PAD{i}") for i in range(extra))
        padded_program = Program()
        padded_program.outputs = set(program.outputs)

        def pad_atom(atom: Atom) -> Atom:
            return Atom(atom.predicate, tuple(atom.terms) + pad_vars)

        for rule in program.rules:
            padded_program.add_rule(
                Rule(
                    body=tuple(pad_atom(a) for a in rule.body),
                    head=tuple(pad_atom(a) for a in rule.head),
                    conditions=rule.conditions,
                    assignments=rule.assignments,
                    aggregate=rule.aggregate,
                    label=rule.label,
                )
            )
        padded_database = Database()
        filler = tuple(f"pad{i}" for i in range(extra))
        for relation_name in database.relations():
            padded_database.add_tuples(
                relation_name,
                [tuple(row) + filler for row in database.relation(relation_name).tuples],
            )
    return Scenario(
        name=f"scaling-arity-{arity}",
        program=padded_program,
        database=padded_database,
        outputs=tuple(sorted(padded_program.outputs)),
        description="SynthB with padded predicate arity (Figure 8d)",
        params={"arity": arity, "db_facts": len(padded_database)},
    )
