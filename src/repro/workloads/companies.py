"""Company-control scenarios on ownership graphs (Sections 1, 6.4).

The industrial validation of the paper solves the *company control* problem
(Example 2) on (a) real European ownership graphs and (b) synthetic
scale-free networks generated with the parameters learned from the real data
(α = 0.71, β = 0.09, γ = 0.2).  The real graphs are proprietary, so both the
"real-like" and the random graphs here come from the same directed
scale-free generator (Bollobás et al., the model cited by the paper),
instantiated with different seeds and densities — the paper itself observes
that the synthetic graphs track the real ones closely (Figure 5(e,f)).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ..core.parser import parse_program
from ..core.rules import Program
from ..storage.database import Database
from ..storage.datasources import save_database_sqlite
from .scenario import Scenario

CONTROL_PROGRAM = """
@output("Control").
Control(X, Y) :- Own(X, Y, W), W > 0.5.
Control(X, Z) :- Control(X, Y), Own(Y, Z, W), V = msum(W, <Y>), V > 0.5.
"""

#: ``@bind`` header prepended when the scenario reads from a SQLite file;
#: ``Company`` is bound too although no rule uses it — the streaming
#: pipeline's backward slice prunes that source, so the table is never read.
SQLITE_BINDINGS = """
@bind("Own", "sqlite", "{db}").
@bind("Company", "sqlite", "{db}").
"""

#: Majority-chain control: control through chains of direct majority stakes
#: only.  Unlike Example 2's ``msum`` accumulation, ``W > 0.5`` constrains
#: **every** occurrence of ``Own``, so the reasoner pushes the selection
#: into the bound source (minority edges never leave a SQLite backend).
MAJORITY_CONTROL_PROGRAM = """
@output("Control").
Control(X, Y) :- Own(X, Y, W), W > 0.5.
Control(X, Z) :- Control(X, Y), Own(Y, Z, W), W > 0.5.
"""

SQLITE_DB_NAME = "companies.db"


def company_control_program() -> Program:
    """The company-control rules of Example 2 (with monotonic sum)."""
    return parse_program(CONTROL_PROGRAM)


def _sqlite_scenario_parts(
    database: Database, data_dir: Union[str, Path, None], program_text: str
) -> Tuple[Program, Database, str]:
    """Export ``database`` to SQLite and rewrite the program to bind it.

    Returns the bound program, an **empty** database (the extensional data
    now lives in the file) and the ``base_path`` the reasoner needs.
    """
    if data_dir is None:
        raise ValueError("backend='sqlite' needs a data_dir to hold the .db file")
    directory = Path(data_dir)
    directory.mkdir(parents=True, exist_ok=True)
    save_database_sqlite(database, directory / SQLITE_DB_NAME)
    bound = SQLITE_BINDINGS.format(db=SQLITE_DB_NAME) + program_text
    return parse_program(bound), Database(), str(directory)


@dataclass(frozen=True)
class ScaleFreeConfig:
    """Parameters of the directed scale-free generator (Bollobás et al.).

    ``alpha`` — probability of adding a new node with an edge *to* an existing
    node chosen by in-degree; ``beta`` — probability of adding an edge between
    two existing nodes; ``gamma`` — probability of adding a new node with an
    edge *from* an existing node chosen by out-degree.  The defaults are the
    values the paper learned from the European ownership graphs.
    """

    alpha: float = 0.71
    beta: float = 0.09
    gamma: float = 0.20
    seed: int = 23

    def __post_init__(self) -> None:
        total = self.alpha + self.beta + self.gamma
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"alpha + beta + gamma must be 1.0, got {total}")


def generate_ownership_graph(
    n_companies: int,
    config: Optional[ScaleFreeConfig] = None,
    max_edges: Optional[int] = None,
) -> Database:
    """Generate a scale-free ownership graph ``Own(owner, owned, share)``.

    Shares on the incoming edges of every company are normalised so that they
    sum to at most 1 and a clear majority owner exists for roughly half of the
    companies, which is what makes the control relation non-trivial.
    """
    config = config or ScaleFreeConfig()
    rng = random.Random(config.seed)
    nodes: List[str] = [f"f{i}" for i in range(min(3, n_companies))]
    in_degree: Dict[str, int] = {n: 1 for n in nodes}
    out_degree: Dict[str, int] = {n: 1 for n in nodes}
    edges: Set[Tuple[str, str]] = set()
    if len(nodes) >= 2:
        edges.add((nodes[0], nodes[1]))
    if len(nodes) >= 3:
        edges.add((nodes[1], nodes[2]))

    def pick_by(degrees: Dict[str, int]) -> str:
        total = sum(degrees.values())
        target = rng.uniform(0, total)
        cumulative = 0.0
        for node, degree in degrees.items():
            cumulative += degree
            if cumulative >= target:
                return node
        return next(iter(degrees))

    edge_budget = max_edges if max_edges is not None else int(n_companies * 1.4)
    while len(nodes) < n_companies and len(edges) < edge_budget + n_companies:
        roll = rng.random()
        if roll < config.alpha or len(nodes) < 3:
            new_node = f"f{len(nodes)}"
            target = pick_by(in_degree)
            nodes.append(new_node)
            edges.add((new_node, target))
            in_degree[target] = in_degree.get(target, 0) + 1
            in_degree.setdefault(new_node, 1)
            out_degree[new_node] = out_degree.get(new_node, 0) + 1
            out_degree.setdefault(target, 1)
        elif roll < config.alpha + config.beta:
            source = pick_by(out_degree)
            target = pick_by(in_degree)
            if source != target:
                edges.add((source, target))
                out_degree[source] = out_degree.get(source, 0) + 1
                in_degree[target] = in_degree.get(target, 0) + 1
        else:
            new_node = f"f{len(nodes)}"
            source = pick_by(out_degree)
            nodes.append(new_node)
            edges.add((source, new_node))
            out_degree[source] = out_degree.get(source, 0) + 1
            out_degree.setdefault(new_node, 1)
            in_degree[new_node] = in_degree.get(new_node, 0) + 1
            in_degree.setdefault(source, 1)

    # Assign ownership shares: normalise incoming shares per company, giving a
    # majority owner to about half of the companies.
    incoming: Dict[str, List[str]] = {}
    for source, target in edges:
        incoming.setdefault(target, []).append(source)
    own_rows: List[Tuple[str, str, float]] = []
    for target, owners in incoming.items():
        owners = sorted(owners)
        if rng.random() < 0.55:
            majority = rng.choice(owners)
            remaining = 0.4
            for owner in owners:
                if owner == majority:
                    own_rows.append((owner, target, round(0.6, 4)))
                else:
                    share = round(remaining / max(1, len(owners) - 1), 4)
                    own_rows.append((owner, target, share))
        else:
            for owner in owners:
                own_rows.append((owner, target, round(0.9 / max(2, len(owners)), 4)))

    database = Database()
    database.add_tuples("Own", sorted(set(own_rows)))
    database.add_tuples("Company", [(n,) for n in nodes])
    return database


def control_scenario(
    n_companies: int,
    variant: str = "all",
    query_pairs: int = 10,
    config: Optional[ScaleFreeConfig] = None,
    backend: str = "memory",
    data_dir: Union[str, Path, None] = None,
) -> Scenario:
    """Build an industrial-validation scenario (Section 6.4).

    ``variant`` is one of:

    * ``"all"``  — AllReal/AllRand: ask for every control relationship;
    * ``"query"`` — QueryReal/QueryRand: ask for a fixed number of specific
      company pairs (the scenario stores them in ``params['pairs']``; the
      harness runs the same materialisation and then filters, which matches
      how the paper issues repeated point queries).

    ``backend="sqlite"`` exports the generated ownership graph into
    ``data_dir/companies.db`` and rewrites the program to read it through
    ``@bind`` datasources — the end-to-end external-storage path; answers
    are identical to the in-memory backend on every executor.
    """
    if variant not in {"all", "query"}:
        raise ValueError("variant must be 'all' or 'query'")
    if backend not in {"memory", "sqlite"}:
        raise ValueError("backend must be 'memory' or 'sqlite'")
    database = generate_ownership_graph(n_companies, config=config)
    rng = random.Random((config or ScaleFreeConfig()).seed + 1)
    companies = [row[0] for row in database.relation("Company").tuples]
    pairs: List[Tuple[str, str]] = []
    if variant == "query" and len(companies) >= 2:
        for _ in range(query_pairs):
            pairs.append((rng.choice(companies), rng.choice(companies)))
    params = {
        "companies": n_companies,
        "edges": database.size("Own"),
        "variant": variant,
        "pairs": pairs,
        "backend": backend,
    }
    base_path: Optional[str] = None
    if backend == "sqlite":
        program, database, base_path = _sqlite_scenario_parts(
            database, data_dir, CONTROL_PROGRAM
        )
    else:
        program = company_control_program()
    return Scenario(
        name=f"company-control-{variant}-{n_companies}",
        program=program,
        database=database,
        outputs=("Control",),
        description="Company control over a scale-free ownership graph (Example 2)",
        params=params,
        base_path=base_path,
    )


def control_point_query_scenario(
    n_companies: int,
    company: Optional[str] = None,
    config: Optional[ScaleFreeConfig] = None,
) -> Scenario:
    """Single-ancestor company control: ``Control(c, Y)`` for one company.

    The point-query counterpart of :func:`control_scenario` (QueryReal /
    QueryRand with a bound first argument): the scenario carries
    ``query='Control("<c>", Y)'`` so the reasoner's magic-set rewriting can
    prune the chase to the ownership cone reachable from ``c`` instead of
    materialising the whole control relation.  ``company`` defaults to the
    (deterministic) majority owner with the most direct majority stakes —
    a company whose control cone is deep enough to make the query
    interesting.
    """
    database = generate_ownership_graph(n_companies, config=config)
    if company is None:
        stakes: Dict[str, int] = {}
        for owner, _owned, share in database.relation("Own").tuples:
            if share > 0.5:
                stakes[owner] = stakes.get(owner, 0) + 1
        company = max(sorted(stakes), key=lambda c: stakes[c]) if stakes else "f0"
    return Scenario(
        name=f"company-control-point-{n_companies}",
        program=company_control_program(),
        database=database,
        outputs=("Control",),
        description="Company control of a single source company (point query)",
        params={
            "companies": n_companies,
            "edges": database.size("Own"),
            "company": company,
        },
        query=f'Control("{company}", Y)',
    )


def majority_control_scenario(
    n_companies: int,
    config: Optional[ScaleFreeConfig] = None,
    backend: str = "memory",
    data_dir: Union[str, Path, None] = None,
) -> Scenario:
    """Majority-chain control over the same ownership graphs.

    The ``W > 0.5`` selection appears on every occurrence of ``Own``, so
    with ``backend="sqlite"`` the reasoner compiles it into the source's
    pushdown: minority edges are filtered by a SQL ``WHERE`` inside the
    database and ``rows_scanned < relation_rows`` in the source statistics.
    """
    if backend not in {"memory", "sqlite"}:
        raise ValueError("backend must be 'memory' or 'sqlite'")
    database = generate_ownership_graph(n_companies, config=config)
    params = {
        "companies": n_companies,
        "edges": database.size("Own"),
        "backend": backend,
    }
    base_path: Optional[str] = None
    if backend == "sqlite":
        program, database, base_path = _sqlite_scenario_parts(
            database, data_dir, MAJORITY_CONTROL_PROGRAM
        )
    else:
        program = parse_program(MAJORITY_CONTROL_PROGRAM)
    return Scenario(
        name=f"company-majority-control-{n_companies}",
        program=program,
        database=database,
        outputs=("Control",),
        description="Control through chains of direct majority stakes (pushdown showcase)",
        params=params,
        base_path=base_path,
    )
