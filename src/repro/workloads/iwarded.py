"""iWarded: a generator of synthetic warded scenarios (Section 6.1, Figure 6).

The paper's iWarded tool generates sets of warded rules controlling the
internals relevant to Warded Datalog±: the number of linear and non-linear
rules, how many of each are recursive, how many rules carry existential
quantification, and the mix of join kinds — harmless-harmless joins through
a ward, harmless-harmless joins without a ward, and harmful-harmful joins.

This module reproduces that generator — and, since PR 10, generalises it
into the full **parametric** iWarded family of arXiv:2103.08588.  Rules are
built over three predicate families:

* ``S_i`` — extensional "source" predicates whose positions are never
  affected;
* ``G_i`` — "ground" predicates whose positions are never affected;
* ``A_i`` — predicates whose last position is affected (it receives
  labelled nulls from existential rules and propagates them).

The eight scenario configurations of Figure 6 (synthA … synthH) are available
in :data:`SCENARIO_CONFIGS`; every scenario uses 100 rules and a common
multi-query that activates all of them, exactly as in the paper.  These
*classic* configurations keep generating bit-identical programs: the
parametric knobs (:class:`IWardedConfig` — ``arity``, ``recursion_depth``,
``existential_density``, ``join_fanin``, ``fact_skew``) switch to the
general construction only when moved off their classic defaults, so the
committed benchmark baselines and differential exemption sets stay valid.

Every generated program is warded **by construction and by check**: the
generator re-runs :func:`repro.core.wardedness.analyse_program` on its own
output and raises :class:`GenerationError` if the analysis disagrees.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.rules import Program, Rule
from ..core.terms import Variable
from ..core.wardedness import analyse_program
from ..storage.database import Database
from .scenario import Scenario


class GenerationError(Exception):
    """Raised when a generated program fails its own wardedness check."""


@dataclass(frozen=True)
class IWardedConfig:
    """One row of Figure 6, generalised with the parametric iWarded knobs.

    The first block of fields is the classic Figure-6 rule mix.  The second
    block is the parametric generalisation (PR 10): with every knob at its
    default the generator reproduces the classic construction bit-for-bit;
    any non-default knob value selects the general parametric construction.

    ``arity``
        width of every predicate (classic: hard-coded binary);
    ``recursion_depth``
        length of each linear-recursive cycle through the affected
        predicates (classic: single-rule recursion edges);
    ``existential_density``
        fraction of *linear* rules that are existential — overrides the
        absolute ``existential_rules`` budget when set;
    ``join_fanin``
        number of body atoms per join rule (classic: 2);
    ``fact_skew``
        Zipf-style skew of the generated EDB value distribution
        (0.0 = uniform; larger values concentrate the mass on few
        constants, raising the average join rate).
    """

    name: str
    linear_rules: int
    join_rules: int
    linear_recursive: int
    join_recursive: int
    existential_rules: int
    harmless_join_with_ward: int
    harmless_join_without_ward: int
    harmful_joins: int
    facts_per_predicate: int = 40
    seed: int = 7
    # -- parametric knobs (PR 10) -----------------------------------------
    arity: int = 2
    recursion_depth: int = 1
    existential_density: Optional[float] = None
    join_fanin: int = 2
    fact_skew: float = 0.0

    def __post_init__(self) -> None:
        counts = {
            "linear_rules": self.linear_rules,
            "join_rules": self.join_rules,
            "linear_recursive": self.linear_recursive,
            "join_recursive": self.join_recursive,
            "existential_rules": self.existential_rules,
            "harmless_join_with_ward": self.harmless_join_with_ward,
            "harmless_join_without_ward": self.harmless_join_without_ward,
            "harmful_joins": self.harmful_joins,
        }
        for field_name, value in counts.items():
            if not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"IWardedConfig.{field_name} must be a non-negative "
                    f"integer, got {value!r}"
                )
        if not isinstance(self.facts_per_predicate, int) or self.facts_per_predicate < 1:
            raise ValueError(
                f"IWardedConfig.facts_per_predicate must be a positive "
                f"integer, got {self.facts_per_predicate!r}"
            )
        if not isinstance(self.arity, int) or self.arity < 2:
            raise ValueError(
                f"IWardedConfig.arity must be an integer >= 2, got {self.arity!r}"
            )
        if not isinstance(self.recursion_depth, int) or self.recursion_depth < 1:
            raise ValueError(
                f"IWardedConfig.recursion_depth must be an integer >= 1, "
                f"got {self.recursion_depth!r}"
            )
        if self.existential_density is not None and not (
            isinstance(self.existential_density, (int, float))
            and 0.0 <= self.existential_density <= 1.0
        ):
            raise ValueError(
                f"IWardedConfig.existential_density must be None or a "
                f"fraction in [0, 1], got {self.existential_density!r}"
            )
        if not isinstance(self.join_fanin, int) or self.join_fanin < 2:
            raise ValueError(
                f"IWardedConfig.join_fanin must be an integer >= 2, "
                f"got {self.join_fanin!r}"
            )
        if not isinstance(self.fact_skew, (int, float)) or self.fact_skew < 0:
            raise ValueError(
                f"IWardedConfig.fact_skew must be a non-negative number, "
                f"got {self.fact_skew!r}"
            )

    @property
    def total_rules(self) -> int:
        return self.linear_rules + self.join_rules

    @property
    def is_classic(self) -> bool:
        """True when every parametric knob sits at its classic default."""
        return (
            self.arity == 2
            and self.recursion_depth == 1
            and self.existential_density is None
            and self.join_fanin == 2
            and self.fact_skew == 0.0
        )


#: The eight scenarios of Figure 6 (columns in the same order as the paper).
SCENARIO_CONFIGS: Dict[str, IWardedConfig] = {
    "synthA": IWardedConfig("synthA", 90, 10, 27, 3, 20, 5, 4, 1),
    "synthB": IWardedConfig("synthB", 10, 90, 3, 27, 20, 45, 40, 5),
    "synthC": IWardedConfig("synthC", 30, 70, 9, 20, 40, 25, 20, 5),
    "synthD": IWardedConfig("synthD", 30, 70, 9, 20, 22, 10, 9, 1),
    "synthE": IWardedConfig("synthE", 30, 70, 15, 40, 20, 35, 29, 1),
    "synthF": IWardedConfig("synthF", 30, 70, 25, 20, 50, 35, 29, 1),
    "synthG": IWardedConfig("synthG", 30, 70, 9, 21, 30, 0, 10, 60),
    "synthH": IWardedConfig("synthH", 30, 70, 9, 21, 30, 0, 60, 10),
}


def _source_pred(index: int) -> str:
    return f"S{index}"


def _ground_pred(index: int) -> str:
    return f"G{index}"


def _affected_pred(index: int) -> str:
    return f"A{index}"


def generate_iwarded(config: IWardedConfig) -> Tuple[Program, Database]:
    """Generate a warded program and database for one iWarded configuration.

    The generator keeps the program warded by construction:

    * existential rules are linear (``S_i(x, y) → ∃z A_j(x, z)``);
    * joins through a ward look like ``A_i(x, p̂), S_j(x, y) → A_k(y, p̂)``
      (the ward ``A_i`` shares only the harmless ``x`` with ``S_j``);
    * joins without a ward involve only ground predicates
      (``G_i(x, y), G_j(y, z) → G_k(x, z)``);
    * harmful joins join two affected predicates on their affected position
      (``A_i(x, p̂), A_j(y, p̂) → G_k(x, y)``).

    Recursion is introduced by making the head predicate of a rule feed one of
    the rules that (transitively) produced its body predicate.

    Classic configurations (:attr:`IWardedConfig.is_classic`) run the
    original Figure-6 construction bit-for-bit; any non-default parametric
    knob switches to the general construction of
    :func:`_generate_parametric`.  Either way the result is validated with
    :func:`repro.core.wardedness.analyse_program` before it is returned
    (warded by construction *and* by check).
    """
    if config.is_classic:
        program, database = _generate_classic(config)
    else:
        program, database = _generate_parametric(config)
    analysis = analyse_program(program)
    if not analysis.is_warded:
        offenders = [
            a.rule.label or str(a.rule) for a in analysis.rule_analyses if not a.is_warded
        ]
        raise GenerationError(
            f"iWarded config {config.name!r} (seed {config.seed}) generated a "
            f"non-warded program; offending rules: {', '.join(offenders)}"
        )
    return program, database


def _generate_classic(config: IWardedConfig) -> Tuple[Program, Database]:
    """The original Figure-6 construction (binary predicates, 2-atom joins)."""
    rng = random.Random(config.seed)
    program = Program()

    n_source = max(5, config.existential_rules // 3)
    n_ground = max(6, config.join_rules // 8)
    n_affected = max(4, config.existential_rules // 3)

    source_preds = [_source_pred(i) for i in range(n_source)]
    ground_preds = [_ground_pred(i) for i in range(n_ground)]
    affected_preds = [_affected_pred(i) for i in range(n_affected)]

    x, y, z, p = Variable("X"), Variable("Y"), Variable("Z"), Variable("P")

    linear_budget = config.linear_rules
    join_budget = config.join_rules
    existential_budget = config.existential_rules
    ward_join_budget = config.harmless_join_with_ward
    plain_join_budget = config.harmless_join_without_ward
    harmful_budget = config.harmful_joins

    rules: List[Rule] = []

    # --- linear rules ------------------------------------------------------
    # Existential rules read only the EDB source predicates S_i, so the number
    # of labelled nulls the chase creates is bounded by the input size (the
    # paper's scenarios are likewise driven by the source instance).
    recursive_linear = 0
    for index in range(linear_budget):
        use_existential = existential_budget > 0 and index % 2 == 0
        if use_existential:
            source = rng.choice(source_preds)
            target = rng.choice(affected_preds)
            rules.append(
                Rule(
                    body=(Atom(source, (x, y)),),
                    head=(Atom(target, (x, p)),),
                    label=f"L{index}",
                )
            )
            existential_budget -= 1
        elif recursive_linear < config.linear_recursive and affected_preds:
            # A linear recursion through two affected predicates (a 2-cycle).
            first = rng.choice(affected_preds)
            second = rng.choice(affected_preds)
            rules.append(
                Rule(
                    body=(Atom(first, (x, p)),),
                    head=(Atom(second, (x, p)),),
                    label=f"L{index}",
                )
            )
            recursive_linear += 1
        else:
            source = rng.choice(source_preds + ground_preds)
            target = rng.choice(ground_preds)
            rules.append(
                Rule(
                    body=(Atom(source, (x, y)),),
                    head=(Atom(target, (y, x)),),
                    label=f"L{index}",
                )
            )

    # --- join rules ----------------------------------------------------------
    recursive_joins = 0
    for index in range(join_budget):
        label = f"J{index}"
        if ward_join_budget > 0 and affected_preds:
            # Harmless-harmless join through a ward: the dangerous variable P
            # stays inside the ward A_i, which shares only the harmless X with
            # the EDB side predicate.
            ward = rng.choice(affected_preds)
            side = rng.choice(source_preds)
            target = rng.choice(affected_preds)
            rules.append(
                Rule(
                    body=(Atom(ward, (x, p)), Atom(side, (x, y))),
                    head=(Atom(target, (y, p)),),
                    label=label,
                )
            )
            ward_join_budget -= 1
        elif harmful_budget > 0 and len(affected_preds) >= 2:
            first, second = rng.sample(affected_preds, 2)
            target = rng.choice(ground_preds)
            rules.append(
                Rule(
                    body=(Atom(first, (x, p)), Atom(second, (y, p))),
                    head=(Atom(target, (x, y)),),
                    label=label,
                )
            )
            harmful_budget -= 1
        else:
            first = rng.choice(source_preds + ground_preds)
            second = rng.choice(source_preds)
            if recursive_joins < config.join_recursive and first in ground_preds:
                target = first  # transitive-closure style recursion
                recursive_joins += 1
            else:
                target = rng.choice(ground_preds)
            rules.append(
                Rule(
                    body=(Atom(first, (x, y)), Atom(second, (y, z))),
                    head=(Atom(target, (x, z)),),
                    label=label,
                )
            )
            if plain_join_budget > 0:
                plain_join_budget -= 1

    for rule in rules:
        program.add_rule(rule)

    # Outputs: every ground predicate plus every affected predicate is queried,
    # matching the paper's "same set of (multi-)queries that activates all the
    # rules".
    program.outputs = set(ground_preds) | set(affected_preds)

    database = _generate_database(config, rng, source_preds + ground_preds)
    return program, database


def _generate_database(
    config: IWardedConfig, rng: random.Random, edb_preds: List[str]
) -> Database:
    """A uniform random EDB over the source/ground predicates (average join rate)."""
    database = Database()
    domain_size = max(10, config.facts_per_predicate // 2)
    for predicate in edb_preds:
        rows = set()
        while len(rows) < config.facts_per_predicate:
            rows.add((f"c{rng.randrange(domain_size)}", f"c{rng.randrange(domain_size)}"))
        database.add_tuples(predicate, sorted(rows))
    return database


# --------------------------------------------------------------------------
# The parametric construction (PR 10): arity, recursion depth, existential
# density, join fan-in and fact-set size with skew.
# --------------------------------------------------------------------------


def _generate_parametric(config: IWardedConfig) -> Tuple[Program, Database]:
    """The general iWarded construction driven by the parametric knobs.

    Predicates have ``config.arity`` positions; the last position of every
    ``A_i`` predicate is affected, all other positions (and all positions of
    ``S_i``/``G_i``) stay harmless.  Join rules carry ``config.join_fanin``
    body atoms chained on harmless variables, linear recursion runs in
    cycles of ``config.recursion_depth`` rules through the affected
    predicates, and the EDB values are drawn from a Zipf-style distribution
    with exponent ``config.fact_skew``.
    """
    rng = random.Random(config.seed)
    program = Program()
    arity = config.arity

    existential_budget = config.existential_rules
    if config.existential_density is not None:
        existential_budget = round(config.existential_density * config.linear_rules)
        existential_budget = min(existential_budget, config.linear_rules)

    n_source = max(5, existential_budget // 3 or 1)
    n_ground = max(6, config.join_rules // 8)
    n_affected = max(4, existential_budget // 3 or 1)

    source_preds = [_source_pred(i) for i in range(n_source)]
    ground_preds = [_ground_pred(i) for i in range(n_ground)]
    affected_preds = [_affected_pred(i) for i in range(n_affected)]

    #: Harmless variable tuple shared by single-atom rules: X0 … X{arity-2}.
    xs = tuple(Variable(f"X{i}") for i in range(arity - 1))
    last = Variable(f"X{arity - 1}")
    p = Variable("P")

    rules: List[Rule] = []

    def harmless_head_fill(pool: List[Variable], width: int) -> Tuple[Variable, ...]:
        """``width`` head terms drawn round-robin from harmless ``pool``."""
        return tuple(pool[i % len(pool)] for i in range(width))

    # --- linear rules -----------------------------------------------------
    # Existential rules are interleaved evenly across the linear budget so
    # any density in [0, 1] spreads them out instead of front-loading.
    existential_slots: set = set()
    if existential_budget > 0 and config.linear_rules > 0:
        stride = config.linear_rules / existential_budget
        existential_slots = {
            min(config.linear_rules - 1, int(i * stride))
            for i in range(existential_budget)
        }
    recursion_chain: List[str] = []
    recursive_linear = 0
    for index in range(config.linear_rules):
        label = f"L{index}"
        if index in existential_slots:
            # S_i(x0…x_{k-1}) → ∃Z A_j(x0…x_{k-2}, Z)
            source = rng.choice(source_preds)
            target = rng.choice(affected_preds)
            rules.append(
                Rule(
                    body=(Atom(source, xs + (last,)),),
                    head=(Atom(target, xs + (Variable("Z"),)),),
                    label=label,
                )
            )
        elif recursive_linear < config.linear_recursive:
            # Linear recursion in cycles of ``recursion_depth`` rules:
            # A_c0 → A_c1 → … → A_c{d-1} → A_c0.  The dangerous variable P
            # rides along in the affected last position.
            if not recursion_chain:
                depth = min(
                    config.recursion_depth,
                    config.linear_recursive - recursive_linear,
                )
                start = rng.randrange(len(affected_preds))
                cycle = [
                    affected_preds[(start + i) % len(affected_preds)]
                    for i in range(depth)
                ]
                recursion_chain = [cycle[-1]] + cycle  # closes back on itself
            body_pred = recursion_chain[0]
            head_pred = recursion_chain[1]
            recursion_chain = recursion_chain[1:] if len(recursion_chain) > 2 else []
            rules.append(
                Rule(
                    body=(Atom(body_pred, xs + (p,)),),
                    head=(Atom(head_pred, xs + (p,)),),
                    label=label,
                )
            )
            recursive_linear += 1
        else:
            # Plain linear rule: rotate the harmless variables.
            source = rng.choice(source_preds + ground_preds)
            target = rng.choice(ground_preds)
            all_vars = xs + (last,)
            rotated = all_vars[1:] + all_vars[:1]
            rules.append(
                Rule(
                    body=(Atom(source, all_vars),),
                    head=(Atom(target, rotated),),
                    label=label,
                )
            )

    # --- join rules -------------------------------------------------------
    ward_join_budget = config.harmless_join_with_ward
    plain_join_budget = config.harmless_join_without_ward
    harmful_budget = config.harmful_joins
    fanin = config.join_fanin
    recursive_joins = 0
    for index in range(config.join_rules):
        label = f"J{index}"
        if ward_join_budget > 0:
            # Ward join with fan-in: the ward A_w holds P and shares only
            # the harmless X0 with a chain of fanin-1 source atoms.
            ward = rng.choice(affected_preds)
            target = rng.choice(affected_preds)
            ward_vars = xs + (p,)
            body: List[Atom] = [Atom(ward, ward_vars)]
            link = xs[0]
            harmless_pool: List[Variable] = [link]
            for side_index in range(fanin - 1):
                side = rng.choice(source_preds)
                fresh = tuple(
                    Variable(f"S{side_index}_{j}") for j in range(arity - 1)
                )
                body.append(Atom(side, (link,) + fresh))
                harmless_pool.extend(fresh)
                link = fresh[-1]
            head_vars = harmless_head_fill(harmless_pool[1:] or [link], arity - 1)
            rules.append(
                Rule(
                    body=tuple(body),
                    head=(Atom(target, head_vars + (p,)),),
                    label=label,
                )
            )
            ward_join_budget -= 1
        elif harmful_budget > 0 and len(affected_preds) >= 2:
            # Harmful join: two affected predicates meet on P in their
            # affected positions; extra fan-in atoms stay harmless.
            first, second = rng.sample(affected_preds, 2)
            target = rng.choice(ground_preds)
            first_vars = tuple(Variable(f"F{j}") for j in range(arity - 1))
            second_vars = tuple(Variable(f"H{j}") for j in range(arity - 1))
            body = [Atom(first, first_vars + (p,)), Atom(second, second_vars + (p,))]
            harmless_pool = list(first_vars) + list(second_vars)
            link = first_vars[0]
            for side_index in range(fanin - 2):
                side = rng.choice(source_preds)
                fresh = tuple(
                    Variable(f"S{side_index}_{j}") for j in range(arity - 1)
                )
                body.append(Atom(side, (link,) + fresh))
                harmless_pool.extend(fresh)
                link = fresh[-1]
            rules.append(
                Rule(
                    body=tuple(body),
                    head=(Atom(target, harmless_head_fill(harmless_pool, arity)),),
                    label=label,
                )
            )
            harmful_budget -= 1
        else:
            # Plain (possibly recursive) join: a chain of ``fanin`` ground
            # atoms linked by their boundary variables.
            first = rng.choice(source_preds + ground_preds)
            chain_preds = [first] + [
                rng.choice(source_preds) for _ in range(fanin - 1)
            ]
            body = []
            harmless_pool = []
            link = None
            for chain_index, predicate in enumerate(chain_preds):
                fresh = tuple(
                    Variable(f"C{chain_index}_{j}")
                    for j in range(arity if chain_index == 0 else arity - 1)
                )
                atom_vars = fresh if chain_index == 0 else (link,) + fresh
                body.append(Atom(predicate, atom_vars))
                harmless_pool.extend(fresh)
                link = fresh[-1]
            if recursive_joins < config.join_recursive and first in ground_preds:
                target = first  # transitive-closure style recursion
                recursive_joins += 1
            else:
                target = rng.choice(ground_preds)
            head_vars = (harmless_pool[0], link) + tuple(
                harmless_pool[1 + j] for j in range(arity - 2)
            )
            rules.append(
                Rule(body=tuple(body), head=(Atom(target, head_vars),), label=label)
            )
            if plain_join_budget > 0:
                plain_join_budget -= 1

    for rule in rules:
        program.add_rule(rule)
    program.outputs = set(ground_preds) | set(affected_preds)

    database = _parametric_database(config, rng, source_preds + ground_preds)
    return program, database


def _parametric_database(
    config: IWardedConfig, rng: random.Random, edb_preds: List[str]
) -> Database:
    """A random EDB of ``facts_per_predicate`` rows per predicate.

    Values are drawn from a Zipf-style distribution: constant ``c_i`` is
    picked with probability proportional to ``uniform ** (1 + fact_skew)``
    — at skew 0 this is the uniform draw of the classic generator, larger
    skews concentrate the mass on the low-index constants (higher average
    join rate, mirroring the paper's "average/high join rate" instances).
    """
    database = Database()
    domain_size = max(10, config.facts_per_predicate // 2)
    skew = 1.0 + config.fact_skew

    def draw() -> str:
        return f"c{int(domain_size * (rng.random() ** skew))}"

    for predicate in edb_preds:
        rows = set()
        attempts = 0
        limit = config.facts_per_predicate * 50
        while len(rows) < config.facts_per_predicate and attempts < limit:
            rows.add(tuple(draw() for _ in range(config.arity)))
            attempts += 1
        database.add_tuples(predicate, sorted(rows))
    return database


def iwarded_scenario(name: str, facts_per_predicate: int | None = None) -> Scenario:
    """Build one of the Figure-6 scenarios (synthA … synthH).

    ``facts_per_predicate`` overrides the config's fact-set size through
    :func:`dataclasses.replace`, so the frozen config's own validation
    applies to the override (an invalid value raises ``ValueError``).
    """
    if name not in SCENARIO_CONFIGS:
        raise KeyError(f"unknown iWarded scenario {name!r}; known: {', '.join(SCENARIO_CONFIGS)}")
    config = SCENARIO_CONFIGS[name]
    if facts_per_predicate is not None:
        config = dataclasses.replace(config, facts_per_predicate=facts_per_predicate)
    program, database = generate_iwarded(config)
    return Scenario(
        name=name,
        program=program,
        database=database,
        outputs=tuple(sorted(program.outputs)),
        description=f"iWarded synthetic scenario {name} (Figure 6)",
        params={
            "linear_rules": config.linear_rules,
            "join_rules": config.join_rules,
            "existential_rules": config.existential_rules,
            "harmful_joins": config.harmful_joins,
            "facts_per_predicate": config.facts_per_predicate,
        },
    )


def all_scenarios(facts_per_predicate: int | None = None) -> List[Scenario]:
    """All eight Figure-6 scenarios."""
    return [iwarded_scenario(name, facts_per_predicate) for name in SCENARIO_CONFIGS]


#: Base rule mix of the parametric family: a small SynthC-flavoured blend
#: of every rule kind, scaled down so knob sweeps stay laptop-sized.
PARAMETRIC_BASE = IWardedConfig(
    name="parametric",
    linear_rules=12,
    join_rules=8,
    linear_recursive=4,
    join_recursive=2,
    existential_rules=6,
    harmless_join_with_ward=3,
    harmless_join_without_ward=3,
    harmful_joins=2,
    facts_per_predicate=10,
    seed=7,
)


def parametric_config(
    *,
    arity: int = 2,
    recursion_depth: int = 2,
    existential_density: float | None = 0.5,
    join_fanin: int = 2,
    facts_per_predicate: int = 10,
    fact_skew: float = 0.0,
    seed: int = 7,
    base: IWardedConfig = PARAMETRIC_BASE,
) -> IWardedConfig:
    """An :class:`IWardedConfig` for one point of the parametric knob grid.

    The rule mix comes from ``base``; the keyword knobs position the point
    along the sweep axes.  Invalid knob values raise ``ValueError`` through
    the config's own validation.
    """
    name = (
        f"iwarded-par-d{recursion_depth}"
        f"-e{existential_density if existential_density is not None else 'n'}"
        f"-a{arity}-f{join_fanin}-n{facts_per_predicate}"
        f"-k{fact_skew}-s{seed}"
    )
    return dataclasses.replace(
        base,
        name=name,
        arity=arity,
        recursion_depth=recursion_depth,
        existential_density=existential_density,
        join_fanin=join_fanin,
        facts_per_predicate=facts_per_predicate,
        fact_skew=fact_skew,
        seed=seed,
    )


def parametric_scenario(config: IWardedConfig | None = None, **knobs) -> Scenario:
    """Build a scenario from one parametric grid point.

    Pass a ready :class:`IWardedConfig` or the keyword knobs of
    :func:`parametric_config`.  The generated program is warded by
    construction and re-checked by analysis (see :func:`generate_iwarded`).
    """
    if config is not None and knobs:
        raise ValueError("pass either a config or keyword knobs, not both")
    if config is None:
        config = parametric_config(**knobs)
    program, database = generate_iwarded(config)
    return Scenario(
        name=config.name,
        program=program,
        database=database,
        outputs=tuple(sorted(program.outputs)),
        description="parametric iWarded scenario (arXiv:2103.08588 knobs)",
        params={
            "arity": config.arity,
            "recursion_depth": config.recursion_depth,
            "existential_density": config.existential_density,
            "join_fanin": config.join_fanin,
            "facts_per_predicate": config.facts_per_predicate,
            "fact_skew": config.fact_skew,
            "seed": config.seed,
            "rules": config.total_rules,
        },
    )
