"""iWarded: a generator of synthetic warded scenarios (Section 6.1, Figure 6).

The paper's iWarded tool generates sets of warded rules controlling the
internals relevant to Warded Datalog±: the number of linear and non-linear
rules, how many of each are recursive, how many rules carry existential
quantification, and the mix of join kinds — harmless-harmless joins through
a ward, harmless-harmless joins without a ward, and harmful-harmful joins.

This module reproduces that generator.  Rules are built over two predicate
families:

* ``G_i`` — "ground" binary predicates whose positions are never affected;
* ``A_i`` — binary predicates whose second position is affected (it receives
  labelled nulls from existential rules and propagates them).

The eight scenario configurations of Figure 6 (synthA … synthH) are available
in :data:`SCENARIO_CONFIGS`; every scenario uses 100 rules and a common
multi-query that activates all of them, exactly as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.atoms import Atom
from ..core.rules import Program, Rule
from ..core.terms import Variable
from ..storage.database import Database
from .scenario import Scenario


@dataclass(frozen=True)
class IWardedConfig:
    """One row of Figure 6: the rule-mix of a synthetic scenario."""

    name: str
    linear_rules: int
    join_rules: int
    linear_recursive: int
    join_recursive: int
    existential_rules: int
    harmless_join_with_ward: int
    harmless_join_without_ward: int
    harmful_joins: int
    facts_per_predicate: int = 40
    seed: int = 7

    @property
    def total_rules(self) -> int:
        return self.linear_rules + self.join_rules


#: The eight scenarios of Figure 6 (columns in the same order as the paper).
SCENARIO_CONFIGS: Dict[str, IWardedConfig] = {
    "synthA": IWardedConfig("synthA", 90, 10, 27, 3, 20, 5, 4, 1),
    "synthB": IWardedConfig("synthB", 10, 90, 3, 27, 20, 45, 40, 5),
    "synthC": IWardedConfig("synthC", 30, 70, 9, 20, 40, 25, 20, 5),
    "synthD": IWardedConfig("synthD", 30, 70, 9, 20, 22, 10, 9, 1),
    "synthE": IWardedConfig("synthE", 30, 70, 15, 40, 20, 35, 29, 1),
    "synthF": IWardedConfig("synthF", 30, 70, 25, 20, 50, 35, 29, 1),
    "synthG": IWardedConfig("synthG", 30, 70, 9, 21, 30, 0, 10, 60),
    "synthH": IWardedConfig("synthH", 30, 70, 9, 21, 30, 0, 60, 10),
}


def _source_pred(index: int) -> str:
    return f"S{index}"


def _ground_pred(index: int) -> str:
    return f"G{index}"


def _affected_pred(index: int) -> str:
    return f"A{index}"


def generate_iwarded(config: IWardedConfig) -> Tuple[Program, Database]:
    """Generate a warded program and database for one iWarded configuration.

    The generator keeps the program warded by construction:

    * existential rules are linear (``G_i(x, y) → ∃z A_j(x, z)``);
    * joins through a ward look like ``A_i(x, p̂), G_j(x, y) → A_k(y, p̂)``
      (the ward ``A_i`` shares only the harmless ``x`` with ``G_j``);
    * joins without a ward involve only ground predicates
      (``G_i(x, y), G_j(y, z) → G_k(x, z)``);
    * harmful joins join two affected predicates on their affected position
      (``A_i(x, p̂), A_j(y, p̂) → G_k(x, y)``).

    Recursion is introduced by making the head predicate of a rule feed one of
    the rules that (transitively) produced its body predicate.
    """
    rng = random.Random(config.seed)
    program = Program()

    n_source = max(5, config.existential_rules // 3)
    n_ground = max(6, config.join_rules // 8)
    n_affected = max(4, config.existential_rules // 3)

    source_preds = [_source_pred(i) for i in range(n_source)]
    ground_preds = [_ground_pred(i) for i in range(n_ground)]
    affected_preds = [_affected_pred(i) for i in range(n_affected)]

    x, y, z, p = Variable("X"), Variable("Y"), Variable("Z"), Variable("P")

    linear_budget = config.linear_rules
    join_budget = config.join_rules
    existential_budget = config.existential_rules
    ward_join_budget = config.harmless_join_with_ward
    plain_join_budget = config.harmless_join_without_ward
    harmful_budget = config.harmful_joins

    rules: List[Rule] = []

    # --- linear rules ------------------------------------------------------
    # Existential rules read only the EDB source predicates S_i, so the number
    # of labelled nulls the chase creates is bounded by the input size (the
    # paper's scenarios are likewise driven by the source instance).
    recursive_linear = 0
    for index in range(linear_budget):
        use_existential = existential_budget > 0 and index % 2 == 0
        if use_existential:
            source = rng.choice(source_preds)
            target = rng.choice(affected_preds)
            rules.append(
                Rule(
                    body=(Atom(source, (x, y)),),
                    head=(Atom(target, (x, p)),),
                    label=f"L{index}",
                )
            )
            existential_budget -= 1
        elif recursive_linear < config.linear_recursive and affected_preds:
            # A linear recursion through two affected predicates (a 2-cycle).
            first = rng.choice(affected_preds)
            second = rng.choice(affected_preds)
            rules.append(
                Rule(
                    body=(Atom(first, (x, p)),),
                    head=(Atom(second, (x, p)),),
                    label=f"L{index}",
                )
            )
            recursive_linear += 1
        else:
            source = rng.choice(source_preds + ground_preds)
            target = rng.choice(ground_preds)
            rules.append(
                Rule(
                    body=(Atom(source, (x, y)),),
                    head=(Atom(target, (y, x)),),
                    label=f"L{index}",
                )
            )

    # --- join rules ----------------------------------------------------------
    recursive_joins = 0
    for index in range(join_budget):
        label = f"J{index}"
        if ward_join_budget > 0 and affected_preds:
            # Harmless-harmless join through a ward: the dangerous variable P
            # stays inside the ward A_i, which shares only the harmless X with
            # the EDB side predicate.
            ward = rng.choice(affected_preds)
            side = rng.choice(source_preds)
            target = rng.choice(affected_preds)
            rules.append(
                Rule(
                    body=(Atom(ward, (x, p)), Atom(side, (x, y))),
                    head=(Atom(target, (y, p)),),
                    label=label,
                )
            )
            ward_join_budget -= 1
        elif harmful_budget > 0 and len(affected_preds) >= 2:
            first, second = rng.sample(affected_preds, 2)
            target = rng.choice(ground_preds)
            rules.append(
                Rule(
                    body=(Atom(first, (x, p)), Atom(second, (y, p))),
                    head=(Atom(target, (x, y)),),
                    label=label,
                )
            )
            harmful_budget -= 1
        else:
            first = rng.choice(source_preds + ground_preds)
            second = rng.choice(source_preds)
            if recursive_joins < config.join_recursive and first in ground_preds:
                target = first  # transitive-closure style recursion
                recursive_joins += 1
            else:
                target = rng.choice(ground_preds)
            rules.append(
                Rule(
                    body=(Atom(first, (x, y)), Atom(second, (y, z))),
                    head=(Atom(target, (x, z)),),
                    label=label,
                )
            )
            if plain_join_budget > 0:
                plain_join_budget -= 1

    for rule in rules:
        program.add_rule(rule)

    # Outputs: every ground predicate plus every affected predicate is queried,
    # matching the paper's "same set of (multi-)queries that activates all the
    # rules".
    program.outputs = set(ground_preds) | set(affected_preds)

    database = _generate_database(config, rng, source_preds + ground_preds)
    return program, database


def _generate_database(
    config: IWardedConfig, rng: random.Random, edb_preds: List[str]
) -> Database:
    """A uniform random EDB over the source/ground predicates (average join rate)."""
    database = Database()
    domain_size = max(10, config.facts_per_predicate // 2)
    for predicate in edb_preds:
        rows = set()
        while len(rows) < config.facts_per_predicate:
            rows.add((f"c{rng.randrange(domain_size)}", f"c{rng.randrange(domain_size)}"))
        database.add_tuples(predicate, sorted(rows))
    return database


def iwarded_scenario(name: str, facts_per_predicate: int | None = None) -> Scenario:
    """Build one of the Figure-6 scenarios (synthA … synthH)."""
    if name not in SCENARIO_CONFIGS:
        raise KeyError(f"unknown iWarded scenario {name!r}; known: {', '.join(SCENARIO_CONFIGS)}")
    config = SCENARIO_CONFIGS[name]
    if facts_per_predicate is not None:
        config = IWardedConfig(
            name=config.name,
            linear_rules=config.linear_rules,
            join_rules=config.join_rules,
            linear_recursive=config.linear_recursive,
            join_recursive=config.join_recursive,
            existential_rules=config.existential_rules,
            harmless_join_with_ward=config.harmless_join_with_ward,
            harmless_join_without_ward=config.harmless_join_without_ward,
            harmful_joins=config.harmful_joins,
            facts_per_predicate=facts_per_predicate,
            seed=config.seed,
        )
    program, database = generate_iwarded(config)
    return Scenario(
        name=name,
        program=program,
        database=database,
        outputs=tuple(sorted(program.outputs)),
        description=f"iWarded synthetic scenario {name} (Figure 6)",
        params={
            "linear_rules": config.linear_rules,
            "join_rules": config.join_rules,
            "existential_rules": config.existential_rules,
            "harmful_joins": config.harmful_joins,
            "facts_per_predicate": config.facts_per_predicate,
        },
    )


def all_scenarios(facts_per_predicate: int | None = None) -> List[Scenario]:
    """All eight Figure-6 scenarios."""
    return [iwarded_scenario(name, facts_per_predicate) for name in SCENARIO_CONFIGS]
