"""Human-readable summaries of a traced reasoning run.

:func:`render_report` is what ``ReasoningResult.run_report()`` returns: a
plain-text digest (phases, top rules by time and by derivations, round
table, source table) computed from the run's spans.  All aggregation
helpers also accept a :class:`repro.obs.export.TraceDump`, so
``tools/trace_view.py`` reuses them on traces loaded back from JSONL.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .export import TraceDump
from .trace import Span, Tracer

SpanSource = Union[Tracer, TraceDump, Iterable[Span]]


def _spans(source: SpanSource) -> List[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    if isinstance(source, TraceDump):
        return list(source.spans)
    return list(source)


def _rule_seconds(span: Span) -> float:
    # Streaming rule spans cover the pipeline's [first, last] activity
    # window; their actual busy time is the accumulated counter.
    busy = span.counters.get("busy_seconds")
    return float(busy) if busy is not None else span.duration


def aggregate_rules(source: SpanSource) -> Dict[str, Dict[str, Any]]:
    """Per-rule totals across all rounds: fires, candidates, deduped, seconds."""
    totals: Dict[str, Dict[str, Any]] = {}
    for span in _spans(source):
        if span.kind != "rule":
            continue
        label = str(span.attrs.get("rule", span.name))
        entry = totals.setdefault(
            label,
            {"rule": label, "fires": 0, "candidates": 0, "deduped": 0, "seconds": 0.0},
        )
        entry["fires"] += span.counters.get("fires", 0)
        entry["candidates"] += span.counters.get("candidates", 0)
        entry["deduped"] += span.counters.get("deduped", 0)
        entry["seconds"] += _rule_seconds(span)
    return totals


def top_rules(
    source: SpanSource,
    limit: int = 5,
    *,
    by: str = "seconds",
) -> List[Dict[str, Any]]:
    """The ``limit`` busiest rules ordered by ``seconds`` or ``fires``."""
    entries = sorted(
        aggregate_rules(source).values(),
        key=lambda entry: (entry[by], entry["fires"]),
        reverse=True,
    )
    return entries[:limit]


def round_rows(source: SpanSource) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for span in _spans(source):
        if span.kind != "round":
            continue
        rows.append(
            {
                "round": span.attrs.get("round", len(rows) + 1),
                "delta_in": span.counters.get("delta_in", 0),
                "derived": span.counters.get("derived", 0),
                "resident_facts": span.counters.get("resident_facts", 0),
                "seconds": span.duration,
            }
        )
    rows.sort(key=lambda row: row["round"])
    return rows


def source_rows(source: SpanSource) -> List[Dict[str, Any]]:
    by_predicate: Dict[str, Dict[str, Any]] = {}
    for span in _spans(source):
        if span.kind == "source-scan":
            predicate = str(span.attrs.get("predicate", span.name))
            entry = by_predicate.setdefault(
                predicate,
                {
                    "predicate": predicate,
                    "scans": 0,
                    "cache_served": 0,
                    "rows_emitted": 0,
                    "retries": 0,
                    "seconds": 0.0,
                },
            )
            entry["scans"] += 1
            if span.attrs.get("cache_served"):
                entry["cache_served"] += 1
            entry["rows_emitted"] += span.counters.get("rows_emitted", 0)
            entry["seconds"] += span.duration
        elif span.kind == "source-retry":
            predicate = str(span.attrs.get("predicate", span.name))
            entry = by_predicate.setdefault(
                predicate,
                {
                    "predicate": predicate,
                    "scans": 0,
                    "cache_served": 0,
                    "rows_emitted": 0,
                    "retries": 0,
                    "seconds": 0.0,
                },
            )
            entry["retries"] += 1
    return sorted(by_predicate.values(), key=lambda row: row["predicate"])


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    table = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in table:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()]
    for row in table:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)).rstrip())
    return lines


def _phase_line(spans: List[Span]) -> Optional[str]:
    parts = []
    for kind in ("rewrite", "load", "chase", "answers"):
        matching = [span for span in spans if span.kind == kind]
        if matching:
            parts.append(f"{kind}={sum(s.duration for s in matching):.4f}s")
    return "phases: " + " ".join(parts) if parts else None


def render_trace(source: SpanSource, *, limit: int = 5) -> str:
    """Text report from spans alone (no ``ReasoningResult`` required)."""
    spans = _spans(source)
    lines: List[str] = []
    roots = [span for span in spans if span.kind == "run"]
    if roots:
        root = roots[0]
        header = [f"executor={root.attrs.get('executor', '?')}"]
        if "status" in root.attrs:
            header.append(f"status={root.attrs['status']}")
        header.append(f"wall={root.duration:.4f}s")
        for counter in ("facts", "derived", "rounds", "peak_resident_facts"):
            if counter in root.counters:
                header.append(f"{counter}={root.counters[counter]}")
        lines.append("== reasoning run report ==")
        lines.append(" ".join(header))
    else:
        lines.append("== reasoning run report (partial trace) ==")
    phase = _phase_line(spans)
    if phase:
        lines.append(phase)

    rules = top_rules(spans, limit=limit, by="seconds")
    if rules:
        lines.append("")
        lines.append(f"top {len(rules)} rules by time:")
        lines.extend(
            _format_table(
                ("rule", "fires", "candidates", "deduped", "seconds"),
                [
                    (r["rule"], r["fires"], r["candidates"], r["deduped"], r["seconds"])
                    for r in rules
                ],
            )
        )
        by_fires = top_rules(spans, limit=limit, by="fires")
        if [r["rule"] for r in by_fires] != [r["rule"] for r in rules]:
            lines.append("")
            lines.append(f"top {len(by_fires)} rules by derivations:")
            lines.extend(
                _format_table(
                    ("rule", "fires", "seconds"),
                    [(r["rule"], r["fires"], r["seconds"]) for r in by_fires],
                )
            )

    rounds = round_rows(spans)
    if rounds:
        lines.append("")
        lines.append("rounds:")
        lines.extend(
            _format_table(
                ("round", "delta_in", "derived", "resident", "seconds"),
                [
                    (r["round"], r["delta_in"], r["derived"], r["resident_facts"], r["seconds"])
                    for r in rounds
                ],
            )
        )

    sources = source_rows(spans)
    if sources:
        lines.append("")
        lines.append("sources:")
        lines.extend(
            _format_table(
                ("predicate", "scans", "cached", "rows", "retries", "seconds"),
                [
                    (
                        s["predicate"],
                        s["scans"],
                        s["cache_served"],
                        s["rows_emitted"],
                        s["retries"],
                        s["seconds"],
                    )
                    for s in sources
                ],
            )
        )

    errors = [span for span in spans if span.status == "error"]
    if errors:
        lines.append("")
        lines.append(f"errors ({len(errors)}):")
        for span in errors[:limit]:
            lines.append(f"  [{span.kind}] {span.name}: {span.error or 'error'}")
    return "\n".join(lines)


def render_report(result: Any, *, limit: int = 5) -> str:
    """Report for a ``ReasoningResult``; degrades to stats/timings when the
    run was not traced."""
    tracer = getattr(result, "trace", None)
    if tracer is not None:
        return render_trace(tracer, limit=limit)
    lines = ["== reasoning run report (untraced) =="]
    stats = result.stats() if callable(getattr(result, "stats", None)) else {}
    header = []
    for key in ("executor", "status", "facts", "derived_facts", "rounds"):
        if key in stats:
            header.append(f"{key}={stats[key]}")
    if header:
        lines.append(" ".join(header))
    timings = getattr(result, "timings", None) or {}
    if timings:
        lines.append(
            "phases: "
            + " ".join(f"{key}={value:.4f}s" for key, value in sorted(timings.items()))
        )
    lines.append("(re-run with trace=True for per-rule / per-round detail)")
    return "\n".join(lines)


__all__ = (
    "aggregate_rules",
    "top_rules",
    "round_rows",
    "source_rows",
    "render_trace",
    "render_report",
)
