"""Trace export / import: JSONL round-trip and Chrome/Perfetto JSON.

JSONL is the durable on-disk format (one object per line: a ``meta``
header, ``span`` records, a final ``metrics`` snapshot — see
:class:`repro.obs.trace.JsonlTraceSink`).  :func:`load_jsonl` restores it
for ``tools/trace_view.py`` and for tests.

:func:`to_perfetto` converts spans into the Trace Event Format consumed
by ``chrome://tracing`` and https://ui.perfetto.dev — complete ("ph":
"X") events with microsecond timestamps rebased to the earliest span.
Driver spans share one track; parallel shard-match spans get a per-shard
track so the fan-out renders as parallel lanes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from .trace import Span, Tracer


@dataclass
class TraceDump:
    """A trace restored from disk: spans plus the final metrics snapshot."""

    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def roots(self) -> List[Span]:
        ids = {span.span_id for span in self.spans}
        return [
            span
            for span in self.spans
            if span.parent_id is None or span.parent_id not in ids
        ]

    def children_of(self, span: Span) -> List[Span]:
        return [child for child in self.spans if child.parent_id == span.span_id]


def load_jsonl(path: Union[str, Path]) -> TraceDump:
    """Parse a JSONL trace file written by :class:`JsonlTraceSink`."""
    dump = TraceDump()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                dump.spans.append(Span.from_record(record))
            elif kind == "metrics":
                dump.metrics = record.get("metrics", {})
            elif kind == "meta":
                dump.meta = record
    dump.spans.sort(key=lambda span: (span.t_start, span.span_id))
    return dump


def _spans_of(source: Union[Tracer, TraceDump, Iterable[Span]]) -> List[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    if isinstance(source, TraceDump):
        return list(source.spans)
    return list(source)


def to_perfetto(
    source: Union[Tracer, TraceDump, Iterable[Span]],
    *,
    process_name: str = "repro-reasoner",
) -> Dict[str, Any]:
    """Build a Chrome Trace Event Format document from spans."""
    spans = _spans_of(source)
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(span.t_start for span in spans)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        end = span.t_end if span.t_end is not None else span.t_start
        args: Dict[str, Any] = dict(span.attrs)
        args.update(span.counters)
        args["status"] = span.status
        if span.error:
            args["error"] = span.error
        # Shard-match spans (possibly from forked workers) get their own
        # track so the parallel fan-out is visible as stacked lanes.
        tid = 1
        if span.kind == "shard-match":
            tid = 2 + int(span.attrs.get("shard", 0))
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "name": f"{span.kind}:{span.name}" if span.kind not in span.name else span.name,
                "cat": span.kind,
                "ts": (span.t_start - t0) * 1e6,
                "dur": max(end - span.t_start, 0.0) * 1e6,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(
    source: Union[Tracer, TraceDump, Iterable[Span]],
    path: Union[str, Path],
    *,
    process_name: str = "repro-reasoner",
) -> Path:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
    destination = Path(path)
    document = to_perfetto(source, process_name=process_name)
    destination.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    return destination


__all__ = ("TraceDump", "load_jsonl", "to_perfetto", "write_perfetto")
