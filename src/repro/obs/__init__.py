"""Zero-dependency observability layer: span tracing, metrics, exports.

See :mod:`repro.obs.trace` for the span/tracer model,
:mod:`repro.obs.metrics` for the counter/gauge/histogram registry,
:mod:`repro.obs.export` for JSONL / Chrome-Perfetto export, and
:mod:`repro.obs.report` for the human-readable ``run_report()`` renderer.
"""

from .export import TraceDump, load_jsonl, to_perfetto, write_perfetto
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import (
    aggregate_rules,
    render_report,
    render_trace,
    round_rows,
    source_rows,
    top_rules,
)
from .trace import (
    SPAN_KINDS,
    JsonlTraceSink,
    RingBufferSink,
    Span,
    TraceSink,
    Tracer,
    activate,
    as_tracer,
    get_tracer,
)

__all__ = (
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "TraceSink",
    "RingBufferSink",
    "JsonlTraceSink",
    "as_tracer",
    "activate",
    "get_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceDump",
    "load_jsonl",
    "to_perfetto",
    "write_perfetto",
    "aggregate_rules",
    "top_rules",
    "round_rows",
    "source_rows",
    "render_trace",
    "render_report",
)
