"""Named counters, gauges and histograms for one reasoning run.

A :class:`MetricsRegistry` is the aggregate companion to span tracing:
spans answer "where did the time go", metrics answer "how many" for
quantities that are too frequent (or too global) to carry a span each —
pull-scheduler hit/miss/barren classifications, governor stops, source
cache traffic.  Everything is standard library, allocation-light, and
driver-thread-only (workers report through span records instead).
"""

from __future__ import annotations

from typing import Any, Dict, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> Number:
        self.value += amount
        return self.value


class Gauge:
    """Last-set value with a high-water helper (resident-fact peaks)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming min/max/mean summary (no buckets — this is a run-scoped
    registry, not a long-lived process exporter)."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.minimum: float = float("inf")
        self.maximum: float = float("-inf")

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }


__all__ = ("Counter", "Gauge", "Histogram", "MetricsRegistry", "Number")
