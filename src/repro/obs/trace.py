"""Span tracing for reasoning runs.

A :class:`Tracer` records a tree of :class:`Span` objects describing one
reasoning run: ``run`` at the root, ``rewrite`` / ``load`` / ``chase`` /
``answers`` phases below it, per-round ``round`` spans, per-rule ``rule``
spans, parallel ``shard-match`` / ``admission`` spans, and ``source-scan``
/ ``source-retry`` spans for external datasources.  Spans carry wall-clock
bounds (``time.perf_counter`` — CLOCK_MONOTONIC on Linux, so timestamps
from forked shard workers are directly comparable to the driver's),
structured ``attrs`` and integer/float ``counters`` (facts matched /
derived / deduped, resident high-water, ...).

Design constraints, in priority order:

* **Zero overhead when off.**  Production call sites hold a
  ``tracer`` reference that defaults to ``None`` and guard every
  instrumentation block with ``if tracer is not None`` — the untraced
  path executes no telemetry code at all and results stay bit-identical.
* **Zero dependencies.**  Standard library only, like the rest of the
  package.
* **Fork survival.**  Workers cannot share a live tracer; they return
  plain-dict span *records* (:meth:`Span.to_record`) which the driver
  merges with :meth:`Tracer.adopt` at admission time.

The module-global *active tracer* (:func:`activate` / :func:`get_tracer`)
mirrors ``testing/faults.py``: lazily-evaluated datasource scan generators
outlive the phase span that first pulled them, so they look up the active
tracer at iteration time instead of threading a parameter through every
record-manager layer.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from .metrics import MetricsRegistry

clock = time.perf_counter

#: Span kinds emitted by the built-in instrumentation, root-most first.
SPAN_KINDS = (
    "run",
    "rewrite",
    "load",
    "chase",
    "answers",
    "round",
    "partition",
    "rule",
    "shard-match",
    "admission",
    "source-scan",
    "source-retry",
    "worker-recovery",
    "governor-stop",
)


@dataclass
class Span:
    """One timed, attributed interval in a reasoning run."""

    kind: str
    name: str
    span_id: int
    parent_id: Optional[int] = None
    t_start: float = 0.0
    t_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, Union[int, float]] = field(default_factory=dict)
    status: str = "ok"
    error: Optional[str] = None

    @property
    def duration(self) -> float:
        """Wall-clock seconds covered by the span (0.0 while still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def bump(self, counter: str, amount: Union[int, float] = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def to_record(self) -> Dict[str, Any]:
        """Plain-dict form — picklable, JSON-serialisable, id-free enough
        to be re-parented by :meth:`Tracer.adopt` in another process."""
        record: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "status": self.status,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.counters:
            record["counters"] = dict(self.counters)
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            kind=record["kind"],
            name=record["name"],
            span_id=record.get("span_id", 0),
            parent_id=record.get("parent_id"),
            t_start=record.get("t_start", 0.0),
            t_end=record.get("t_end"),
            attrs=dict(record.get("attrs", {})),
            counters=dict(record.get("counters", {})),
            status=record.get("status", "ok"),
            error=record.get("error"),
        )


class TraceSink:
    """Destination for completed spans.  Subclass and override :meth:`emit`."""

    def emit(self, span: Span) -> None:
        raise NotImplementedError

    def finalize(self, tracer: "Tracer") -> None:
        """Called once from :meth:`Tracer.finish` before :meth:`close`."""

    def close(self) -> None:
        pass


class RingBufferSink(TraceSink):
    """In-memory sink holding the most recent ``max_spans`` completed spans."""

    def __init__(self, max_spans: int = 16384) -> None:
        self.max_spans = max_spans
        self.spans: deque = deque(maxlen=max_spans)
        self.dropped = 0

    def emit(self, span: Span) -> None:
        if len(self.spans) == self.max_spans:
            self.dropped += 1
        self.spans.append(span)


class JsonlTraceSink(TraceSink):
    """Appends one JSON object per completed span to ``path``.

    The file starts with a ``{"type": "meta", ...}`` line and ends (on
    :meth:`finalize`) with a ``{"type": "metrics", ...}`` snapshot of the
    tracer's registry, so :func:`repro.obs.export.load_jsonl` can restore
    both spans and metrics.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w", encoding="utf-8")
        self._write({"type": "meta", "format": "repro-trace", "version": 1})

    def _write(self, obj: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(obj, sort_keys=True, default=str))
        self._handle.write("\n")

    def emit(self, span: Span) -> None:
        record = span.to_record()
        record["type"] = "span"
        self._write(record)

    def finalize(self, tracer: "Tracer") -> None:
        self._write({"type": "metrics", "metrics": tracer.metrics.as_dict()})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class Tracer:
    """Builds the span tree for one reasoning run.

    Spans are delivered to every sink when they *end*; the internal
    :class:`RingBufferSink` always receives them so :meth:`spans` and
    ``run_report()`` work regardless of the extra sink configured.
    Parenting is stack-based: :meth:`begin` parents the new span under
    the innermost open span unless an explicit ``parent`` is given.

    A single lock guards id allocation and emission — the hot executors
    only touch the tracer from the driver thread, but datasource scans
    and recovery paths may interleave, and correctness here is worth a
    cheap uncontended lock.
    """

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        *,
        max_spans: int = 16384,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.memory = RingBufferSink(max_spans)
        self.sinks: List[TraceSink] = [self.memory]
        if sink is not None:
            self.sinks.append(sink)
        self.root: Optional[Span] = None
        self._stack: List[Span] = []
        self._next_id = 1
        self._lock = threading.Lock()
        self._finished = False

    # -- span lifecycle ----------------------------------------------------
    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def begin(
        self,
        kind: str,
        name: str,
        *,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span and push it on the parenting stack."""
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            kind=kind,
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent is not None else None,
            t_start=clock(),
            attrs={key: value for key, value in attrs.items() if value is not None},
        )
        if self.root is None:
            self.root = span
        self._stack.append(span)
        return span

    def end(
        self,
        span: Span,
        *,
        status: Optional[str] = None,
        error: Optional[str] = None,
    ) -> Span:
        """Close ``span``, pop it (and any forgotten children) off the stack,
        and deliver it to the sinks."""
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.t_end = clock()
            self._emit(top)
        span.t_end = clock()
        if status is not None:
            span.status = status
        if error is not None:
            span.error = error
            if status is None:
                span.status = "error"
        self._emit(span)
        return span

    def unwind(self, span: Span) -> None:
        """Close open descendants of ``span`` without closing ``span`` itself
        (used after an :class:`ExecutionStopped` unwound the round loop)."""
        while self._stack and self._stack[-1] is not span:
            top = self._stack.pop()
            top.t_end = clock()
            self._emit(top)

    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[Span]:
        opened = self.begin(kind, name, **attrs)
        try:
            yield opened
        except BaseException as exc:
            self.end(opened, status="error", error=repr(exc))
            raise
        else:
            self.end(opened)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def emit(
        self,
        kind: str,
        name: str,
        t_start: float,
        t_end: float,
        *,
        parent: Optional[Span] = None,
        attrs: Optional[Dict[str, Any]] = None,
        counters: Optional[Dict[str, Union[int, float]]] = None,
        status: str = "ok",
        error: Optional[str] = None,
    ) -> Span:
        """Record an already-completed interval (no stack interaction)."""
        if parent is None:
            parent = self.current() or self.root
        span = Span(
            kind=kind,
            name=name,
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent is not None else None,
            t_start=t_start,
            t_end=t_end,
            attrs=dict(attrs or {}),
            counters=dict(counters or {}),
            status=status,
            error=error,
        )
        self._emit(span)
        return span

    def adopt(
        self,
        records: Iterable[Dict[str, Any]],
        *,
        parent: Optional[Span] = None,
    ) -> List[Span]:
        """Merge plain-dict span records produced in a worker (possibly a
        forked process) under ``parent`` (default: current span).

        Ids are re-allocated from this tracer's sequence; ``perf_counter``
        timestamps are kept as-is (same monotonic clock domain on fork)
        but clamped to start no earlier than the adopting parent.
        """
        if parent is None:
            parent = self.current() or self.root
        adopted: List[Span] = []
        for record in records:
            span = Span.from_record(record)
            span.span_id = self._allocate_id()
            span.parent_id = parent.span_id if parent is not None else None
            if parent is not None and span.t_start < parent.t_start:
                span.t_start = parent.t_start
            if span.t_end is None:
                span.t_end = span.t_start
            self._emit(span)
            adopted.append(span)
        return adopted

    def _emit(self, span: Span) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.emit(span)

    # -- run lifecycle -----------------------------------------------------
    def finish(self) -> None:
        """Close any still-open spans, flush metrics, and close sinks.

        Idempotent; called by the reasoner when a run (or stream) completes.
        """
        if self._finished:
            return
        self._finished = True
        while self._stack:
            top = self._stack.pop()
            top.t_end = clock()
            self._emit(top)
        for sink in self.sinks:
            sink.finalize(self)
            sink.close()

    # -- inspection --------------------------------------------------------
    def spans(self, kind: Optional[str] = None) -> List[Span]:
        """Completed spans, sorted by start time."""
        collected = sorted(self.memory.spans, key=lambda s: (s.t_start, s.span_id))
        if kind is None:
            return collected
        return [span for span in collected if span.kind == kind]

    def children_of(self, span: Span) -> List[Span]:
        return [child for child in self.spans() if child.parent_id == span.span_id]


def as_tracer(value: Any) -> Optional[Tracer]:
    """Coerce a ``reason(trace=...)`` argument into a tracer (or ``None``).

    ``None``/``False`` → tracing off; ``True`` → in-memory tracer;
    a :class:`Tracer` is passed through; a path writes JSONL there (the
    in-memory ring buffer stays active so ``run_report()`` still works).
    """
    if value is None or value is False:
        return None
    if value is True:
        return Tracer()
    if isinstance(value, Tracer):
        return value
    if isinstance(value, (str, Path)):
        return Tracer(sink=JsonlTraceSink(value))
    raise TypeError(f"trace= expects None, bool, Tracer, or path; got {value!r}")


# -- module-global active tracer (faults.py pattern) -----------------------

_ACTIVE: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The tracer active for the current run, if any (datasource hooks)."""
    return _ACTIVE


@contextmanager
def activate(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Make ``tracer`` the active tracer for the block; re-entrant, and a
    no-op when ``tracer`` is ``None`` *and* nothing was active before."""
    global _ACTIVE
    previous = _ACTIVE
    if tracer is not None:
        _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


__all__: Sequence[str] = (
    "SPAN_KINDS",
    "Span",
    "TraceSink",
    "RingBufferSink",
    "JsonlTraceSink",
    "Tracer",
    "as_tracer",
    "activate",
    "get_tracer",
    "clock",
)
