"""repro — a reproduction of "The Vadalog System" (VLDB 2018).

An open-source Warded Datalog± reasoner for knowledge graphs: existential
rules with termination guarantees (Algorithm 1 of the paper), harmful-join
elimination, monotonic aggregation, a pipeline-style execution layer,
baseline engines and the full benchmark suite of the paper's evaluation.

Quick start::

    from repro import VadalogReasoner

    reasoner = VadalogReasoner('''
        @output("Control").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        Control(X, Z) :- Control(X, Y), Own(Y, Z, W), V = msum(W, <Y>), V > 0.5.
    ''')
    result = reasoner.reason(database={"Own": [("a", "b", 0.6), ("b", "c", 0.6)]})
    print(result.ground_tuples("Control"))
"""

from .core import (
    AnswerSet,
    Atom,
    CancellationToken,
    ChaseConfig,
    ChaseEngine,
    ChaseResult,
    Constant,
    ExecutionBudget,
    Fact,
    InconsistencyError,
    Null,
    Program,
    Query,
    Rule,
    TrivialIsomorphismStrategy,
    Variable,
    WardedTerminationStrategy,
    analyse_program,
    atom,
    certain_answer,
    fact,
    is_harmless_warded,
    is_warded,
    parse_program,
    parse_rule,
    run_chase,
    universal_answer,
)
from .engine import (
    ReasoningResult,
    ReasoningService,
    ResidentReasoner,
    VadalogReasoner,
    reason,
)
from .obs import JsonlTraceSink, MetricsRegistry, Tracer, render_trace
from .storage import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "AnswerSet",
    "Atom",
    "CancellationToken",
    "ChaseConfig",
    "ChaseEngine",
    "ChaseResult",
    "Constant",
    "ExecutionBudget",
    "Fact",
    "InconsistencyError",
    "Null",
    "Program",
    "Query",
    "Rule",
    "TrivialIsomorphismStrategy",
    "Variable",
    "WardedTerminationStrategy",
    "analyse_program",
    "atom",
    "certain_answer",
    "fact",
    "is_harmless_warded",
    "is_warded",
    "parse_program",
    "parse_rule",
    "run_chase",
    "universal_answer",
    "ReasoningResult",
    "ReasoningService",
    "ResidentReasoner",
    "VadalogReasoner",
    "reason",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Tracer",
    "render_trace",
    "Database",
    "Relation",
    "__version__",
]
