"""Restricted (standard) chase with full homomorphism checks.

This baseline mirrors the behaviour of the chase-based tools the paper
compares against (Graal, LLunatic, PDQ): before every chase step the engine
checks whether the head of the rule is *already satisfied* by some
homomorphic extension of the current instance, and only fires the rule when
it is not.  The check is re-executed for every candidate trigger, which is
exactly the per-step query overhead discussed around Example 14 of the
paper.  Existential witnesses are fresh labelled nulls.

The engine supports the same rule features as the main chase (conditions,
assignments, ``Dom`` guards, monotonic aggregations) so that certain answers
can be compared against the warded engine in differential tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.aggregates import AggregateRegistry
from ..core.atoms import Atom, Fact
from ..core.chase import ChaseConfig, ChaseEngine, ChaseLimitError
from ..core.expressions import ExpressionError
from ..core.fact_store import FactStore
from ..core.rules import Program
from ..core.terms import NullFactory, Term, Variable
from .homomorphism import find_homomorphism


@dataclass
class BaselineResult:
    """Result of a baseline run: the saturated store plus counters."""

    store: FactStore
    rounds: int = 0
    applied_steps: int = 0
    homomorphism_checks: int = 0
    elapsed_seconds: float = 0.0

    def facts(self, predicate: Optional[str] = None) -> Tuple[Fact, ...]:
        if predicate is None:
            return self.store.facts()
        return tuple(self.store.by_predicate(predicate))

    def ground_tuples(self, predicate: str):
        return {f.values() for f in self.store.by_predicate(predicate) if not f.has_nulls}

    def stats(self) -> Dict[str, object]:
        return {
            "facts": len(self.store),
            "rounds": self.rounds,
            "applied_steps": self.applied_steps,
            "homomorphism_checks": self.homomorphism_checks,
            "elapsed_seconds": self.elapsed_seconds,
        }


class RestrictedChaseEngine:
    """Restricted chase: fire a trigger only when its head is not yet satisfied."""

    def __init__(
        self,
        program: Program,
        max_rounds: int = 1000,
        max_facts: Optional[int] = None,
    ) -> None:
        self.program = program
        self.max_rounds = max_rounds
        self.max_facts = max_facts
        self._matcher = ChaseEngine(program, config=ChaseConfig())

    def run(self, database: Iterable[Fact] = ()) -> BaselineResult:
        started = time.perf_counter()
        store = FactStore()
        for fact in list(database) + list(self.program.facts):
            store.add(fact)
        null_factory = NullFactory()
        aggregates = AggregateRegistry()
        result = BaselineResult(store=store)

        changed = True
        rounds = 0
        while changed:
            rounds += 1
            if rounds > self.max_rounds:
                raise ChaseLimitError(
                    f"restricted chase exceeded {self.max_rounds} rounds"
                )
            changed = False
            for rule in self.program.rules:
                for binding, _used in self._body_matches(rule, store):
                    full_binding = self._evaluate_computed(rule, binding, aggregates)
                    if full_binding is None:
                        continue
                    result.homomorphism_checks += 1
                    if self._head_satisfied(rule, full_binding, store):
                        continue
                    for variable in rule.existential_variables():
                        full_binding[variable] = null_factory.fresh()
                    for head_atom in rule.head:
                        head_fact = self._instantiate(head_atom, full_binding)
                        if store.add(head_fact):
                            changed = True
                            result.applied_steps += 1
                    if self.max_facts is not None and len(store) > self.max_facts:
                        raise ChaseLimitError(
                            f"restricted chase exceeded {self.max_facts} facts"
                        )
        result.rounds = rounds
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ helpers
    def _body_matches(self, rule, store: FactStore):
        """All bindings of the rule body against the full store (naive evaluation)."""
        body = rule.relational_body

        def recurse(index: int, binding: Dict[Variable, Term], used: List[Fact]):
            if index == len(body):
                if self._matcher._guards_hold(rule, binding, store):
                    yield dict(binding), list(used)
                return
            atom = body[index].substitute(binding)
            for fact in store.candidates(atom, binding):
                extension = atom.match(fact)
                if extension is None:
                    continue
                merged = dict(binding)
                merged.update(extension)
                used.append(fact)
                yield from recurse(index + 1, merged, used)
                used.pop()

        yield from recurse(0, {}, [])

    def _evaluate_computed(self, rule, binding, aggregates) -> Optional[Dict[Variable, Term]]:
        full_binding = dict(binding)
        try:
            for assignment in rule.assignments:
                full_binding[assignment.variable] = assignment.compute(full_binding)
            if rule.aggregate is not None:
                value = self._matcher._aggregate_value(rule, rule.aggregate, full_binding)
                if value is None:
                    return None
                full_binding[rule.aggregate.variable] = value
        except ExpressionError:
            return None
        if not self._matcher._post_conditions_hold(rule, full_binding):
            return None
        return full_binding

    def _head_satisfied(self, rule, binding: Dict[Variable, Term], store: FactStore) -> bool:
        """Restricted-chase check: does the head already hold (homomorphically)?"""
        initial: Dict[Term, Term] = {
            variable: term
            for variable, term in binding.items()
            if variable in set(rule.head_variables())
        }
        return find_homomorphism(list(rule.head), store, initial) is not None

    @staticmethod
    def _instantiate(atom: Atom, binding: Dict[Variable, Term]) -> Fact:
        terms: List[Term] = []
        for term in atom.terms:
            if isinstance(term, Variable):
                terms.append(binding[term])
            else:
                terms.append(term)
        return Fact(atom.predicate, terms)
