"""Graph-traversal baseline (the Neo4J comparison of Section 6.3).

The PSC scenario is a reachability problem over the company-control graph:
a person with significant control for a company propagates along ``Control``
edges.  A specialised graph engine answers it by breadth-first traversal —
this is how the paper encodes the task in Cypher.  The engine only supports
this reachability shape; it exists to compare a best-in-class specialised
traversal against the general-purpose reasoner, as the paper does.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Set, Tuple


@dataclass
class TraversalResult:
    """Result of a graph-engine run."""

    reachable: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    derived_pairs: Set[Tuple[Hashable, Hashable]] = field(default_factory=set)
    visited_edges: int = 0
    elapsed_seconds: float = 0.0

    def pairs(self) -> Set[Tuple[Hashable, Hashable]]:
        return set(self.derived_pairs)

    def stats(self) -> Dict[str, object]:
        return {
            "pairs": len(self.derived_pairs),
            "visited_edges": self.visited_edges,
            "elapsed_seconds": self.elapsed_seconds,
        }


class GraphTraversalEngine:
    """BFS propagation of node labels along a directed edge relation."""

    def __init__(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        self._adjacency: Dict[Hashable, List[Hashable]] = {}
        self._edge_count = 0
        for source, target in edges:
            self._adjacency.setdefault(source, []).append(target)
            self._edge_count += 1

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def propagate_labels(
        self, seeds: Iterable[Tuple[Hashable, Hashable]]
    ) -> TraversalResult:
        """Propagate ``(node, label)`` seeds along edges (the PSC computation).

        ``seeds`` are the key persons: person ``label`` controls company
        ``node``; the result pairs are all ``(company, label)`` pairs where the
        label reaches the company along control edges.
        """
        started = time.perf_counter()
        result = TraversalResult()
        labels_of: Dict[Hashable, Set[Hashable]] = {}
        queue: deque = deque()
        for node, label in seeds:
            if label not in labels_of.setdefault(node, set()):
                labels_of[node].add(label)
                result.derived_pairs.add((node, label))
                queue.append((node, label))
        while queue:
            node, label = queue.popleft()
            for successor in self._adjacency.get(node, ()):  # Control(node, successor)
                result.visited_edges += 1
                successor_labels = labels_of.setdefault(successor, set())
                if label not in successor_labels:
                    successor_labels.add(label)
                    result.derived_pairs.add((successor, label))
                    queue.append((successor, label))
        result.reachable = labels_of
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def reachable_from(self, source: Hashable) -> Set[Hashable]:
        """Plain BFS reachability from one node (used by the control queries)."""
        seen: Set[Hashable] = set()
        queue: deque = deque([source])
        while queue:
            node = queue.popleft()
            for successor in self._adjacency.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return seen
