"""Recursive-CTE-style Datalog evaluation (the RDBMS baseline).

The paper runs the PSC scenario as recursive SQL on PostgreSQL, MySQL and
Oracle and observes a roughly 6× slowdown against the Vadalog system
(Section 6.3), attributing it to the poor handling of recursion by RDBMSs.
This baseline mimics a ``WITH RECURSIVE`` evaluation:

* existential quantification is not supported (SQL cannot invent values);
* every iteration re-joins the *whole* accumulated relations with the rule
  bodies (no semi-naive delta restriction) and de-duplicates the result with
  a full set comparison, which is how a naive recursive CTE behaves;
* no dynamic indexes: joins scan the accumulated relations.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.atoms import Atom, Fact
from ..core.chase import ChaseLimitError
from ..core.rules import Program
from ..core.terms import Constant, Variable
from .restricted_chase import BaselineResult


class UnsupportedSqlFeature(Exception):
    """Raised for programs outside the recursive-SQL fragment (existentials, aggregation)."""


class RecursiveSqlEngine:
    """Naive recursive-CTE evaluation of a Datalog program."""

    def __init__(self, program: Program, max_rounds: int = 10000) -> None:
        for rule in program.rules:
            if rule.existential_variables():
                raise UnsupportedSqlFeature(
                    f"rule {rule.label}: recursive SQL cannot invent existential values"
                )
            if rule.aggregate is not None:
                raise UnsupportedSqlFeature(
                    f"rule {rule.label}: monotonic aggregation inside recursion is not "
                    "expressible in a recursive CTE"
                )
        self.program = program
        self.max_rounds = max_rounds

    def run(self, database: Iterable[Fact] = ()) -> BaselineResult:
        started = time.perf_counter()
        relations: Dict[str, Set[Tuple[object, ...]]] = {}
        for fact in list(database) + list(self.program.facts):
            relations.setdefault(fact.predicate, set()).add(fact.values())

        rounds = 0
        applied = 0
        changed = True
        while changed:
            rounds += 1
            if rounds > self.max_rounds:
                raise ChaseLimitError(f"recursive SQL evaluation exceeded {self.max_rounds} rounds")
            changed = False
            for rule in self.program.rules:
                produced = self._evaluate_rule(rule, relations)
                for predicate, rows in produced.items():
                    existing = relations.setdefault(predicate, set())
                    before = len(existing)
                    existing |= rows
                    added = len(existing) - before
                    if added:
                        changed = True
                        applied += added

        from ..core.fact_store import FactStore

        store = FactStore()
        for predicate, rows in relations.items():
            for row in rows:
                store.add(Fact(predicate, [Constant(v) for v in row]))
        result = BaselineResult(store=store, rounds=rounds, applied_steps=applied)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ helpers
    def _evaluate_rule(
        self, rule, relations: Dict[str, Set[Tuple[object, ...]]]
    ) -> Dict[str, Set[Tuple[object, ...]]]:
        """One full (non-incremental) evaluation of a rule body as a CTE would."""
        body = rule.relational_body
        bindings: List[Dict[Variable, object]] = [{}]
        for atom in body:
            rows = relations.get(atom.predicate, set())
            next_bindings: List[Dict[Variable, object]] = []
            for binding in bindings:
                for row in rows:
                    merged = self._match_row(atom, row, binding)
                    if merged is not None:
                        next_bindings.append(merged)
            bindings = next_bindings
            if not bindings:
                return {}
        produced: Dict[str, Set[Tuple[object, ...]]] = {}
        for binding in bindings:
            term_binding = {v: Constant(value) for v, value in binding.items()}
            if not all(c.holds(term_binding) for c in rule.conditions):
                continue
            full = dict(term_binding)
            ok = True
            for assignment in rule.assignments:
                try:
                    full[assignment.variable] = assignment.compute(full)
                except Exception:  # noqa: BLE001 - treated as a failed WHERE clause
                    ok = False
                    break
            if not ok:
                continue
            for head_atom in rule.head:
                row = []
                for term in head_atom.terms:
                    if isinstance(term, Variable):
                        value = full[term]
                        row.append(value.value if isinstance(value, Constant) else value)
                    elif isinstance(term, Constant):
                        row.append(term.value)
                    else:  # pragma: no cover - excluded by the constructor checks
                        raise UnsupportedSqlFeature("nulls cannot appear in SQL heads")
                produced.setdefault(head_atom.predicate, set()).add(tuple(row))
        return produced

    @staticmethod
    def _match_row(
        atom: Atom, row: Tuple[object, ...], binding: Dict[Variable, object]
    ) -> Optional[Dict[Variable, object]]:
        if len(row) != atom.arity:
            return None
        merged = dict(binding)
        for term, value in zip(atom.terms, row):
            if isinstance(term, Variable):
                bound = merged.get(term)
                if bound is None:
                    merged[term] = value
                elif bound != value:
                    return None
            elif isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                return None
        return merged
