"""Baseline engines used for the comparative experiments (Sections 6.2, 6.3, 6.5).

None of the systems the paper compares against (RDFox, LLunatic, DLV, Graal,
PDQ, PostgreSQL, MySQL, Oracle, Neo4J) can be shipped here; each baseline
re-implements the *algorithmic trait* the paper identifies as the reason for
that system's behaviour:

* :class:`RestrictedChaseEngine` — restricted chase with a full homomorphism
  check before every step (Graal / LLunatic / PDQ style);
* :class:`SkolemChaseEngine` — unrestricted (oblivious) Skolem chase with
  full grounding of rule instances (DLV / RDFox style);
* :class:`RecursiveSqlEngine` — naive recursive-CTE evaluation without
  existentials, re-joining the full relations at every iteration
  (PostgreSQL / MySQL / Oracle style);
* :class:`GraphTraversalEngine` — BFS traversal over an edge relation
  (Neo4J style), only applicable to reachability-shaped tasks.
"""

from .homomorphism import find_homomorphism, homomorphism_exists
from .restricted_chase import RestrictedChaseEngine
from .skolem_chase import SkolemChaseEngine
from .sql_recursion import RecursiveSqlEngine
from .graph_engine import GraphTraversalEngine

__all__ = [
    "find_homomorphism",
    "homomorphism_exists",
    "RestrictedChaseEngine",
    "SkolemChaseEngine",
    "RecursiveSqlEngine",
    "GraphTraversalEngine",
]
