"""Unrestricted Skolem (oblivious) chase with full grounding.

This baseline mirrors the in-memory Datalog engines the paper compares
against (DLV with Skolemised existentials, RDFox): existential witnesses are
produced by *deterministic Skolem functions of the rule frontier*, rules are
applied without any satisfaction check (unrestricted chase), and every rule
instance is grounded.  The approach avoids homomorphism checks but pays a
large memory footprint — all rule instances and all Skolemised facts are
materialised, which is the behaviour Section 7 attributes to DLV.

Termination holds whenever the Skolem chase of the program terminates, which
is the case for all scenarios of the evaluation; a round limit guards the
engine against non-terminating inputs.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from ..core.aggregates import AggregateRegistry
from ..core.atoms import Atom, Fact
from ..core.chase import ChaseConfig, ChaseEngine, ChaseLimitError
from ..core.expressions import ExpressionError
from ..core.fact_store import FactStore
from ..core.rules import Program
from ..core.skolem import SkolemFactory, skolem_name
from ..core.terms import NullFactory, Term, Variable
from .restricted_chase import BaselineResult


class SkolemChaseEngine:
    """Oblivious chase with Skolemised existentials and full grounding."""

    def __init__(
        self,
        program: Program,
        max_rounds: int = 1000,
        max_facts: Optional[int] = None,
    ) -> None:
        self.program = program
        self.max_rounds = max_rounds
        self.max_facts = max_facts
        self._matcher = ChaseEngine(program, config=ChaseConfig())
        self._null_factory = NullFactory()
        self._skolems = SkolemFactory(self._null_factory)

    def run(self, database: Iterable[Fact] = ()) -> BaselineResult:
        started = time.perf_counter()
        store = FactStore()
        for fact in list(database) + list(self.program.facts):
            store.add(fact)
        aggregates = AggregateRegistry()
        result = BaselineResult(store=store)
        grounded_instances = 0

        changed = True
        rounds = 0
        while changed:
            rounds += 1
            if rounds > self.max_rounds:
                raise ChaseLimitError(f"skolem chase exceeded {self.max_rounds} rounds")
            changed = False
            for rule in self.program.rules:
                for binding, _used in self._body_matches(rule, store):
                    grounded_instances += 1
                    full_binding = self._evaluate_computed(rule, binding, aggregates)
                    if full_binding is None:
                        continue
                    frontier_terms = tuple(
                        full_binding[v]
                        for v in rule.frontier_variables()
                        if v in full_binding
                    )
                    for variable in rule.existential_variables():
                        full_binding[variable] = self._skolems.null_for_terms(
                            skolem_name(rule.label or "rule", variable.name),
                            frontier_terms,
                        )
                    for head_atom in rule.head:
                        head_fact = self._instantiate(head_atom, full_binding)
                        if store.add(head_fact):
                            changed = True
                            result.applied_steps += 1
                    if self.max_facts is not None and len(store) > self.max_facts:
                        raise ChaseLimitError(
                            f"skolem chase exceeded {self.max_facts} facts"
                        )
        result.rounds = rounds
        result.homomorphism_checks = 0
        result.elapsed_seconds = time.perf_counter() - started
        # Expose the grounding volume through the generic counter so the
        # benchmarks can report it (memory-footprint proxy).
        result.applied_steps = max(result.applied_steps, 0)
        result.grounded_instances = grounded_instances  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------ helpers
    def _body_matches(self, rule, store: FactStore):
        body = rule.relational_body

        def recurse(index: int, binding: Dict[Variable, Term], used: List[Fact]):
            if index == len(body):
                if self._matcher._guards_hold(rule, binding, store):
                    yield dict(binding), list(used)
                return
            atom = body[index].substitute(binding)
            for fact in store.candidates(atom, binding):
                extension = atom.match(fact)
                if extension is None:
                    continue
                merged = dict(binding)
                merged.update(extension)
                used.append(fact)
                yield from recurse(index + 1, merged, used)
                used.pop()

        yield from recurse(0, {}, [])

    def _evaluate_computed(self, rule, binding, aggregates) -> Optional[Dict[Variable, Term]]:
        full_binding = dict(binding)
        try:
            for assignment in rule.assignments:
                full_binding[assignment.variable] = assignment.compute(full_binding)
            if rule.aggregate is not None:
                value = self._matcher._aggregate_value(rule, rule.aggregate, full_binding)
                if value is None:
                    return None
                full_binding[rule.aggregate.variable] = value
        except ExpressionError:
            return None
        if not self._matcher._post_conditions_hold(rule, full_binding):
            return None
        return full_binding

    @staticmethod
    def _instantiate(atom: Atom, binding: Dict[Variable, Term]) -> Fact:
        terms: List[Term] = []
        for term in atom.terms:
            if isinstance(term, Variable):
                terms.append(binding[term])
            else:
                terms.append(term)
        return Fact(atom.predicate, terms)
