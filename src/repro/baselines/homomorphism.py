"""Homomorphism checks shared by the baseline engines.

A homomorphism from a set of atoms ``S`` to a fact store maps labelled nulls
(and variables) of ``S`` to terms of the store such that every atom of ``S``
becomes a fact of the store; constants map to themselves.  The restricted
chase performs such a check before every chase step, which is exactly the
overhead the paper attributes to the back-end based systems (Section 7,
Example 14).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.atoms import Atom, Fact
from ..core.fact_store import FactStore
from ..core.terms import Constant, Term, Variable


def _unify_term(
    pattern: Term, target: Term, mapping: Dict[Term, Term]
) -> Optional[Dict[Term, Term]]:
    """Extend ``mapping`` so ``pattern`` maps to ``target``; None on conflict."""
    if isinstance(pattern, Constant):
        return mapping if pattern == target else None
    # Variables and nulls are both mapped (nulls behave like variables under
    # homomorphisms; constants must match exactly).
    bound = mapping.get(pattern)
    if bound is None:
        extended = dict(mapping)
        extended[pattern] = target
        return extended
    return mapping if bound == target else None


def _match_atom(
    atom: Atom, fact: Fact, mapping: Dict[Term, Term]
) -> Optional[Dict[Term, Term]]:
    if atom.predicate != fact.predicate or atom.arity != fact.arity:
        return None
    current = mapping
    for pattern, target in zip(atom.terms, fact.terms):
        current = _unify_term(pattern, target, current)
        if current is None:
            return None
    return current


def find_homomorphism(
    atoms: Sequence[Atom],
    store: FactStore,
    initial_mapping: Optional[Dict[Term, Term]] = None,
) -> Optional[Dict[Term, Term]]:
    """Find a homomorphism sending every atom of ``atoms`` into ``store``.

    ``initial_mapping`` can pre-bind variables/nulls (used by the restricted
    chase to freeze the frontier of the rule being checked).  Returns the
    mapping found or ``None``.
    """
    atoms = list(atoms)
    mapping = dict(initial_mapping or {})

    def recurse(index: int, current: Dict[Term, Term]) -> Optional[Dict[Term, Term]]:
        if index == len(atoms):
            return current
        atom = atoms[index]
        # Use the store index with whatever is bound so far (lookup only; the
        # actual matching runs on the original atom so that already-mapped
        # terms stay rigid through ``current``).
        lookup_terms: List[Term] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                lookup_terms.append(term)
            elif term in current:
                lookup_terms.append(current[term])
            else:
                # Unmapped nulls/variables can map anywhere: hide them from the
                # index lookup behind a placeholder variable.
                lookup_terms.append(Variable(f"_h{position}"))
        lookup_atom = Atom(atom.predicate, lookup_terms)
        binding_view: Dict[Variable, Term] = {}
        for fact in store.candidates(lookup_atom, binding_view):
            extended = _match_atom(atom, fact, dict(current))
            if extended is None:
                continue
            result = recurse(index + 1, extended)
            if result is not None:
                return result
        return None

    return recurse(0, mapping)


def homomorphism_exists(
    atoms: Sequence[Atom],
    store: FactStore,
    initial_mapping: Optional[Dict[Term, Term]] = None,
) -> bool:
    """Boolean version of :func:`find_homomorphism`."""
    return find_homomorphism(atoms, store, initial_mapping) is not None


def facts_homomorphic(source: Iterable[Fact], store: FactStore) -> bool:
    """True when the set of ``source`` facts maps homomorphically into ``store``."""
    return homomorphism_exists(list(source), store)
