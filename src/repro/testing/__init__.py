"""Deterministic testing utilities (fault injection)."""

from .faults import (
    FaultPlan,
    FaultSpec,
    WorkerCrash,
    fault_point,
    inject,
    install,
    uninstall,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "WorkerCrash",
    "fault_point",
    "inject",
    "install",
    "uninstall",
]
