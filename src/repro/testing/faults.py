"""Deterministic fault injection for the chaos test suite.

Production code is instrumented with named *fault points* — cheap no-op
hooks (one module-global read when nothing is installed) placed at the
seams the robustness layer must survive: datasource scans, parallel match
workers, rule application in the materializing chase and in the streaming
pipeline.  Tests install a :class:`FaultPlan` that decides, deterministically
(seeded counters, optional seeded probability), which hits of which point
raise an injected exception or sleep to simulate a slow rule.

Registered fault points:

* ``datasource.scan``  — start of each scan attempt in ``DataSource``
  (context: ``predicate``, ``attempt``);
* ``parallel.worker``  — entry of the per-shard match body in
  ``engine.partition`` (context: ``shard``, ``round``); fires in thread
  workers, forked children (the plan is inherited copy-on-write) and in
  driver-side degraded execution alike;
* ``chase.rule``       — per rule application in the materializing engines
  (context: ``rule``, ``round``);
* ``pipeline.rule``    — per ``produce()`` of a streaming rule filter
  (context: ``rule``).

The harness is intentionally dependency-free so any module may import
:func:`fault_point` without cycles.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class WorkerCrash(RuntimeError):
    """Marker exception used to simulate a crashed parallel worker."""


@dataclass
class FaultSpec:
    """One injection rule: where, what, and how often.

    ``times=None`` fires on every matching hit; ``after=n`` skips the first
    ``n`` matching hits.  ``probability`` (with the plan's seeded RNG) makes
    firing stochastic but reproducible.  ``delay`` sleeps before raising —
    with ``exception=None`` it is a pure slow-down (slow-rule simulation).
    ``match`` further filters on the fault point's keyword context.
    """

    point: str
    exception: Optional[Callable[[str], BaseException]] = None
    times: Optional[int] = 1
    after: int = 0
    delay: float = 0.0
    probability: Optional[float] = None
    match: Optional[Callable[[Dict[str, Any]], bool]] = None


class FaultPlan:
    """A seeded, thread-safe set of :class:`FaultSpec` rules.

    Exposes per-point ``hits`` and ``fired`` counters so tests can assert
    that an injection actually exercised the intended path.
    """

    def __init__(self, *specs: FaultSpec, seed: int = 0) -> None:
        # Accept plain dicts as shorthand for FaultSpec(**dict).
        self.specs: List[FaultSpec] = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in specs
        ]
        self.rng = random.Random(seed)
        # Per-spec hit/fired counters live in shared memory so ``times``/
        # ``after`` hold *globally* across fork-backend worker processes
        # (which inherit the plan copy-on-write — plain ints would reset in
        # every child).  The shared lock makes the whole decision atomic
        # across processes and threads alike.
        self._lock = multiprocessing.RLock()
        self._spec_hits: List[Any] = [
            multiprocessing.Value("i", 0, lock=False) for _ in self.specs
        ]
        self._spec_fired: List[Any] = [
            multiprocessing.Value("i", 0, lock=False) for _ in self.specs
        ]

    # -- counters (test assertions) ---------------------------------------
    def spec_hits(self, index: int = 0) -> int:
        return self._spec_hits[index].value

    def spec_fired(self, index: int = 0) -> int:
        return self._spec_fired[index].value

    @property
    def hits(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for spec, counter in zip(self.specs, self._spec_hits):
            totals[spec.point] = totals.get(spec.point, 0) + counter.value
        return totals

    @property
    def fired(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for spec, counter in zip(self.specs, self._spec_fired):
            totals[spec.point] = totals.get(spec.point, 0) + counter.value
        return totals

    def visit(self, point: str, context: Dict[str, Any]) -> None:
        actions: List[Tuple[float, Optional[Callable[[str], BaseException]]]] = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.point != point:
                    continue
                if spec.match is not None and not spec.match(context):
                    continue
                hit_no = self._spec_hits[index].value
                self._spec_hits[index].value = hit_no + 1
                if hit_no < spec.after:
                    continue
                if spec.times is not None and self._spec_fired[index].value >= spec.times:
                    continue
                if spec.probability is not None and self.rng.random() >= spec.probability:
                    continue
                self._spec_fired[index].value += 1
                actions.append((spec.delay, spec.exception))
        for delay, exception in actions:
            if delay:
                time.sleep(delay)
            if exception is not None:
                raise exception(f"injected fault at {point!r} ({context})")


_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Install ``plan`` globally (also inherited by forked workers)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def inject(*specs: FaultSpec, seed: int = 0) -> Iterator[FaultPlan]:
    """Install a fresh plan for the duration of the ``with`` block."""
    plan = FaultPlan(*specs, seed=seed)
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def fault_point(name: str, **context: Any) -> None:
    """Hook called from production code; no-op unless a plan is installed."""
    plan = _ACTIVE
    if plan is not None:
        plan.visit(name, context)
