"""Deterministic fuzz corpus of warded programs (shared by tests and tools).

A seeded generator produces small warded Datalog± programs (joins,
projections, recursion, constants, and existential rules fed from the
extensional layer so the chase provably terminates) together with random
databases.  The corpus is *deterministic*: case ``i`` is derived from
``MASTER_SEED + i * 1009`` bit-for-bit, so a CI failure names a case index
(and therefore a seed) that reproduces locally.

The generator used to live inside ``tests/test_fuzz_programs.py``; it moved
here so three consumers can share one corpus:

* the differential fuzz suite (``tests/test_fuzz_programs.py``) — executor
  matrix plus magic-vs-unrewritten agreement;
* the translation-validation oracle (:mod:`repro.verify.oracle`) — symbolic
  equivalence checking of the optimizer rewritings over the same programs;
* the ``tools/check_equiv.py`` CLI — corpus sweeps from the command line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.parser import parse_program
from ..core.rules import Program
from ..core.terms import Constant, Variable
from ..core.wardedness import analyse_program

MASTER_SEED = 20260726
N_CASES = 100
CONSTANTS = ["a", "b", "c", "d", "e", 1, 2, 3]


def case_seed(index: int, attempt: int = 0) -> int:
    """The ``random.Random`` seed of fuzz case ``index`` (for repro snippets)."""
    return MASTER_SEED + index * 1009 + attempt


def _random_database(rng, predicates):
    """A small random database: 2–6 facts per extensional predicate."""
    database = {}
    for name, arity in predicates.items():
        rows = set()
        for _ in range(rng.randint(2, 6)):
            rows.add(tuple(rng.choice(CONSTANTS) for _ in range(arity)))
        database[name] = sorted(rows, key=repr)
    return database


def _variables(n):
    return [Variable(f"V{i}") for i in range(n)]


def _random_program(rng):
    """Generate one warded program (text) plus its extensional schema.

    Structure: 2–3 extensional predicates; an optional existential rule fed
    only from the extensional layer (bounded null depth, so the warded
    chase terminates regardless of the rest); 2–4 plain Datalog rules
    (copy/permutation, join, or linear recursion) over everything defined
    so far, with occasional constants in bodies.
    """
    edb = {f"E{i}": rng.randint(1, 3) for i in range(rng.randint(2, 3))}
    idb = {}
    rules = []

    def atom_for(name, arity, vars_pool):
        terms = []
        for _ in range(arity):
            if rng.random() < 0.15:
                terms.append(Constant(rng.choice(CONSTANTS)))
            else:
                terms.append(rng.choice(vars_pool))
        return Atom(name, terms)

    # Optional existential layer (EDB bodies only).
    if rng.random() < 0.5:
        source = rng.choice(sorted(edb))
        arity = edb[source]
        head_arity = rng.randint(max(1, arity), arity + 1)
        name = f"X{len(idb)}"
        body_vars = _variables(arity)
        head_terms = list(body_vars[: head_arity - 1]) or [body_vars[0]]
        head_terms.append(Variable("Z"))  # existential witness
        rules.append((Atom(name, head_terms[:head_arity]), [Atom(source, body_vars)]))
        idb[name] = head_arity

    # Plain Datalog layer.
    for index in range(rng.randint(2, 4)):
        defined = {**edb, **idb}
        kind = rng.choice(["copy", "join", "recursive"])
        name = f"P{index}"
        if kind == "copy":
            source = rng.choice(sorted(defined))
            arity = defined[source]
            body_vars = _variables(arity)
            head_vars = rng.sample(body_vars, k=rng.randint(1, arity))
            rules.append((Atom(name, head_vars), [atom_for(source, arity, body_vars)]))
            idb[name] = len(head_vars)
        elif kind == "join":
            left = rng.choice(sorted(defined))
            right = rng.choice(sorted(defined))
            lv = _variables(defined[left])
            rv = _variables(defined[left] + defined[right])[defined[left]:]
            if lv and rv:
                rv[0] = lv[-1]  # shared join variable
            head_pool = list(dict.fromkeys(lv + rv))
            head_vars = rng.sample(head_pool, k=rng.randint(1, min(3, len(head_pool))))
            rules.append(
                (
                    Atom(name, head_vars),
                    [Atom(left, lv), atom_for(right, defined[right], rv)],
                )
            )
            idb[name] = len(head_vars)
        else:
            binary_edb = [n for n, a in edb.items() if a == 2]
            if not binary_edb:
                continue
            edge = rng.choice(binary_edb)
            x, y, z = Variable("A"), Variable("B"), Variable("C")
            rules.append((Atom(name, (x, y)), [Atom(edge, (x, y))]))
            rules.append((Atom(name, (x, z)), [Atom(name, (x, y)), Atom(edge, (y, z))]))
            idb[name] = 2

    lines = []
    for head, body in rules:
        body_text = ", ".join(
            f"{a.predicate}({', '.join(_term_text(t) for t in a.terms)})" for a in body
        )
        head_text = f"{head.predicate}({', '.join(_term_text(t) for t in head.terms)})"
        lines.append(f"{head_text} :- {body_text}.")
    for name in sorted(idb):
        lines.append(f'@output("{name}").')
    return "\n".join(lines), edb, idb


def _term_text(term):
    if isinstance(term, Variable):
        return term.name
    value = term.value
    return f'"{value}"' if isinstance(value, str) else str(value)


@dataclass
class FuzzCase:
    """One deterministic corpus entry.

    ``rng`` is the generator *after* producing program and database — the
    fuzz suite keeps consuming it (query sampling), so query selection stays
    bit-identical to the pre-extraction test behaviour.
    """

    index: int
    attempt: int
    text: str
    program: Program
    database: Dict[str, List[Tuple]]
    edb: Dict[str, int]
    idb: Dict[str, int]
    rng: random.Random

    @property
    def seed(self) -> int:
        return case_seed(self.index, self.attempt)


def generate_case(index: int) -> FuzzCase:
    """Deterministically generate warded case ``index`` (retry until warded)."""
    for attempt in range(50):
        rng = random.Random(case_seed(index, attempt))
        text, edb, idb = _random_program(rng)
        if not idb:
            continue
        program = parse_program(text)
        if not program.rules:
            continue
        if not analyse_program(program).is_warded:
            continue
        database = _random_database(rng, edb)
        return FuzzCase(
            index=index,
            attempt=attempt,
            text=text,
            program=program,
            database=database,
            edb=edb,
            idb=idb,
            rng=rng,
        )
    raise AssertionError(f"case {index}: no warded program within 50 attempts")


def point_query(case: FuzzCase, result) -> Optional[Atom]:
    """A bound query atom over a derived predicate, from actual answers.

    ``result`` is a :class:`~repro.engine.reasoner.ReasoningResult` of a full
    materialisation of the case; consumes ``case.rng`` (call at most once).
    """
    rng = case.rng
    for predicate in sorted(case.idb):
        facts = sorted(
            (f for f in result.chase.store.by_predicate(predicate) if not f.has_nulls),
            key=repr,
        )
        if not facts:
            continue
        sample = facts[rng.randrange(len(facts))]
        position = rng.randrange(sample.arity)
        terms = [
            sample.terms[i] if i == position else Variable(f"Q{i}")
            for i in range(sample.arity)
        ]
        return Atom(predicate, terms)
    return None
