"""A mixed update/query front-end over the resident reasoner.

:class:`ReasoningService` turns a :class:`~repro.engine.incremental
.ResidentReasoner` into a concurrency-safe service loop: many point
queries are admitted concurrently against epoch-guarded
:class:`~repro.core.fact_store.StoreSnapshot` views (the snapshot/
write-batch protocol of the storage layer is the isolation primitive)
while upserts and retractions serialise through a writer lock.

On top of the lock the service keeps a shared, invalidation-aware answer
cache — the generalisation of the per-reasoner magic-spec LRU: each cache
entry stores the parsed **run spec** of a query (query atom, answer
predicates and its *predicate footprint*) together with the answers
computed against the current materialisation.  The footprint of a query
is the transitive body-predicate dependency closure of its answer
predicates over the optimized program; a write to predicate ``p``
invalidates exactly the entries whose footprint contains ``p`` (the spec
itself survives invalidation — re-asking the same query re-uses the
parsed atom and the precomputed footprint and only recomputes answers).

All blocking entry points have ``*_async`` twins that run them in a
worker thread via :func:`asyncio.to_thread`, so an event loop can admit
many concurrent point queries without stalling on the writer lock.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from ..core.atoms import Atom
from ..core.parser import parse_atom
from ..core.query import AnswerSet
from ..core.rules import Program
from .incremental import ResidentReasoner
from .reasoner import DatabaseLike, VadalogReasoner


class _ReadWriteLock:
    """A writer-preferring readers/writer lock (stdlib primitives only).

    Readers share the lock; a writer excludes everyone.  Arriving writers
    block *new* readers, so a steady query stream cannot starve updates —
    the property the mixed update/query loop needs.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            except BaseException:
                # A raising wait() (e.g. KeyboardInterrupt) must not leave
                # the waiting count elevated — readers block while it is
                # non-zero — and blocked peers need a wake-up to re-check.
                self._writers_waiting -= 1
                self._cond.notify_all()
                raise
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


def predicate_dependencies(program: Program) -> Dict[str, FrozenSet[str]]:
    """Transitive body-predicate dependency closure per head predicate.

    ``deps[p]`` contains ``p`` itself plus every predicate whose facts can
    (transitively) feed a rule deriving ``p`` — the invalidation footprint
    of a query on ``p``.  Predicates never derived map to ``{p}``.
    """
    direct: Dict[str, Set[str]] = {}
    for rule in program.rules:
        body_predicates = {atom.predicate for atom in rule.body}
        for head in rule.head:
            direct.setdefault(head.predicate, set()).update(body_predicates)
    # Closures are computed per strongly-connected component (iterative
    # Tarjan): every member of an SCC shares one closure — the component
    # itself plus the closures of its successor components.  Tarjan
    # completes components in reverse-topological order, so by the time a
    # component closes, every cross-edge successor already has its full
    # closure; same-component successors fall back to ``{succ}``, already
    # covered by the component set.  (A per-predicate memo cannot do this:
    # inside a cycle it caches whichever partial set the traversal order
    # happened to produce.)
    closure: Dict[str, FrozenSet[str]] = {}
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = 0

    def visit(root: str) -> None:
        nonlocal counter
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(direct.get(root, ())))]
        while work:
            node, successors = work[-1]
            descended = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(direct.get(succ, ()))))
                    descended = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                deps: Set[str] = set(component)
                for member in component:
                    for succ in direct.get(member, ()):
                        deps.update(closure.get(succ, (succ,)))
                shared = frozenset(deps)
                for member in component:
                    closure[member] = shared

    for predicate in direct:
        if predicate not in index:
            visit(predicate)
    return closure


class _CacheEntry:
    """One cached query: its parsed run spec plus (maybe stale) answers."""

    __slots__ = ("query_atom", "predicates", "footprint", "answers")

    def __init__(
        self,
        query_atom: Optional[Atom],
        predicates: Tuple[str, ...],
        footprint: FrozenSet[str],
    ) -> None:
        self.query_atom = query_atom
        self.predicates = predicates
        self.footprint = footprint
        self.answers: Optional[AnswerSet] = None


class ReasoningService:
    """Concurrent point queries and serialized updates over a warm store.

    Typical usage::

        from repro import ReasoningService

        service = ReasoningService(PROGRAM, database=INITIAL)
        service.upsert({"Edge": [("b", "c")]})
        service.query('Reach("a", Y)').tuples("Reach")
        service.stats()["cache_hits"]

    Or from an event loop::

        answers = await service.query_async('Reach("a", Y)')
    """

    def __init__(
        self,
        program,
        database: DatabaseLike = None,
        strategy: str = "warded",
        executor: str = "compiled",
        chase_config=None,
        base_path: Optional[str] = None,
        cache_size: int = 128,
    ) -> None:
        self._resident = (
            program
            if isinstance(program, ResidentReasoner)
            else ResidentReasoner(
                program,
                database=database,
                strategy=strategy,
                executor=executor,
                chase_config=chase_config,
                base_path=base_path,
            )
        )
        self._lock = _ReadWriteLock()
        self._cache_lock = threading.Lock()
        self._cache: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        self._cache_size = max(0, cache_size)
        self._deps = predicate_dependencies(self._resident.program)
        self._counters = {
            "queries": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "invalidations": 0,
            "upserts": 0,
            "retractions": 0,
        }

    # ------------------------------------------------------------------ updates
    def upsert(self, facts: DatabaseLike) -> int:
        """Serialized extensional upsert; invalidates dependent cached answers."""
        coerced = VadalogReasoner._database_facts(facts)
        with self._lock.write():
            added = self._resident.upsert(coerced)
            self._counters["upserts"] += 1
            self._invalidate({fact.predicate for fact in coerced})
        return added

    def retract(self, facts: DatabaseLike) -> int:
        """Serialized extensional retraction (DRed); invalidates dependents."""
        coerced = VadalogReasoner._database_facts(facts)
        with self._lock.write():
            removed = self._resident.retract(coerced)
            self._counters["retractions"] += 1
            self._invalidate({fact.predicate for fact in coerced})
        return removed

    def _invalidate(self, written_predicates: Set[str]) -> None:
        """Drop cached answers whose footprint intersects the written set."""
        if not written_predicates:
            return
        with self._cache_lock:
            for entry in self._cache.values():
                if entry.answers is not None and not written_predicates.isdisjoint(
                    entry.footprint
                ):
                    entry.answers = None
                    self._counters["invalidations"] += 1

    # ------------------------------------------------------------------ queries
    def query(
        self,
        query: Union[str, Atom, None] = None,
        outputs: Optional[Iterable[str]] = None,
        certain: bool = False,
    ) -> AnswerSet:
        """Answer a point query against a snapshot of the warm store.

        Cached answers are served without touching the store; otherwise the
        query runs under the reader lock against an epoch-guarded snapshot
        (settling any deferred maintenance under the writer lock first) and
        the result is cached against its predicate footprint.
        """
        self._counters["queries"] += 1
        key = self._cache_key(query, outputs, certain)
        entry = self._lookup(key)
        if entry is not None and entry.answers is not None:
            self._counters["cache_hits"] += 1
            return entry.answers
        self._counters["cache_misses"] += 1
        if entry is None:
            entry = self._build_entry(query, outputs)
        while True:
            if self._resident.needs_settle:
                with self._lock.write():
                    self._resident.ensure_settled()
            with self._lock.read():
                if self._resident.needs_settle:
                    continue  # a writer slipped in between the two locks
                epoch = self._resident.epoch
                answers = self._resident.query(
                    entry.query_atom,
                    outputs=entry.predicates,
                    certain=certain,
                    snapshot=self._resident.snapshot(),
                )
                break
        self._store_entry(key, entry, answers, epoch)
        return answers

    def _cache_key(self, query, outputs, certain) -> Tuple:
        query_text = str(query) if query is not None else None
        output_key = tuple(outputs) if outputs is not None else None
        return (query_text, output_key, certain)

    def _lookup(self, key: Tuple) -> Optional[_CacheEntry]:
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
            return entry

    def _build_entry(self, query, outputs) -> _CacheEntry:
        if query is not None:
            query_atom = parse_atom(query) if isinstance(query, str) else query
            predicates: Tuple[str, ...] = (query_atom.predicate,)
        else:
            query_atom = None
            predicates = tuple(
                outputs
                if outputs is not None
                else self._resident._reasoner._output_predicates(None)
            )
        footprint: Set[str] = set()
        for predicate in predicates:
            footprint.update(self._deps.get(predicate, frozenset((predicate,))))
        return _CacheEntry(query_atom, predicates, frozenset(footprint))

    def _store_entry(
        self,
        key: Tuple,
        entry: _CacheEntry,
        answers: AnswerSet,
        epoch: Tuple[int, int],
    ) -> None:
        """Cache ``answers`` unless a writer ran since they were computed.

        ``epoch`` was captured under the read lock; a writer bumps the
        resident epoch *before* invalidating the cache, so checking it
        under the cache lock closes the window where pre-write answers
        could be inserted after the writer's invalidation pass.
        """
        with self._cache_lock:
            if self._resident.epoch != epoch:
                return  # answers predate a write: serve them, never cache them
            entry.answers = answers
            if self._cache_size == 0:
                return
            self._cache[key] = entry
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------- async
    async def query_async(
        self,
        query: Union[str, Atom, None] = None,
        outputs: Optional[Iterable[str]] = None,
        certain: bool = False,
    ) -> AnswerSet:
        return await asyncio.to_thread(self.query, query, outputs, certain)

    async def upsert_async(self, facts: DatabaseLike) -> int:
        return await asyncio.to_thread(self.upsert, facts)

    async def retract_async(self, facts: DatabaseLike) -> int:
        return await asyncio.to_thread(self.retract, facts)

    # -------------------------------------------------------------- inspection
    @property
    def resident(self) -> ResidentReasoner:
        return self._resident

    def footprint(self, predicate: str) -> FrozenSet[str]:
        """The invalidation footprint of a query on ``predicate``."""
        return self._deps.get(predicate, frozenset((predicate,)))

    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self._counters)
        with self._cache_lock:
            data["cached_specs"] = len(self._cache)
            data["cached_answers"] = sum(
                1 for entry in self._cache.values() if entry.answers is not None
            )
        data["resident"] = self._resident.stats()
        return data


__all__ = ["ReasoningService", "predicate_dependencies"]
