"""Termination-strategy wrappers (Section 4, "Cycle management").

Every filter of the pipeline is wrapped by a component that, whenever the
filter pre-loads a candidate fact, issues a ``checkTermination`` message to
its local termination wrapper; if the check is negative the fact is
discarded because it would lead to non-termination.  The wrapper also owns
the fact/ground/summary structures of Section 3.4 — in this code base those
live inside the shared :class:`~repro.core.termination.TerminationStrategy`,
which the wrappers delegate to so that all filters see a consistent view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.forests import ChaseNode
from ..core.termination import TerminationStrategy


@dataclass
class WrapperStats:
    """Per-filter counters of termination checks."""

    checks: int = 0
    accepted: int = 0
    discarded: int = 0
    inputs_registered: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "checks": self.checks,
            "accepted": self.accepted,
            "discarded": self.discarded,
            "inputs_registered": self.inputs_registered,
        }


class TerminationWrapper:
    """Per-filter façade over the shared termination strategy.

    In the streaming pipeline every rule filter holds one of these and
    funnels each candidate fact through :meth:`check_termination` before the
    fact is emitted downstream; source filters route their extensional facts
    through :meth:`register_input` so the shared strategy sees a consistent
    view regardless of which filter touched the fact first.
    """

    def __init__(self, filter_name: str, strategy: TerminationStrategy) -> None:
        self.filter_name = filter_name
        self.strategy = strategy
        self.stats = WrapperStats()

    def check_termination(self, node: ChaseNode) -> bool:
        """``checkTermination(A(c))``: may the pre-loaded fact be consumed?"""
        self.stats.checks += 1
        admitted = self.strategy.admit(node)
        if admitted:
            self.stats.accepted += 1
        else:
            self.stats.discarded += 1
        return admitted

    def register_input(self, node: ChaseNode) -> None:
        """Route an extensional fact into the shared strategy (source filters)."""
        self.stats.inputs_registered += 1
        self.strategy.register_input(node)


class WrapperRegistry:
    """Creates and tracks one wrapper per filter, sharing a single strategy."""

    def __init__(self, strategy: TerminationStrategy) -> None:
        self.strategy = strategy
        self._wrappers: Dict[str, TerminationWrapper] = {}

    def wrapper_for(self, filter_name: str) -> TerminationWrapper:
        wrapper = self._wrappers.get(filter_name)
        if wrapper is None:
            wrapper = TerminationWrapper(filter_name, self.strategy)
            self._wrappers[filter_name] = wrapper
        return wrapper

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {name: wrapper.stats.as_dict() for name, wrapper in self._wrappers.items()}
