"""Sharded parallel chase evaluation (PR 4).

The warded chase decomposes cleanly into independent units of work (cf. the
streaming architecture of Baldazzi et al., arXiv:2311.12236): within one
semi-naive round, every rule's matches are a function of the *previous*
round's delta and the store as it stood at round start — nothing a worker
derives is visible to another worker until the next round.  The parallel
executor exploits exactly that:

1. **Partition** — each rule's delta is hash-partitioned into N shards on
   the seed atom's join key (:func:`repro.engine.plan.seed_partition_positions`
   picks the key from seed-slot selectivity; :func:`shard_of` hashes it with
   a process-stable hash so shard assignment does not depend on
   ``PYTHONHASHSEED``).
2. **Match** — a ``concurrent.futures`` worker pool evaluates every rule's
   compiled :class:`~repro.engine.plan.RuleJoinPlan` per shard against a
   read-only :class:`~repro.core.fact_store.StoreSnapshot`.  The default
   ``threads`` backend shares the snapshot zero-copy (true parallelism on
   free-threaded CPython; on GIL builds it degrades to compiled-equivalent
   throughput).  The ``fork`` backend forks one process pool per batched
   delta round: children inherit the snapshot copy-on-write and return
   matches as tuples of *store fact indexes*, so only small integers cross
   the process boundary.
3. **Admit** — a single-writer admission stage on the driver thread replays
   the matches in deterministic (rule, shard) order through the standard
   chase fire paths: semi-naive dedup, fresh-null generation, forest
   metadata and the termination strategy's ``admit`` all run exactly as in
   the sequential executors, staging derived facts in a
   :class:`~repro.core.fact_store.WriteBatch` that commits at round end.

Rules carrying a monotonic aggregation are *not* sharded: their aggregate
evaluators are stateful and enumeration-order sensitive, so they are
evaluated on the driver against the live store, in program order,
interleaved with the admission stage — the same totally-ordered stream the
``compiled`` executor produces.  This keeps ``executor="parallel"``
answer-identical to ``compiled``: ground answers exactly, null-carrying
facts up to labelled-null isomorphism.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import zlib
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.atoms import Fact
from ..core.chase import ChaseConfig, ChaseEngine, ChaseLimitError, ChaseResult
from ..core.fact_store import FactStore
from ..core.forests import ChaseNode
from ..core.limits import ExecutionStopped
from ..core.rules import Program, Rule
from ..core.terms import Constant, Null, NullFactory, Term
from ..core.termination import TerminationStrategy
from ..core.wardedness import ProgramAnalysis
from ..testing.faults import fault_point
from .joins import CompiledRuleExecutor
from .plan import seed_partition_positions

PARALLEL_BACKENDS = ("threads", "fork")

_HASH_MULT = 1000003  # the classic CPython tuple-hash multiplier


def stable_term_hash(term: Term) -> int:
    """A hash of a ground term that is stable across processes and runs.

    Python's built-in ``hash`` of strings is salted per process
    (``PYTHONHASHSEED``), so it cannot decide shard membership: fork workers
    and the driver must agree on the partition, and two runs of the same
    program should shard — and therefore fire — identically.  Constants are
    hashed by a CRC of a type-tagged canonical encoding; labelled nulls by
    their (stable) integer ident.
    """
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, str):
            data = b"s" + value.encode("utf-8", "surrogatepass")
        elif isinstance(value, bool):
            data = b"b1" if value else b"b0"
        elif isinstance(value, int):
            data = b"i" + str(value).encode("ascii")
        elif isinstance(value, float):
            data = b"f" + repr(value).encode("ascii")
        else:
            data = b"o" + repr(value).encode("utf-8", "backslashreplace")
        return zlib.crc32(data)
    if isinstance(term, Null):
        return 0x9E3779B1 ^ term.ident
    raise TypeError(f"cannot shard on non-ground term {term!r}")


def shard_of(fact: Fact, positions: Tuple[int, ...], n_shards: int) -> int:
    """The shard a delta fact belongs to, hashing the given key positions.

    ``positions == ()`` means "no join key": the whole row is hashed, which
    spreads seeds evenly.  A position beyond the fact's arity contributes
    nothing (such a fact cannot match the seed step anyway — the executor's
    positional arity check rejects it in whatever shard it lands).
    """
    if n_shards <= 1:
        return 0
    terms = fact.terms
    h = 0
    if positions:
        for position in positions:
            if position < len(terms):
                h = (h * _HASH_MULT) ^ stable_term_hash(terms[position])
    else:
        for term in terms:
            h = (h * _HASH_MULT) ^ stable_term_hash(term)
    return h % n_shards


def partition_facts(
    facts: Iterable[Fact], n_shards: int, positions: Tuple[int, ...] = ()
) -> List[List[Fact]]:
    """Hash-partition ``facts`` into ``n_shards`` buckets (order-preserving)."""
    shards: List[List[Fact]] = [[] for _ in range(max(1, n_shards))]
    for fact in facts:
        shards[shard_of(fact, positions, n_shards)].append(fact)
    return shards


class RoundPartitioner:
    """Per-round shard assignment of the delta, memoized per (predicate, key).

    Different rules seeding from the same predicate with the same partition
    key share one partition pass.  ``seed_counts`` accumulates per *use*
    (once per rule seed plan requesting a partition, even when the
    partition itself came from the cache): each worker matches its shard
    once per requesting seed plan, so the per-use sum is the per-shard
    seed-matching workload that the shard-balance statistics on
    :attr:`~repro.engine.reasoner.ReasoningResult.shard_balance` are meant
    to expose.
    """

    def __init__(self, store, n_shards: int) -> None:
        self._store = store
        self.n_shards = n_shards
        self._cache: Dict[Tuple[str, Tuple[int, ...]], List[List[Fact]]] = {}
        self.seed_counts: List[int] = [0] * n_shards

    def shards_for(
        self, predicate: str, positions: Tuple[int, ...]
    ) -> List[List[Fact]]:
        key = (predicate, positions)
        shards = self._cache.get(key)
        if shards is None:
            delta = self._store.delta_facts(predicate)
            if self.n_shards == 1:
                shards = [list(delta)]
            else:
                shards = partition_facts(delta, self.n_shards, positions)
            self._cache[key] = shards
        for index, bucket in enumerate(shards):
            self.seed_counts[index] += len(bucket)
        return shards


# -- matching workers --------------------------------------------------------
#
# A worker receives the round's match specs — one (plan, per-seed-plan shard
# lists) entry per parallel rule, in program order — plus the read-only
# snapshot, and returns one list of matches per entry.  Thread workers
# return the matched facts directly; fork workers return store fact indexes
# (small ints) so results pickle cheaply and resolve to the parent's own
# ``Fact`` objects on decode.

#: Round state inherited by fork workers, keyed by a per-round token so
#: concurrent parallel runs in one process never observe each other's
#: state: each run inserts its entry before creating its pool (children
#: fork with the whole map and look up their own token) and deletes only
#: that entry once its results are collected.
_FORK_STATE: Dict[
    int, Tuple[List[Tuple[object, List[List[List[Fact]]]]], object, int, bool]
] = {}
_FORK_TOKENS = itertools.count()


def _match_entries(
    entries: Sequence[Tuple[object, List[List[List[Fact]]]]],
    reader,
    round_index: int,
    shard: int,
    encode: bool,
    traced: bool = False,
) -> Tuple[List[List[Tuple]], Optional[Dict[str, object]]]:
    """Match every spec's shard against the snapshot; one result list per spec.

    With ``traced`` set, the second element is a plain-dict span record
    (:meth:`repro.obs.Span.to_record` shape) timing the shard: live tracer
    objects cannot cross a fork, so workers report through picklable records
    the driver re-parents with ``Tracer.adopt`` before admission.  The
    ``perf_counter`` timestamps stay comparable across fork children
    (CLOCK_MONOTONIC is process-global on Linux).
    """
    fault_point("parallel.worker", shard=shard, round=round_index)
    t_start = time.perf_counter() if traced else 0.0
    results: List[List[Tuple]] = []
    total_matches = 0
    for plan, seed_shards in entries:
        # A fresh executor per (worker, rule): the schedule is derived from
        # the shared immutable plan, while the stats counters stay private
        # to the worker — no cross-thread races on the hot loop.
        executor = CompiledRuleExecutor(plan)
        seed_lists = [shards[shard] for shards in seed_shards]
        matched: List[Tuple] = []
        if encode:
            index_of = reader.index_of_row
            for _slots, used in executor.matches(reader, round_index, seed_lists=seed_lists):
                matched.append(tuple(index_of(f.predicate, f.terms) for f in used))
        else:
            for _slots, used in executor.matches(reader, round_index, seed_lists=seed_lists):
                matched.append(tuple(used))
        total_matches += len(matched)
        results.append(matched)
    record: Optional[Dict[str, object]] = None
    if traced:
        record = {
            "kind": "shard-match",
            "name": f"shard:{shard}",
            "span_id": 0,
            "t_start": t_start,
            "t_end": time.perf_counter(),
            "status": "ok",
            "attrs": {"shard": shard, "round": round_index, "pid": os.getpid()},
            "counters": {"matches": total_matches, "rules": len(entries)},
        }
    return results, record


def _fork_match_shard(
    task: Tuple[int, int]
) -> Tuple[List[List[Tuple[int, ...]]], Optional[Dict[str, object]]]:
    """Fork-pool entry point: match one shard against the inherited snapshot."""
    token, shard = task
    entries, reader, round_index, traced = _FORK_STATE[token]
    return _match_entries(entries, reader, round_index, shard, encode=True, traced=traced)


class ParallelChaseEngine(ChaseEngine):
    """Sharded parallel round evaluation on top of the compiled chase.

    Overrides :meth:`ChaseEngine._evaluate_round` with the three-stage
    partition / match / admit protocol described in the module docstring;
    everything else — input loading, termination, violation checks, firing
    semantics — is inherited unchanged from the sequential engine.
    """

    def __init__(
        self,
        program: Program,
        database: Iterable[Fact] = (),
        strategy: Optional[TerminationStrategy] = None,
        analysis: Optional[ProgramAnalysis] = None,
        null_factory: Optional[NullFactory] = None,
        config: Optional[ChaseConfig] = None,
        join_plans: Optional[Dict[int, object]] = None,
        parallelism: Optional[int] = None,
        backend: str = "threads",
        worker_timeout: Optional[float] = None,
        tracer=None,
    ) -> None:
        if backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; use one of "
                f"{', '.join(PARALLEL_BACKENDS)}"
            )
        if backend == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError("the 'fork' backend is not available on this platform")
        if parallelism is None:
            parallelism = max(1, min(4, os.cpu_count() or 1))
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        super().__init__(
            program,
            database,
            strategy=strategy,
            analysis=analysis,
            null_factory=null_factory,
            config=config,
            executor="compiled",
            join_plans=join_plans,
            tracer=tracer,
        )
        self.executor = "parallel"
        self.parallelism = parallelism
        self.backend = backend
        #: Seconds to wait for one shard's match result before treating the
        #: worker as hung and triggering recovery; ``None`` waits forever.
        self.worker_timeout = worker_timeout
        self.shard_stats: List[Dict[str, object]] = []
        #: Per-run record of worker failures and how they were handled
        #: (``retry`` then ``sequential`` degradation), surfaced through
        #: ``extra_stats["parallel_recovery"]`` and ``ChaseResult.warnings``.
        self.recovery_log: List[Dict[str, object]] = []
        self._pending_warnings: List[str] = []
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._had_worker_timeout = False
        # Aggregate rules are enumeration-order sensitive (stateful
        # monotonic evaluators) and stay on the driver; everything else is
        # sharded.  Per parallel rule, precompute the partition key of each
        # seed plan and the slot-rebind recipe used to reconstruct the slot
        # array from a match's used facts.
        self._partition_positions: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
        self._rebind: Dict[int, Tuple[Tuple[int, Tuple[Tuple[int, int], ...]], ...]] = {}
        for rule in program.rules:
            if rule.aggregate is not None:
                continue
            plan = self._compiled[id(rule)].plan
            self._partition_positions[id(rule)] = tuple(
                seed_partition_positions(seed_plan) for seed_plan in plan.seed_plans
            )
            slot_of = plan.slot_of
            rebind = []
            for atom_index, atom in enumerate(rule.relational_body):
                writes = tuple(
                    (pos, slot_of[term])
                    for pos, term in enumerate(atom.terms)
                    if term in slot_of
                )
                rebind.append((atom_index, writes))
            self._rebind[id(rule)] = tuple(rebind)

    # ------------------------------------------------------------------ pools
    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.parallelism, thread_name_prefix="repro-chase"
            )
        return self._thread_pool

    def _shutdown_pool(self) -> None:
        if self._thread_pool is not None:
            # A thread that timed out may still be running its match; don't
            # block shutdown on it (threads cannot be killed cooperatively).
            self._thread_pool.shutdown(wait=not self._had_worker_timeout)
            self._thread_pool = None

    # -------------------------------------------------------------------- run
    def run(self) -> ChaseResult:
        self.shard_stats = []
        self.recovery_log = []
        self._pending_warnings = []
        try:
            result = super().run()
        finally:
            self._shutdown_pool()
        result.extra_stats["parallel_workers"] = self.parallelism
        result.extra_stats["parallel_backend"] = self.backend
        result.extra_stats["parallel_shard_balance"] = list(self.shard_stats)
        if self.recovery_log:
            result.extra_stats["parallel_recovery"] = list(self.recovery_log)
        return result

    def _record_recovery(self, round_index: int, shard: int, exc: BaseException, action: str) -> None:
        self.recovery_log.append(
            {
                "round": round_index,
                "shard": shard,
                "action": action,
                "error": f"{type(exc).__name__}: {exc}",
            }
        )
        tracer = self.tracer
        if tracer is not None:
            now = time.perf_counter()
            tracer.emit(
                "worker-recovery",
                f"recovery:shard{shard}",
                now,
                now,
                attrs={"shard": shard, "round": round_index, "action": action},
                status="error",
                error=f"{type(exc).__name__}: {exc}",
            )
            tracer.metrics.counter("parallel.recoveries").inc()
        what = (
            "retrying the shard"
            if action == "retry"
            else "degrading the shard to sequential execution on the driver"
        )
        self._pending_warnings.append(
            f"parallel worker for shard {shard} in round {round_index} failed "
            f"with {type(exc).__name__}: {exc}; {what}"
        )

    # ------------------------------------------------------------- round loop
    def _evaluate_round(
        self,
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        delta: List[ChaseNode],
        round_index: int,
        result: ChaseResult,
    ) -> List[ChaseNode]:
        tracer = self.tracer
        delta_facts = [node.fact for node in delta]
        store.begin_round(round_index, delta_facts)
        n_shards = self.parallelism

        # Stage 1: partition each parallel rule's delta by its seed join key.
        partition_span = None
        if tracer is not None:
            partition_span = tracer.begin(
                "partition", f"partition:{round_index}", round=round_index
            )
        partitioner = RoundPartitioner(store, n_shards)
        specs: List[Tuple[Rule, object, List[List[List[Fact]]]]] = []
        for rule in self.program.rules:
            if rule.aggregate is not None:
                continue
            plan = self._compiled[id(rule)].plan
            seed_shards = [
                partitioner.shards_for(seed_plan.seed.predicate, positions)
                for seed_plan, positions in zip(
                    plan.seed_plans, self._partition_positions[id(rule)]
                )
            ]
            specs.append((rule, plan, seed_shards))
        if tracer is not None:
            partition_span.counters["seed_facts"] = sum(partitioner.seed_counts)
            partition_span.counters["rules"] = len(specs)
            tracer.end(partition_span)

        # Stage 2: match every (rule, shard) on the worker pool against a
        # read-only snapshot of the store.
        per_shard, shard_records = self._match_phase(store, specs, round_index, n_shards)
        if tracer is not None and shard_records:
            # Merge the workers' picklable span records (fork-surviving)
            # under the current round span before admission begins.
            tracer.adopt(shard_records)
        if self._pending_warnings:
            result.warnings.extend(self._pending_warnings)
            self._pending_warnings.clear()

        # Stage 3: single-writer admission, in deterministic (rule, shard)
        # order, staging derived facts in a write batch.  Aggregate rules
        # are interleaved here, in program order, against the live store.
        admission_span = None
        if tracer is not None:
            admission_span = tracer.begin(
                "admission", f"admission:{round_index}", round=round_index
            )
        batch = store.write_batch()
        new_nodes: List[ChaseNode] = []
        match_counts = [0] * n_shards
        spec_index = 0
        try:
            for rule in self.program.rules:
                rule_span = None
                candidates_before = 0
                if tracer is not None:
                    label = rule.label or "rule"
                    rule_span = tracer.begin(
                        "rule", f"rule:{label}", rule=label, round=round_index
                    )
                    candidates_before = result.candidate_facts
                try:
                    if rule.aggregate is not None:
                        # Make staged facts visible to the live matcher first.
                        batch.apply()
                        produced = self._apply_rule(rule, store, node_of, {}, round_index, result)
                    else:
                        rule_matches = [per_shard[shard][spec_index] for shard in range(n_shards)]
                        spec_index += 1
                        produced = self._admit_rule(
                            rule, rule_matches, store, batch, node_of, round_index, result,
                            match_counts,
                        )
                except BaseException as exc:
                    if rule_span is not None:
                        tracer.end(rule_span, status="error", error=repr(exc))
                    raise
                if rule_span is not None:
                    fires = len(produced)
                    candidates = result.candidate_facts - candidates_before
                    rule_span.counters["fires"] = fires
                    rule_span.counters["candidates"] = candidates
                    rule_span.counters["deduped"] = candidates - fires
                    tracer.end(rule_span)
                new_nodes.extend(produced)
                if self.config.max_facts is not None and len(batch) > self.config.max_facts:
                    raise ChaseLimitError(
                        f"chase exceeded the configured maximum of {self.config.max_facts} facts"
                    )
        except ExecutionStopped:
            # Commit what was admitted before the stop: result.nodes and
            # node_of already reference the staged facts, so the store must
            # contain them for the partial result to be consistent.
            batch.apply()
            raise
        batch.apply()
        if tracer is not None:
            admission_span.counters["matches"] = sum(match_counts)
            admission_span.counters["admitted"] = len(new_nodes)
            tracer.end(admission_span)

        seed_total = sum(partitioner.seed_counts)
        busiest = max(match_counts) if match_counts else 0
        mean = (sum(match_counts) / n_shards) if n_shards else 0.0
        self.shard_stats.append(
            {
                "round": round_index,
                "workers": n_shards,
                "seed_facts": list(partitioner.seed_counts),
                "matches": list(match_counts),
                "seed_total": seed_total,
                "imbalance": round(busiest / mean, 3) if mean > 0 else None,
            }
        )
        return new_nodes

    # --------------------------------------------------------------- matching
    def _match_phase(
        self,
        store: FactStore,
        specs: List[Tuple[Rule, object, List[List[List[Fact]]]]],
        round_index: int,
        n_shards: int,
    ) -> Tuple[List[List[List[Tuple]]], List[Dict[str, object]]]:
        """Run the matching stage; returns per-shard, per-spec match lists
        plus the workers' span records (empty when untraced)."""
        traced = self.tracer is not None
        entries = [(plan, seed_shards) for _rule, plan, seed_shards in specs]
        if not entries:
            return [[] for _ in range(n_shards)], []
        snapshot = store.snapshot()
        if n_shards == 1:
            try:
                matched, record = _match_entries(
                    entries, snapshot, round_index, 0, encode=False, traced=traced
                )
            except (ExecutionStopped, ChaseLimitError):
                raise
            except Exception as exc:
                # Same one-retry discipline as pooled shards; a second
                # failure on the driver is a genuine error and propagates.
                self._record_recovery(round_index, 0, exc, "retry")
                matched, record = _match_entries(
                    entries, snapshot, round_index, 0, encode=False, traced=traced
                )
            return [matched], [record] if record is not None else []
        if self.backend == "fork":
            return self._match_phase_fork(entries, snapshot, round_index, n_shards, traced)
        pool = self._ensure_thread_pool()
        futures = [
            pool.submit(_match_entries, entries, snapshot, round_index, shard, False, traced)
            for shard in range(n_shards)
        ]
        results: List[List[List[Tuple]]] = []
        records: List[Dict[str, object]] = []
        for shard, future in enumerate(futures):
            try:
                matched, record = future.result(timeout=self.worker_timeout)
            except (ExecutionStopped, ChaseLimitError):
                raise
            except Exception as exc:
                if isinstance(exc, (TimeoutError, FuturesTimeoutError)):
                    self._had_worker_timeout = True
                matched, record = self._recover_thread_shard(
                    pool, entries, snapshot, round_index, shard, exc, traced
                )
            results.append(matched)
            if record is not None:
                records.append(record)
        return results, records

    def _recover_thread_shard(
        self, pool, entries, reader, round_index: int, shard: int, exc: Exception,
        traced: bool,
    ) -> Tuple[List[List[Tuple]], Optional[Dict[str, object]]]:
        """Retry a failed/hung thread shard once, then degrade to the driver."""
        self._record_recovery(round_index, shard, exc, "retry")
        try:
            future = pool.submit(
                _match_entries, entries, reader, round_index, shard, False, traced
            )
            return future.result(timeout=self.worker_timeout)
        except (ExecutionStopped, ChaseLimitError):
            raise
        except Exception as retry_exc:
            if isinstance(retry_exc, (TimeoutError, FuturesTimeoutError)):
                self._had_worker_timeout = True
            self._record_recovery(round_index, shard, retry_exc, "sequential")
            # Last resort: run the shard on the driver.  A failure here is a
            # genuine error (same code, same inputs) and propagates.
            return _match_entries(
                entries, reader, round_index, shard, encode=False, traced=traced
            )

    def _match_phase_fork(
        self, entries, snapshot, round_index: int, n_shards: int, traced: bool
    ) -> Tuple[List[List[List[Tuple]]], List[Dict[str, object]]]:
        """One forked process pool per batched delta round.

        Children inherit the snapshot (and everything reachable from it)
        copy-on-write at pool start, so no program state is pickled out;
        results come back as tuples of store fact indexes and are resolved
        against the parent's facts in :meth:`_admit_rule`.  The pool is torn
        down on *every* exit path — including KeyboardInterrupt and crashed
        workers — so no child process is ever orphaned.
        """
        context = multiprocessing.get_context("fork")
        token = next(_FORK_TOKENS)
        _FORK_STATE[token] = (entries, snapshot, round_index, traced)
        pool = ProcessPoolExecutor(max_workers=n_shards, mp_context=context)
        clean_exit = False
        try:
            futures = [
                pool.submit(_fork_match_shard, (token, shard))
                for shard in range(n_shards)
            ]
            results: List[List[List[Tuple]]] = []
            records: List[Dict[str, object]] = []
            for shard, future in enumerate(futures):
                try:
                    matched, record = future.result(timeout=self.worker_timeout)
                except (ExecutionStopped, ChaseLimitError):
                    raise
                except Exception as exc:
                    matched, record = self._recover_fork_shard(
                        pool, token, entries, snapshot, round_index, shard, exc, traced
                    )
                results.append(matched)
                if record is not None:
                    records.append(record)
            clean_exit = True
            return results, records
        finally:
            self._shutdown_fork_pool(pool, force=not clean_exit)
            _FORK_STATE.pop(token, None)

    def _recover_fork_shard(
        self, pool, token: int, entries, reader, round_index: int, shard: int,
        exc: Exception, traced: bool,
    ) -> Tuple[List[List[Tuple]], Optional[Dict[str, object]]]:
        """Retry a crashed fork shard once, then degrade to the driver.

        Driver-side degradation keeps ``encode=True`` (the parent resolves
        ``index_of_row`` against its own snapshot), so the admission stage's
        fact-index decoding stays uniform across recovered and healthy shards.
        """
        self._record_recovery(round_index, shard, exc, "retry")
        if not isinstance(exc, BrokenExecutor):
            try:
                return pool.submit(_fork_match_shard, (token, shard)).result(
                    timeout=self.worker_timeout
                )
            except (ExecutionStopped, ChaseLimitError):
                raise
            except Exception as retry_exc:
                exc = retry_exc
        self._record_recovery(round_index, shard, exc, "sequential")
        return _match_entries(entries, reader, round_index, shard, encode=True, traced=traced)

    @staticmethod
    def _shutdown_fork_pool(pool: ProcessPoolExecutor, force: bool) -> None:
        """Shut a per-round fork pool down without leaving orphaned children.

        The clean path is an ordinary blocking shutdown.  The forced path
        (exception/KeyboardInterrupt unwinding the round) cancels pending
        work, terminates any child still alive and reaps it, escalating to
        SIGKILL if a child ignores SIGTERM.
        """
        if not force:
            pool.shutdown(wait=True)
            return
        processes = list(getattr(pool, "_processes", {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        finally:
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for proc in processes:
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5.0)

    # -------------------------------------------------------------- admission
    def _admit_rule(
        self,
        rule: Rule,
        rule_matches: List[List[Tuple]],
        store: FactStore,
        batch,
        node_of: Dict[Fact, ChaseNode],
        round_index: int,
        result: ChaseResult,
        match_counts: List[int],
    ) -> List[ChaseNode]:
        """Fire one rule's collected matches through the standard chase paths."""
        analysis = self._rule_analyses[id(rule)]
        plan = self._compiled[id(rule)].plan
        rebind = self._rebind[id(rule)]
        n_slots = len(plan.variables)
        decode = self.backend == "fork" and self.parallelism > 1
        fact_at = store.fact_at
        produced: List[ChaseNode] = []
        simple = plan.simple_fire
        residual = plan.residual_conditions
        variables = plan.variables
        governor = self._governor
        tick = governor.tick if governor is not None else None
        for shard, matches in enumerate(rule_matches):
            match_counts[shard] += len(matches)
            for used in matches:
                if tick is not None:
                    tick()
                if decode:
                    used_facts = [fact_at(index) for index in used]
                else:
                    used_facts = list(used)
                slots: List[Optional[Term]] = [None] * n_slots
                for atom_index, writes in rebind:
                    terms = used_facts[atom_index].terms
                    for pos, slot in writes:
                        slots[slot] = terms[pos]
                if simple:
                    self._fire_compiled(
                        rule, analysis, plan, slots, used_facts,
                        store, node_of, round_index, result, produced,
                        sink=batch,
                    )
                    continue
                binding = {variables[i]: slots[i] for i in range(n_slots)}
                if residual and not all(c.holds(binding) for c in residual):
                    continue
                if not self._dom_guards_hold(rule, binding, batch):
                    continue
                produced.extend(
                    self._fire(
                        rule, analysis, binding, used_facts,
                        store, node_of, round_index, result,
                        sink=batch,
                    )
                )
        return produced
