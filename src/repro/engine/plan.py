"""Reasoning access plans (Section 4, "Pipeline architecture").

The logic compiler turns a program into a *reasoning access plan*: a logic
pipeline where every rule corresponds to a filter (node) and there is a pipe
(edge) from filter ``a`` to filter ``b`` when a body atom of ``b`` unifies
with the head of ``a``.  Source filters feed extensional predicates into the
pipeline and sink filters collect the output predicates.

The plan is used by the reasoner to

* order rule applications (a topological order of the condensation of the
  plan graph, so producers run before consumers and mutually recursive rules
  stay grouped — the round-robin execution of the scheduler then alternates
  within each group);
* detect the *runtime cycles* that the execution model has to manage
  (Section 4, "Cycle management");
* power ``explain()``-style introspection in the public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.rules import Program, Rule


@dataclass(frozen=True)
class PlanNode:
    """A filter of the reasoning access plan."""

    name: str
    kind: str  # "source", "rule" or "sink"
    rule_label: str = ""
    predicate: str = ""

    def __str__(self) -> str:
        detail = self.rule_label or self.predicate
        return f"{self.kind}:{detail or self.name}"


@dataclass
class ReasoningAccessPlan:
    """The compiled pipeline: nodes, pipes and derived structural information."""

    nodes: List[PlanNode] = field(default_factory=list)
    edges: List[Tuple[str, str]] = field(default_factory=list)
    node_by_name: Dict[str, PlanNode] = field(default_factory=dict)

    def add_node(self, node: PlanNode) -> None:
        if node.name in self.node_by_name:
            return
        self.nodes.append(node)
        self.node_by_name[node.name] = node

    def add_edge(self, source: str, target: str) -> None:
        edge = (source, target)
        if edge not in self.edges:
            self.edges.append(edge)

    # -- structure ---------------------------------------------------------------
    def successors(self, name: str) -> List[str]:
        return [t for s, t in self.edges if s == name]

    def predecessors(self, name: str) -> List[str]:
        return [s for s, t in self.edges if t == name]

    def sources(self) -> List[PlanNode]:
        return [n for n in self.nodes if n.kind == "source"]

    def sinks(self) -> List[PlanNode]:
        return [n for n in self.nodes if n.kind == "sink"]

    def rule_nodes(self) -> List[PlanNode]:
        return [n for n in self.nodes if n.kind == "rule"]

    def strongly_connected_components(self) -> List[List[str]]:
        """Tarjan's algorithm; components are returned in reverse topological order."""
        index_counter = [0]
        stack: List[str] = []
        lowlinks: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        components: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = index_counter[0]
            lowlinks[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for successor in self.successors(node):
                if successor not in index:
                    strongconnect(successor)
                    lowlinks[node] = min(lowlinks[node], lowlinks[successor])
                elif successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], index[successor])
            if lowlinks[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

        for node in self.node_by_name:
            if node not in index:
                strongconnect(node)
        return components

    def recursive_components(self) -> List[List[str]]:
        """Components containing a cycle (≥ 2 nodes, or a self-loop)."""
        recursive = []
        for component in self.strongly_connected_components():
            if len(component) > 1:
                recursive.append(component)
            elif (component[0], component[0]) in self.edges:
                recursive.append(component)
        return recursive

    def has_cycles(self) -> bool:
        return bool(self.recursive_components())

    def topological_rule_order(self, program: Program) -> List[Rule]:
        """Rules ordered so producers come before consumers where possible.

        The condensation of the plan graph is acyclic; rules are emitted
        component by component in topological order, preserving the original
        program order inside each (possibly recursive) component.
        """
        components = self.strongly_connected_components()  # reverse topological
        component_of: Dict[str, int] = {}
        for position, component in enumerate(components):
            for name in component:
                component_of[name] = position
        rules_by_label = {rule.label: rule for rule in program.rules}
        labelled_nodes = [n for n in self.nodes if n.kind == "rule"]
        ordered_nodes = sorted(
            labelled_nodes,
            key=lambda n: (-component_of.get(n.name, 0), program.rules.index(rules_by_label[n.rule_label])),
        )
        return [rules_by_label[n.rule_label] for n in ordered_nodes if n.rule_label in rules_by_label]

    def describe(self) -> str:
        """Human-readable description used by ``VadalogReasoner.explain``."""
        lines = ["Reasoning access plan:"]
        for node in self.nodes:
            successors = ", ".join(self.successors(node.name)) or "-"
            lines.append(f"  {node} -> {successors}")
        recursive = self.recursive_components()
        if recursive:
            lines.append(f"  recursive components: {len(recursive)}")
        return "\n".join(lines)


def compile_plan(program: Program) -> ReasoningAccessPlan:
    """Compile a program into a reasoning access plan (the logic compiler)."""
    plan = ReasoningAccessPlan()
    edb = program.edb_predicates() | set(program.inputs)
    outputs = program.output_predicates()

    for predicate in sorted(edb):
        plan.add_node(PlanNode(name=f"source:{predicate}", kind="source", predicate=predicate))
    for rule in program.rules:
        plan.add_node(PlanNode(name=f"rule:{rule.label}", kind="rule", rule_label=rule.label))
    for predicate in sorted(outputs):
        plan.add_node(PlanNode(name=f"sink:{predicate}", kind="sink", predicate=predicate))

    producers: Dict[str, List[str]] = {}
    for predicate in edb:
        producers.setdefault(predicate, []).append(f"source:{predicate}")
    for rule in program.rules:
        for predicate in rule.head_predicate_names():
            producers.setdefault(predicate, []).append(f"rule:{rule.label}")

    for rule in program.rules:
        consumer = f"rule:{rule.label}"
        for predicate in rule.body_predicate_names():
            for producer in producers.get(predicate, []):
                plan.add_edge(producer, consumer)
    for predicate in outputs:
        sink = f"sink:{predicate}"
        for producer in producers.get(predicate, []):
            plan.add_edge(producer, sink)
    return plan
