"""Reasoning access plans (Section 4, "Pipeline architecture").

The logic compiler turns a program into a *reasoning access plan*: a logic
pipeline where every rule corresponds to a filter (node) and there is a pipe
(edge) from filter ``a`` to filter ``b`` when a body atom of ``b`` unifies
with the head of ``a``.  Source filters feed extensional predicates into the
pipeline and sink filters collect the output predicates.

The plan is used by the reasoner to

* order rule applications (a topological order of the condensation of the
  plan graph, so producers run before consumers and mutually recursive rules
  stay grouped — the round-robin execution of the scheduler then alternates
  within each group);
* detect the *runtime cycles* that the execution model has to manage
  (Section 4, "Cycle management");
* power ``explain()``-style introspection in the public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.conditions import Comparison
from ..core.rules import Program, Rule
from ..core.terms import Term, Variable


@dataclass(frozen=True)
class PlanNode:
    """A filter of the reasoning access plan."""

    name: str
    kind: str  # "source", "rule" or "sink"
    rule_label: str = ""
    predicate: str = ""

    def __str__(self) -> str:
        detail = self.rule_label or self.predicate
        return f"{self.kind}:{detail or self.name}"


@dataclass
class ReasoningAccessPlan:
    """The compiled pipeline: nodes, pipes and derived structural information."""

    nodes: List[PlanNode] = field(default_factory=list)
    edges: List[Tuple[str, str]] = field(default_factory=list)
    node_by_name: Dict[str, PlanNode] = field(default_factory=dict)

    def add_node(self, node: PlanNode) -> None:
        if node.name in self.node_by_name:
            return
        self.nodes.append(node)
        self.node_by_name[node.name] = node

    def add_edge(self, source: str, target: str) -> None:
        edge = (source, target)
        if edge not in self.edges:
            self.edges.append(edge)

    # -- structure ---------------------------------------------------------------
    def successors(self, name: str) -> List[str]:
        return [t for s, t in self.edges if s == name]

    def predecessors(self, name: str) -> List[str]:
        return [s for s, t in self.edges if t == name]

    def sources(self) -> List[PlanNode]:
        return [n for n in self.nodes if n.kind == "source"]

    def sinks(self) -> List[PlanNode]:
        return [n for n in self.nodes if n.kind == "sink"]

    def rule_nodes(self) -> List[PlanNode]:
        return [n for n in self.nodes if n.kind == "rule"]

    def strongly_connected_components(self) -> List[List[str]]:
        """Tarjan's algorithm; components are returned in reverse topological order."""
        index_counter = [0]
        stack: List[str] = []
        lowlinks: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        components: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = index_counter[0]
            lowlinks[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for successor in self.successors(node):
                if successor not in index:
                    strongconnect(successor)
                    lowlinks[node] = min(lowlinks[node], lowlinks[successor])
                elif successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], index[successor])
            if lowlinks[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

        for node in self.node_by_name:
            if node not in index:
                strongconnect(node)
        return components

    def recursive_components(self) -> List[List[str]]:
        """Components containing a cycle (≥ 2 nodes, or a self-loop)."""
        recursive = []
        for component in self.strongly_connected_components():
            if len(component) > 1:
                recursive.append(component)
            elif (component[0], component[0]) in self.edges:
                recursive.append(component)
        return recursive

    def has_cycles(self) -> bool:
        return bool(self.recursive_components())

    def topological_rule_order(self, program: Program) -> List[Rule]:
        """Rules ordered so producers come before consumers where possible.

        The condensation of the plan graph is acyclic; rules are emitted
        component by component in topological order, preserving the original
        program order inside each (possibly recursive) component.
        """
        components = self.strongly_connected_components()  # reverse topological
        component_of: Dict[str, int] = {}
        for position, component in enumerate(components):
            for name in component:
                component_of[name] = position
        rules_by_label = {rule.label: rule for rule in program.rules}
        labelled_nodes = [n for n in self.nodes if n.kind == "rule"]
        ordered_nodes = sorted(
            labelled_nodes,
            key=lambda n: (-component_of.get(n.name, 0), program.rules.index(rules_by_label[n.rule_label])),
        )
        return [rules_by_label[n.rule_label] for n in ordered_nodes if n.rule_label in rules_by_label]

    def describe(self) -> str:
        """Human-readable description used by ``VadalogReasoner.explain``."""
        lines = ["Reasoning access plan:"]
        for node in self.nodes:
            successors = ", ".join(self.successors(node.name)) or "-"
            lines.append(f"  {node} -> {successors}")
        recursive = self.recursive_components()
        if recursive:
            lines.append(f"  recursive components: {len(recursive)}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Per-rule join plans (the compiled reasoning access path of Section 4)
# --------------------------------------------------------------------------
#
# A rule is compiled once, at reasoner construction, into a
# :class:`RuleJoinPlan`: body variables are numbered into *slots* and every
# body atom becomes an :class:`AtomStep` — a purely positional recipe saying,
# for each candidate fact, which positions must equal a constant, which must
# equal an already-filled slot (the join key), which must repeat a position of
# the same fact, and which positions fill new slots.  At runtime the executor
# (:mod:`repro.engine.joins`) walks the steps with a single mutable slot
# array: no ``dict`` copies, no ``atom.substitute``/``atom.match`` object
# churn per candidate fact.
#
# Semi-naive evaluation needs one decomposition per *seed* atom (the atom
# matched against the previous round's delta), so a plan holds one
# :class:`SeedJoinPlan` per body atom; within each, the remaining atoms are
# greedily selectivity-ordered (most bound positions first) unless the rule
# carries a stateful monotonic aggregation, whose value stream is
# enumeration-order sensitive — those keep the textual body order so the
# compiled and interpreted paths remain fact-for-fact comparable.


@dataclass(frozen=True)
class CompiledCondition:
    """A body comparison plus the slots feeding its variables."""

    comparison: Comparison
    var_slots: Tuple[Tuple[Variable, int], ...]

    def holds(self, slots: List[Optional[Term]]) -> bool:
        return self.comparison.holds({v: slots[i] for v, i in self.var_slots})


@dataclass(frozen=True)
class AtomStep:
    """One probe step of a compiled join: positional checks and slot writes."""

    atom_index: int  # index in ``rule.relational_body`` (textual order)
    predicate: str
    arity: int
    const_checks: Tuple[Tuple[int, Term], ...]  # fact[pos] == ground term
    bound_checks: Tuple[Tuple[int, int], ...]  # fact[pos] == slots[slot] (join key)
    same_checks: Tuple[Tuple[int, int], ...]  # fact[pos] == fact[pos0] (repeated var)
    writes: Tuple[Tuple[int, int], ...]  # slots[slot] = fact[pos]
    conditions: Tuple[CompiledCondition, ...]  # comparisons decidable after this step


@dataclass(frozen=True)
class SeedJoinPlan:
    """One semi-naive decomposition: a delta-seeded step plus ordered probes."""

    seed: AtomStep
    probes: Tuple[AtomStep, ...]


# Head-template entry kinds: how each head position is filled at fire time.
HEAD_GROUND = 0  # payload: the ground term itself
HEAD_SLOT = 1  # payload: body slot index
HEAD_NULL = 2  # payload: index into the per-firing fresh-null tuple


@dataclass(frozen=True)
class RuleJoinPlan:
    """Everything the executor needs to evaluate one rule's body."""

    rule: Rule
    variables: Tuple[Variable, ...]  # slot order: slot i holds variables[i]
    slot_of: Mapping[Variable, int]
    seed_plans: Tuple[SeedJoinPlan, ...]
    residual_conditions: Tuple[Comparison, ...]  # not decidable from slots alone
    body_length: int
    existentials: Tuple[Variable, ...]  # precomputed rule.existential_variables()
    # One (predicate, entries) template per head atom; None when the rule
    # needs the generic dict-binding fire path (assignments, aggregation,
    # post conditions, Dom guards or residual conditions).
    head_templates: Optional[Tuple[Tuple[str, Tuple[Tuple[int, object], ...]], ...]]

    @property
    def simple_fire(self) -> bool:
        """True when heads can be instantiated straight from the slot array."""
        return self.head_templates is not None


def _compile_step(
    atom,
    atom_index: int,
    slot_of: Mapping[Variable, int],
    bound_slots: Set[int],
) -> Tuple[AtomStep, Set[int]]:
    """Compile one atom given the slots already bound; returns the new bound set."""
    const_checks: List[Tuple[int, Term]] = []
    bound_checks: List[Tuple[int, int]] = []
    same_checks: List[Tuple[int, int]] = []
    writes: List[Tuple[int, int]] = []
    first_occurrence: Dict[Variable, int] = {}
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            slot = slot_of[term]
            if slot in bound_slots:
                bound_checks.append((pos, slot))
            elif term in first_occurrence:
                same_checks.append((pos, first_occurrence[term]))
            else:
                first_occurrence[term] = pos
                writes.append((pos, slot))
        else:
            const_checks.append((pos, term))
    step = AtomStep(
        atom_index=atom_index,
        predicate=atom.predicate,
        arity=atom.arity,
        const_checks=tuple(const_checks),
        bound_checks=tuple(bound_checks),
        same_checks=tuple(same_checks),
        writes=tuple(writes),
        conditions=(),
    )
    return step, bound_slots | {slot for _, slot in writes}


def _selectivity_order(
    atoms: List[Tuple[int, object]],
    slot_of: Mapping[Variable, int],
    bound_slots: Set[int],
) -> List[Tuple[int, object]]:
    """Greedy join order: prefer atoms with the most bound positions.

    Ties break towards fewer fresh variables (smaller intermediate results)
    and then textual order, keeping the order deterministic.
    """
    remaining = list(atoms)
    ordered: List[Tuple[int, object]] = []
    bound = set(bound_slots)
    while remaining:

        def score(entry: Tuple[int, object]) -> Tuple[int, int, int]:
            index, atom = entry
            bound_positions = 0
            fresh = set()
            for term in atom.terms:
                if isinstance(term, Variable):
                    slot = slot_of[term]
                    if slot in bound:
                        bound_positions += 1
                    else:
                        fresh.add(slot)
                else:
                    bound_positions += 1
            return (-bound_positions, len(fresh), index)

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        for term in best[1].terms:
            if isinstance(term, Variable):
                bound.add(slot_of[term])
    return ordered


def _attach_conditions(
    steps: List[AtomStep],
    conditions: Sequence[Comparison],
    slot_of: Mapping[Variable, int],
) -> List[AtomStep]:
    """Push each comparison down to the earliest step that binds its variables."""
    from dataclasses import replace

    pending = list(conditions)
    bound: Set[int] = set()
    attached: List[AtomStep] = []
    for step in steps:
        bound |= {slot for _, slot in step.writes}
        ready: List[CompiledCondition] = []
        for condition in list(pending):
            needed = condition.variables()
            if all(v in slot_of and slot_of[v] in bound for v in needed):
                pending.remove(condition)
                ready.append(
                    CompiledCondition(condition, tuple((v, slot_of[v]) for v in needed))
                )
        attached.append(replace(step, conditions=tuple(ready)) if ready else step)
    return attached


def compile_rule_join_plan(rule: Rule) -> RuleJoinPlan:
    """Compile a rule into its slot-machine join plan (done once per rule)."""
    body = rule.relational_body
    slot_of: Dict[Variable, int] = {}
    for atom in body:
        for variable in atom.variables():
            slot_of.setdefault(variable, len(slot_of))
    variables = tuple(sorted(slot_of, key=slot_of.get))

    # Conditions mentioning assignment/aggregate variables are evaluated by
    # the chase after those values are computed; conditions over slots are
    # pushed into the join; the rest (e.g. over Dom-guard-only variables)
    # stay residual and are checked on the final binding, like the
    # interpreted path does.
    body_vars = set(rule.body_variables())
    pre_conditions = [
        c for c in rule.conditions if all(v in body_vars for v in c.variables())
    ]
    pushable = [c for c in pre_conditions if all(v in slot_of for v in c.variables())]
    residual = tuple(c for c in pre_conditions if c not in pushable)

    # Monotonic aggregations are stateful: the order in which matches are
    # enumerated determines the intermediate aggregate values, so reordering
    # the body would change the derived fact stream.  Keep textual order.
    reorder = rule.aggregate is None

    seed_plans: List[SeedJoinPlan] = []
    for seed_index in range(len(body)):
        seed_step, bound = _compile_step(body[seed_index], seed_index, slot_of, set())
        others = [(i, a) for i, a in enumerate(body) if i != seed_index]
        if reorder:
            others = _selectivity_order(others, slot_of, bound)
        probe_steps: List[AtomStep] = []
        for atom_index, atom in others:
            step, bound = _compile_step(atom, atom_index, slot_of, bound)
            probe_steps.append(step)
        steps = _attach_conditions([seed_step] + probe_steps, pushable, slot_of)
        seed_plans.append(SeedJoinPlan(seed=steps[0], probes=tuple(steps[1:])))

    existentials = rule.existential_variables()

    # Rules whose firing needs no computed values and no final guard checks
    # get positional head templates so the executor can instantiate head
    # facts straight from the slot array, without a dict binding.
    head_templates = None
    post_conditions = [c for c in rule.conditions if c not in pre_conditions]
    if (
        not rule.assignments
        and rule.aggregate is None
        and not post_conditions
        and not residual
        and not rule.dom_guards
    ):
        null_index = {v: i for i, v in enumerate(existentials)}
        templates = []
        for head_atom in rule.head:
            entries: List[Tuple[int, object]] = []
            for term in head_atom.terms:
                if isinstance(term, Variable):
                    if term in slot_of:
                        entries.append((HEAD_SLOT, slot_of[term]))
                    elif term in null_index:
                        entries.append((HEAD_NULL, null_index[term]))
                    else:
                        # A head variable that is neither bound nor
                        # existential would make the rule unsafe; let the
                        # generic path raise the usual error.
                        templates = None
                        break
                else:
                    entries.append((HEAD_GROUND, term))
            if templates is None:
                break
            templates.append((head_atom.predicate, tuple(entries)))
        if templates is not None:
            head_templates = tuple(templates)

    return RuleJoinPlan(
        rule=rule,
        variables=variables,
        slot_of=slot_of,
        seed_plans=tuple(seed_plans),
        residual_conditions=residual,
        body_length=len(body),
        existentials=existentials,
        head_templates=head_templates,
    )


def compile_join_plans(program: Program) -> Dict[int, RuleJoinPlan]:
    """Compile every rule of a program, keyed by rule identity."""
    return {id(rule): compile_rule_join_plan(rule) for rule in program.rules}


def seed_partition_positions(seed_plan: SeedJoinPlan) -> Tuple[int, ...]:
    """The hash-partitioning key of a seed step, chosen by slot selectivity.

    The parallel executor shards each rule's delta by hashing seed-atom
    positions (:mod:`repro.engine.partition`).  The chooser picks the seed
    position whose slot is consumed *earliest* by the subsequent probe steps
    — since probes are selectivity-ordered, the first probe's join key is
    the most selective binding the seed provides, so hashing on it keeps the
    facts of one join neighbourhood in one shard (ties break towards the
    slot used by more probes, then the lower position, keeping the choice
    deterministic).  Seeds none of whose slots feed a probe (single-atom
    bodies, cross products) return ``()``: callers hash the whole row,
    which spreads the delta evenly.
    """
    seed = seed_plan.seed
    slot_position: Dict[int, int] = {}
    for pos, slot in seed.writes:
        slot_position.setdefault(slot, pos)
    scores: Dict[int, Tuple[int, int]] = {}  # slot -> (first probe index, uses)
    for probe_index, probe in enumerate(seed_plan.probes):
        for _pos, slot in probe.bound_checks:
            if slot in slot_position:
                first, uses = scores.get(slot, (probe_index, 0))
                scores[slot] = (min(first, probe_index), uses + 1)
    if not scores:
        return ()
    best = min(
        scores,
        key=lambda slot: (scores[slot][0], -scores[slot][1], slot_position[slot]),
    )
    return (slot_position[best],)


# --------------------------------------------------------------------------
# Source pushdown compilation (selection pushed into ``@bind`` datasources)
# --------------------------------------------------------------------------


def _occurrence_constraints(rule: Rule, atom) -> FrozenSet[Tuple[int, str, object]]:
    """Constraints every source row must satisfy to be usable at ``atom``.

    Two constraint shapes are extracted, matching what the join plan checks
    positionally anyway: a ground term at position ``p`` (``fact[p] ==
    constant``) and a body comparison between a variable bound at ``p`` and
    a literal.  A row failing either can never contribute a match *at this
    occurrence* — the rule's join would reject it.
    """
    from ..core.expressions import Literal, VariableRef
    from ..core.terms import Constant, Variable

    constraints: Set[Tuple[int, str, object]] = set()
    var_position: Dict[Variable, int] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            # With a repeated variable any single position is sound: equal
            # positions carry the same value, unequal ones fail the join.
            var_position.setdefault(term, position)
        elif isinstance(term, Constant):
            constraints.add((position, "==", term.value))
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    for condition in rule.conditions:
        left, right = condition.left, condition.right
        if isinstance(left, VariableRef) and isinstance(right, Literal):
            variable, op, value = left.variable, condition.op, right.value
        elif isinstance(left, Literal) and isinstance(right, VariableRef):
            variable, value = right.variable, left.value
            op = flipped.get(condition.op, condition.op)
        else:
            continue
        op = {"=": "==", "<>": "!="}.get(op, op)
        if variable in var_position and isinstance(value, (bool, int, float, str)):
            constraints.add((var_position[variable], op, value))
    return frozenset(constraints)


def compile_source_pushdowns(
    program: Program,
    predicates: Sequence[str],
    requested_outputs: Sequence[str] = (),
):
    """Selections safe to evaluate inside the ``@bind`` sources of a program.

    For each candidate predicate the compiler intersects the constraint sets
    of **every** occurrence of that predicate — body atoms of rules plus the
    bodies of negative constraints and EGDs (which contribute empty sets and
    therefore veto pushdown).  A row filtered out by the intersection is
    unusable at every occurrence, so skipping it at the source cannot change
    any answer.  Predicates that are also rule heads or answer predicates
    get no pushdown (their source rows are answers or mix with derived
    facts) — ``requested_outputs`` carries the per-run ``reason(outputs=…)``
    selection, which may name predicates beyond the program's declared
    ``@output`` set — and programs using ``Dom`` active-domain guards
    disable pushdown entirely, since removing a row would shrink the active
    domain itself.

    Returns a mapping predicate → :class:`~repro.storage.datasources.Pushdown`
    containing only predicates with a non-empty pushdown.
    """
    from ..storage.datasources import Pushdown

    if any(rule.dom_guards for rule in program.rules):
        return {}
    idb = program.idb_predicates()
    outputs = program.output_predicates() | set(requested_outputs)
    pushdowns: Dict[str, Pushdown] = {}
    for predicate in predicates:
        if predicate in idb or predicate in outputs:
            continue
        occurrences: List[FrozenSet[Tuple[int, str, object]]] = []
        for rule in program.rules:
            for atom in rule.relational_body:
                if atom.predicate == predicate:
                    occurrences.append(_occurrence_constraints(rule, atom))
        for checked in list(program.constraints) + list(program.egds):
            if any(atom.predicate == predicate for atom in checked.body):
                occurrences.append(frozenset())
        if not occurrences:
            continue
        common = frozenset.intersection(*occurrences)
        if common:
            pushdowns[predicate] = Pushdown(tuple(sorted(common, key=repr)))
    return pushdowns


def pushdown_constraint_spec(
    program: Program,
    predicates: Sequence[str],
    requested_outputs: Sequence[str] = (),
) -> Dict[str, Tuple[Tuple[int, str, object], ...]]:
    """Serialisable view of :func:`compile_source_pushdowns`.

    Returns predicate → sorted ``(position, op, value)`` triples — the raw
    constraint form a :class:`~repro.storage.datasources.Pushdown` wraps.
    The translation-validation encoder (:mod:`repro.verify.encode`) uses
    this plain-data shape to filter the symbolic instance exactly the way
    the sources would filter concrete rows, without holding a live
    ``Pushdown`` inside the formula system.
    """
    return {
        predicate: pushdown.constraints
        for predicate, pushdown in compile_source_pushdowns(
            program, predicates, requested_outputs
        ).items()
    }


def backward_slice(program: Program, targets: Sequence[str]) -> Tuple[Set[str], List[Rule]]:
    """Query-driven relevance pruning: the rules that can reach ``targets``.

    Returns the backward closure over the head→body dependency relation: a
    rule is *relevant* when one of its head predicates is a target or feeds
    (transitively) the body of a relevant rule; every body predicate of a
    relevant rule becomes relevant in turn.  The streaming pipeline only
    instantiates filters for relevant rules and sources for relevant
    extensional predicates, so reasoning work is bounded by what the
    requested output predicates can actually observe.

    The returned rule list preserves the program (round-robin) order.
    """
    relevant: Set[str] = set(targets)
    included: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            if id(rule) in included:
                continue
            if any(head in relevant for head in rule.head_predicate_names()):
                included.add(id(rule))
                changed = True
                for atom in rule.relational_body:
                    if atom.predicate not in relevant:
                        relevant.add(atom.predicate)
    rules = [rule for rule in program.rules if id(rule) in included]
    return relevant, rules


def compile_plan(program: Program) -> ReasoningAccessPlan:
    """Compile a program into a reasoning access plan (the logic compiler)."""
    plan = ReasoningAccessPlan()
    edb = program.edb_predicates() | set(program.inputs)
    outputs = program.output_predicates()

    for predicate in sorted(edb):
        plan.add_node(PlanNode(name=f"source:{predicate}", kind="source", predicate=predicate))
    for rule in program.rules:
        plan.add_node(PlanNode(name=f"rule:{rule.label}", kind="rule", rule_label=rule.label))
    for predicate in sorted(outputs):
        plan.add_node(PlanNode(name=f"sink:{predicate}", kind="sink", predicate=predicate))

    producers: Dict[str, List[str]] = {}
    for predicate in edb:
        producers.setdefault(predicate, []).append(f"source:{predicate}")
    for rule in program.rules:
        for predicate in rule.head_predicate_names():
            producers.setdefault(predicate, []).append(f"rule:{rule.label}")

    for rule in program.rules:
        consumer = f"rule:{rule.label}"
        for predicate in rule.body_predicate_names():
            for producer in producers.get(predicate, []):
                plan.add_edge(producer, consumer)
    for predicate in outputs:
        sink = f"sink:{predicate}"
        for producer in producers.get(predicate, []):
            plan.add_edge(producer, sink)
    return plan
