"""Fragmented buffer cache (Section 4, "Memory management").

The Vadalog system processes facts fully in memory; the intermediate facts
produced by each filter live in a *buffer segment* dedicated to that filter.
Segments paginate their content and evict pages (LRU or LFU) to a swap area
when a memory budget is exceeded.  This module reproduces that scheme at the
Python level: eviction moves pages to a ``swap`` dictionary (simulating
secondary storage) and counters expose hits, misses, evictions, swap traffic
and resident-page peaks so the memory-footprint behaviour can be observed in
tests and benchmarks.

Since PR 2 the segments are the actual intermediate storage of the streaming
pipeline executor (:mod:`repro.engine.pipeline`): every filter appends its
emitted facts to its segment and consumers read them back through per-edge
cursors (:meth:`BufferSegment.item`), so evicted pages are transparently
swapped back in on demand.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class BufferStats:
    """Counters of one buffer segment."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    swap_ins: int = 0
    swap_outs: int = 0
    peak_resident_pages: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "swap_ins": self.swap_ins,
            "swap_outs": self.swap_outs,
            "peak_resident_pages": self.peak_resident_pages,
        }


class BufferSegment:
    """A paginated per-filter buffer with LRU or LFU eviction."""

    def __init__(self, name: str, page_size: int = 64, max_pages: int = 16, policy: str = "lru") -> None:
        if policy not in {"lru", "lfu"}:
            raise ValueError("eviction policy must be 'lru' or 'lfu'")
        self.name = name
        self.page_size = page_size
        self.max_pages = max_pages
        self.policy = policy
        self.stats = BufferStats()
        self._pages: "collections.OrderedDict[int, List[object]]" = collections.OrderedDict()
        self._frequencies: Dict[int, int] = {}
        # Creation order of pages: the LFU tie-breaker (equal frequencies are
        # evicted oldest-page-first, deterministically).
        self._arrival: Dict[int, int] = {}
        self._arrival_counter = 0
        self._swap: Dict[int, List[object]] = {}
        self._count = 0
        # Incrementally maintained count of items in resident pages, so the
        # pipeline can sample residency per admitted fact at O(1).
        self._resident = 0
        self._owner: Optional["BufferCache"] = None

    # -- writing ---------------------------------------------------------------
    def append(self, item: object) -> None:
        page_number = self._count // self.page_size
        page = self._load_page(page_number, create=True)
        page.append(item)
        self._count += 1
        self._resident_delta(1)
        self._touch(page_number)
        self._maybe_evict()

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    # -- reading -----------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[object]:
        for page_number in range(self.page_count()):
            yield from self.page(page_number)

    def page_count(self) -> int:
        return (self._count + self.page_size - 1) // self.page_size

    def page(self, page_number: int) -> List[object]:
        page = self._load_page(page_number, create=False)
        self._touch(page_number)
        self._maybe_evict()
        return list(page)

    def item(self, index: int) -> object:
        """Random access by global item index (the pipeline cursor read).

        Reads through the page cache: an evicted page is swapped back in
        (and may evict another), so sequential cursor scans stay within the
        configured ``max_pages`` residency budget.
        """
        if index < 0 or index >= self._count:
            raise IndexError(f"segment {self.name}: item {index} out of range")
        page_number = index // self.page_size
        page = self._load_page(page_number, create=False)
        self._touch(page_number)
        self._maybe_evict()
        return page[index % self.page_size]

    def resident_pages(self) -> int:
        return len(self._pages)

    def resident_items(self) -> int:
        """Number of items currently held in resident (non-swapped) pages."""
        return self._resident

    def swapped_pages(self) -> int:
        return len(self._swap)

    # -- internals ----------------------------------------------------------------
    def _load_page(self, page_number: int, create: bool) -> List[object]:
        page = self._pages.get(page_number)
        if page is not None:
            self.stats.hits += 1
            return page
        self.stats.misses += 1
        if page_number in self._swap:
            page = self._swap.pop(page_number)
            self.stats.swap_ins += 1
            self._resident_delta(len(page))
        elif create:
            page = []
        else:
            raise KeyError(f"segment {self.name}: page {page_number} does not exist")
        self._pages[page_number] = page
        if page_number not in self._arrival:
            self._arrival[page_number] = self._arrival_counter
            self._arrival_counter += 1
        return page

    def _touch(self, page_number: int) -> None:
        self._frequencies[page_number] = self._frequencies.get(page_number, 0) + 1
        if page_number in self._pages:
            self._pages.move_to_end(page_number)

    def _resident_delta(self, delta: int) -> None:
        self._resident += delta
        if self._owner is not None:
            self._owner._resident_total += delta

    def _maybe_evict(self) -> None:
        while len(self._pages) > self.max_pages:
            victim = self._pick_victim()
            page = self._pages.pop(victim)
            self._swap[victim] = page
            self.stats.evictions += 1
            self.stats.swap_outs += 1
            self._resident_delta(-len(page))
        # Peak is sampled post-eviction: the steady-state residency, not the
        # one-page overshoot of a load that is about to evict.
        if len(self._pages) > self.stats.peak_resident_pages:
            self.stats.peak_resident_pages = len(self._pages)

    def _pick_victim(self) -> int:
        if self.policy == "lru":
            return next(iter(self._pages))
        # LFU with a deterministic tie-break: among equally frequent pages the
        # one created first is evicted (insertion order, not dict order).
        return min(
            self._pages,
            key=lambda p: (self._frequencies.get(p, 0), self._arrival.get(p, 0)),
        )


class BufferCache:
    """The collection of all buffer segments (one per filter of the pipeline)."""

    def __init__(self, page_size: int = 64, max_pages_per_segment: int = 16, policy: str = "lru") -> None:
        self.page_size = page_size
        self.max_pages_per_segment = max_pages_per_segment
        self.policy = policy
        self._segments: Dict[str, BufferSegment] = {}
        self._resident_total = 0

    def segment(self, name: str) -> BufferSegment:
        existing = self._segments.get(name)
        if existing is None:
            existing = BufferSegment(
                name,
                page_size=self.page_size,
                max_pages=self.max_pages_per_segment,
                policy=self.policy,
            )
            existing._owner = self
            self._segments[name] = existing
        return existing

    def segments(self) -> Tuple[str, ...]:
        return tuple(self._segments)

    def total_items(self) -> int:
        return sum(len(segment) for segment in self._segments.values())

    def resident_items(self) -> int:
        """Items currently resident (non-swapped) across all segments (O(1))."""
        return self._resident_total

    def total_evictions(self) -> int:
        return sum(segment.stats.evictions for segment in self._segments.values())

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {name: segment.stats.as_dict() for name, segment in self._segments.items()}
