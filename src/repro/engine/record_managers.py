"""Record managers: adapters turning external sources into fact streams.

In the paper's architecture the initial data sources of the pipeline use
*record managers*, components that adapt external sources (CSV archives,
relational databases, APIs) and turn streaming input data into facts
(Section 4, "Execution model").  Besides the in-memory adapters used by
tests and the workload generators, :class:`DataSourceRecordManager` bridges
to the pluggable datasource layer of
:mod:`repro.storage.datasources` (SQLite/CSV/JSONL behind ``@bind``): it
streams lazily from the source's cursor — no *rows* are read until the
first fact is pulled, so pipeline sources pruned by the backward slice
never scan their backend (SQLite binds do get an eager schema-validation
peek at resolution time) — and carries the predicate's compiled
:class:`~repro.storage.datasources.Pushdown` into the scan.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Union

from ..core.atoms import Fact
from ..core.terms import Constant
from ..storage.csv_io import load_relation_csv
from ..storage.database import Database


class RecordManager:
    """Interface of a record manager: stream facts for one predicate."""

    predicate: str

    def stream(self) -> Iterator[Fact]:
        raise NotImplementedError

    def facts(self) -> List[Fact]:
        return list(self.stream())


class InMemoryRecordManager(RecordManager):
    """Serves facts from an in-memory relation or list of tuples."""

    def __init__(self, predicate: str, rows: Iterable[Sequence[object]]) -> None:
        self.predicate = predicate
        self._rows = [tuple(row) for row in rows]

    def __len__(self) -> int:
        return len(self._rows)

    def stream(self) -> Iterator[Fact]:
        for row in self._rows:
            yield Fact(self.predicate, [Constant(v) for v in row])


class CsvRecordManager(RecordManager):
    """Serves facts from a CSV archive, one tuple per line."""

    def __init__(self, predicate: str, path: Union[str, Path], has_header: bool = False) -> None:
        self.predicate = predicate
        self.path = Path(path)
        self.has_header = has_header

    def stream(self) -> Iterator[Fact]:
        relation = load_relation_csv(self.path, name=self.predicate, has_header=self.has_header)
        for row in relation.tuples:
            yield Fact(self.predicate, [Constant(v) for v in row])


class DataSourceRecordManager(RecordManager):
    """Streams facts from a pluggable :class:`~repro.storage.datasources.DataSource`.

    ``pushdown`` (when the reasoner compiled one for this predicate) is
    forwarded to ``source.scan`` so selection happens at the source —
    natively for SQLite, at the read boundary for CSV/JSONL.  ``stream`` is
    a generator: no rows are read until the first fact is pulled.
    """

    def __init__(self, predicate: str, source, pushdown=None) -> None:
        self.predicate = predicate
        self.source = source
        self.pushdown = pushdown

    def stream(self) -> Iterator[Fact]:
        for row in self.source.scan(self.pushdown):
            yield Fact(self.predicate, [Constant(v) for v in row])


class DatabaseRecordManager(RecordManager):
    """Serves facts for one relation of a :class:`~repro.storage.database.Database`."""

    def __init__(self, predicate: str, database: Database) -> None:
        self.predicate = predicate
        self._database = database

    def stream(self) -> Iterator[Fact]:
        yield from self._database.facts(self.predicate)


class FactsRecordManager(RecordManager):
    """Serves already-constructed :class:`Fact` objects for one predicate.

    The streaming pipeline wraps every extensional predicate in a record
    manager; facts that arrive pre-built (programmatic databases, ``reason()``
    fact lists, facts embedded in the program text) go through this adapter.
    """

    def __init__(self, predicate: str, facts: Iterable[Fact]) -> None:
        self.predicate = predicate
        self._facts = list(facts)

    def __len__(self) -> int:
        return len(self._facts)

    def stream(self) -> Iterator[Fact]:
        return iter(self._facts)


def managers_for_database(database: Database) -> Dict[str, RecordManager]:
    """One record manager per relation of a database."""
    return {name: DatabaseRecordManager(name, database) for name in database.relations()}


def managers_for_facts(facts: Iterable[Fact]) -> Dict[str, RecordManager]:
    """Group loose facts by predicate into one record manager each."""
    grouped: Dict[str, List[Fact]] = {}
    for fact in facts:
        grouped.setdefault(fact.predicate, []).append(fact)
    return {
        predicate: FactsRecordManager(predicate, group)
        for predicate, group in grouped.items()
    }
