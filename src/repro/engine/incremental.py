"""The resident incremental reasoner: a warm materialisation under updates.

Every ``reason()`` call chases from scratch; a long-lived service cannot
afford that (Section 5 of the paper assumes a resident reasoning core, and
the streaming-architectures line — Baldazzi et al., arXiv:2311.12236 —
sustains warded reasoning over changing inputs).  :class:`ResidentReasoner`
keeps the chase engine, its fact store, chase nodes and termination state
alive across calls and maintains the materialisation under extensional
**upserts** and **retractions**:

* **Upserts** run delta-seeded semi-naive rounds against the warm store:
  the new facts are stamped as the delta of a continuation round and the
  compiled rule executors (:class:`~repro.engine.joins.CompiledRuleExecutor`)
  evaluate exactly as they would mid-chase — the store's round stamps keep
  increasing monotonically across maintenance operations, so the
  before-seed probe restriction stays correct.  Monotonic aggregates stay
  incremental too: evaluator updates are idempotent per contributor, so new
  contributions accumulate onto the resident evaluators and the
  answer-extraction reduction yields the same final value per group as a
  from-scratch run.

* **Retractions** use provenance-backed **delete-and-rederive (DRed)**.
  The chase records one derivation per fact (the ``parents`` of its
  :class:`~repro.core.forests.ChaseNode`); a
  :class:`~repro.core.provenance.DerivationIndex` inverts those edges.
  *Overdeletion* removes the closure of the retracted facts over recorded
  derivations (skipping facts that are extensional themselves); every
  surviving fact keeps an intact recorded derivation, so overdeletion is
  sound.  *Rederivation* then runs one full evaluation round restricted to
  rules whose head predicate lost facts — complete because the pre-deletion
  store was a fixpoint, so the only facts newly derivable over the
  survivors are alternative derivations of deleted ones (isomorphism-pruned
  twins of deleted facts share their predicate, so they are covered too) —
  and continues semi-naive until the fixpoint returns.

**Warded-null handling, honestly.** The termination strategy is stateful
(learned stop-provenances, per-tree isomorphism sets).  For upserts the
live strategy is reused: anything it prunes has an isomorphic counterpart
already in the store, so ground answers are exact and null-witness
*patterns* are preserved — the incremental materialisation may keep a
different multiset of isomorphic null witnesses than a from-scratch chase
(the same contract as the streaming/parallel executors).  After a
retraction the strategy is rebuilt by replaying the surviving nodes into a
:class:`~repro.core.termination.TrivialIsomorphismStrategy` — correct for
harmless warded programs (Theorem 2) — rather than a fresh warded one.
The warded summary structure is unsound to re-learn mid-store: when
rederivation re-derives a *surviving* fact and prunes it as isomorphic, it
would record a stop-provenance asserting everything beyond that path is
already stored — true before the deletion, false after it — and that
stop-provenance would then vertically prune exactly the rederivations a
later upsert needs.  The trivial strategy's global isomorphism check has
no summary to poison: every prune has an isomorphic (pattern-identical)
twin in the store, so answers stay exact at ground level and
pattern-level for null witnesses.

**Fallbacks.** Monotone aggregate evaluators cannot subtract a
contribution, so retraction on a program with aggregate rules marks the
reasoner dirty and the next query rebuilds the materialisation from the
current extensional set (upserts on such programs stay incremental).  EGD
and negative-constraint checks are re-run lazily after maintenance (they
only record violations in this implementation — they never mutate the
store).
"""

from __future__ import annotations

import time
from types import SimpleNamespace
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..core.atoms import Atom, Fact
from ..core.chase import ChaseEngine, ChaseResult
from ..core.fact_store import FactStore, StoreSnapshot
from ..core.forests import ChaseNode, input_node
from ..core.limits import STATUS_COMPLETE
from ..core.parser import parse_atom
from ..core.provenance import DerivationIndex
from ..core.query import AnswerSet, Query, extract_answers
from ..core.rules import Program
from ..core.termination import TrivialIsomorphismStrategy, WardedTerminationStrategy
from .annotations import apply_post_directives, load_bound_facts
from .reasoner import DatabaseLike, VadalogReasoner, _filter_answers

#: Executors able to maintain a warm store in-process (the parallel and
#: streaming executors own their stores per run).
RESIDENT_EXECUTORS = ("compiled", "naive")


class ResidentError(RuntimeError):
    """The resident reasoner could not establish/maintain its materialisation."""


class ResidentReasoner:
    """A warm materialisation maintained under upserts and retractions.

    Typical usage::

        from repro import ResidentReasoner

        resident = ResidentReasoner('''
            @output("Reach").
            Reach(X, Y) :- Edge(X, Y).
            Reach(X, Z) :- Reach(X, Y), Edge(Y, Z).
        ''', database={"Edge": [("a", "b")]})
        resident.upsert({"Edge": [("b", "c")]})
        resident.query('Reach("a", Y)').tuples("Reach")
        resident.retract({"Edge": [("b", "c")]})

    After any sequence of maintenance operations, :meth:`query` answers are
    identical to a from-scratch ``reason()`` on the final database: ground
    answers exactly, null-witness answers at pattern level (see the module
    docstring for the warded-null contract).
    """

    def __init__(
        self,
        program: Union[Program, str, VadalogReasoner],
        database: DatabaseLike = None,
        strategy: str = "warded",
        executor: str = "compiled",
        chase_config=None,
        base_path: Optional[str] = None,
    ) -> None:
        if isinstance(program, VadalogReasoner):
            reasoner = program
            if reasoner.executor not in RESIDENT_EXECUTORS:
                raise ValueError(
                    f"resident maintenance needs one of {RESIDENT_EXECUTORS}, "
                    f"got a reasoner with executor={reasoner.executor!r}"
                )
            if not isinstance(reasoner._strategy_spec, (str, type(None))):
                raise ValueError(
                    "resident maintenance needs a named termination strategy; "
                    "the reasoner was built with a strategy instance"
                )
        else:
            if executor not in RESIDENT_EXECUTORS:
                raise ValueError(
                    f"unknown resident executor {executor!r}; use one of "
                    f"{', '.join(RESIDENT_EXECUTORS)}"
                )
            if not isinstance(strategy, str):
                raise ValueError(
                    "ResidentReasoner needs a named termination strategy: "
                    "retraction replays a *fresh* strategy instance, which a "
                    "shared instance cannot provide"
                )
            reasoner = VadalogReasoner(
                program,
                strategy=strategy,
                executor=executor,
                chase_config=chase_config,
                base_path=base_path,
            )
        self._reasoner = reasoner
        self._executor = reasoner.executor
        self._program_facts: Set[Fact] = set(reasoner.program.facts)
        self._has_aggregates = any(
            rule.aggregate is not None for rule in reasoner.program.rules
        )
        self._has_checks = bool(reasoner.program.egds or reasoner.program.constraints)
        bindings = reasoner._collect_bindings(tuple(reasoner._output_predicates(None)))
        self._post_directives = bindings.post_directives
        #: Monotone counter bumped by every upsert/retract — the service
        #: layer keys its cache invalidation and snapshot freshness on it.
        self.maintenance_epoch = 0
        self._stats: Dict[str, float] = {
            "upserts": 0,
            "retractions": 0,
            "facts_upserted": 0,
            "facts_retracted": 0,
            "overdeleted": 0,
            "rederived": 0,
            "full_rebuilds": 0,
            "maintenance_seconds": 0.0,
        }
        facts = list(VadalogReasoner._database_facts(database))
        facts.extend(load_bound_facts(bindings))
        self._edb: Set[Fact] = set(facts) | set(self._program_facts)
        self._dirty = False
        self._violations_stale = False
        self._materialise()

    # ------------------------------------------------------------ lifecycle
    def _materialise(self) -> None:
        """(Re)build the warm materialisation from the current extensional set."""
        reasoner = self._reasoner
        database = [f for f in self._edb if f not in self._program_facts]
        engine = ChaseEngine(
            reasoner.program,
            database,
            strategy=reasoner._make_strategy(),
            analysis=reasoner.analysis,
            config=reasoner.chase_config,
            executor=self._executor,
            join_plans=reasoner.join_plans or None,
        )
        result = engine.run()
        if result.status != STATUS_COMPLETE:
            raise ResidentError(
                f"initial materialisation did not complete ({result.status}): "
                f"{result.stop_reason}"
            )
        self._engine = engine
        self._result = result
        self._store: FactStore = result.store
        self._node_of: Dict[Fact, ChaseNode] = {n.fact: n for n in result.nodes}
        self._derivations = DerivationIndex()
        self._record_derivations(result.nodes)
        self._round = result.rounds
        self._dirty = False
        self._violations_stale = False
        #: Per-epoch cache of extracted (predicates, certain) answer sets:
        #: distinct point queries on the same predicate share one extraction
        #: (isomorphic dedup + aggregate reduction + post directives) and
        #: only pay the per-query atom filter.  Cleared on every write.
        self._extract_cache: Dict[Tuple, AnswerSet] = {}

    def _record_derivations(self, nodes: Iterable[ChaseNode]) -> None:
        record = self._derivations.record
        for node in nodes:
            if node.parents:
                record(node.fact, [parent.fact for parent in node.parents])

    # ------------------------------------------------------------ inspection
    @property
    def program(self) -> Program:
        """The optimized program the materialisation is maintained for."""
        return self._reasoner.program

    @property
    def store(self) -> FactStore:
        return self._store

    @property
    def result(self) -> ChaseResult:
        return self._result

    @property
    def needs_settle(self) -> bool:
        """True when the next query must rebuild or re-check first."""
        return self._dirty or self._violations_stale

    @property
    def epoch(self) -> Tuple[int, int]:
        """(maintenance epoch, store mutation epoch) — cache freshness key."""
        return (self.maintenance_epoch, self._store.epoch)

    def snapshot(self) -> StoreSnapshot:
        """An epoch-guarded read view of the warm store (see PR 4 protocol)."""
        return self._store.snapshot()

    def stats(self) -> Dict[str, float]:
        data = dict(self._stats)
        data["resident_facts"] = len(self._store)
        data["edb_facts"] = len(self._edb)
        data["rounds"] = self._round
        data["dirty"] = self._dirty
        return data

    # ------------------------------------------------------------- maintenance
    def upsert(self, facts: DatabaseLike) -> int:
        """Add extensional facts and re-derive their consequences.

        Returns the number of facts that actually entered the store (facts
        already present — extensional or derived — only gain extensional
        status).  Runs delta-seeded semi-naive continuation rounds; on a
        dirty reasoner the facts are staged and the next query's rebuild
        picks them up.
        """
        started = time.perf_counter()
        new_facts = [
            f for f in VadalogReasoner._database_facts(facts) if f not in self._edb
        ]
        self.maintenance_epoch += 1
        self._stats["upserts"] += 1
        self._extract_cache.clear()
        self._edb.update(new_facts)
        if self._dirty:
            return 0
        store = self._store
        store.current_round = self._round
        added: List[ChaseNode] = []
        strategy = self._engine.strategy
        for fact in new_facts:
            if not store.add(fact):
                continue  # already derived: now also extensional, no new node
            node = input_node(fact, step=self._round)
            self._node_of[fact] = node
            self._result.nodes.append(node)
            strategy.register_input(node)
            added.append(node)
        if added:
            before = len(self._result.nodes)
            self._engine.continue_rounds(
                store, self._node_of, added, self._result, self._round
            )
            self._round = self._result.rounds
            self._record_derivations(self._result.nodes[before:])
        self._stats["facts_upserted"] += len(added)
        if self._has_checks:
            self._violations_stale = True
        self._stats["maintenance_seconds"] += time.perf_counter() - started
        return len(added)

    def retract(self, facts: DatabaseLike) -> int:
        """Retract extensional facts via delete-and-rederive.

        Only extensional facts can be retracted: retracting a *derived* fact
        raises ``ValueError`` (it would be re-derived immediately), facts
        the store never saw are ignored, and facts inlined in the program
        text are permanent.  The whole batch is validated before anything
        is applied — a rejected batch leaves the extensional set and the
        materialisation untouched.  Returns the number of facts removed
        from the extensional set.  On programs with aggregate rules the
        store cannot be maintained soundly under deletion (monotone
        accumulators cannot subtract), so the reasoner goes dirty and the
        next query rebuilds.
        """
        started = time.perf_counter()
        retracted: List[Fact] = []
        seen: Set[Fact] = set()
        for fact in VadalogReasoner._database_facts(facts):
            if fact in self._program_facts:
                raise ValueError(
                    f"{fact!r} is declared in the program text and cannot be retracted"
                )
            if fact in seen:
                continue
            seen.add(fact)
            if fact in self._edb:
                retracted.append(fact)
                continue
            if not self._dirty and fact in self._store:
                raise ValueError(
                    f"{fact!r} is derived, not extensional; only extensional "
                    "facts can be retracted"
                )
        # Batch validated: from here on the operation cannot fail, so the
        # extensional set and the materialisation move together.
        self.maintenance_epoch += 1
        self._stats["retractions"] += 1
        self._extract_cache.clear()
        self._edb.difference_update(retracted)
        self._stats["facts_retracted"] += len(retracted)
        if not retracted or self._dirty:
            self._stats["maintenance_seconds"] += time.perf_counter() - started
            return len(retracted)
        if self._has_aggregates:
            # Monotone aggregate evaluators cannot un-see a contribution.
            self._dirty = True
            self._stats["maintenance_seconds"] += time.perf_counter() - started
            return len(retracted)
        self._dred(retracted)
        if self._has_checks:
            self._violations_stale = True
        self._stats["maintenance_seconds"] += time.perf_counter() - started
        return len(retracted)

    def _dred(self, retracted: List[Fact]) -> None:
        """Delete-and-rederive: overdeletion, removal, restricted rederivation."""
        store = self._store
        node_of = self._node_of
        # -- overdeletion: closure over recorded derivations ------------------
        deleted: Set[Fact] = set()
        stack = [f for f in retracted if f in store]
        while stack:
            fact = stack.pop()
            if fact in deleted:
                continue
            deleted.add(fact)
            for child in self._derivations.children_of(fact):
                if child not in deleted and child not in self._edb and child in store:
                    stack.append(child)
        if not deleted:
            return
        self._stats["overdeleted"] += len(deleted)
        # -- removal: store, nodes, derivation index, fresh strategy ----------
        for fact in deleted:
            node = node_of.pop(fact, None)
            if node is not None and node.parents:
                self._derivations.unlink(fact, [p.fact for p in node.parents])
            store.remove(fact)
        self._derivations.forget(deleted)
        self._result.nodes = [n for n in self._result.nodes if n.fact not in deleted]
        # Replay the survivors into a summary-free strategy: a fresh warded
        # strategy would re-learn stop-provenances over the mutilated store
        # and vertically prune rederivations of just-deleted facts (see the
        # module docstring); the global-isomorphism strategy is correct for
        # harmless warded programs and has no path summaries to poison.
        strategy = self._reasoner._make_strategy()
        if isinstance(strategy, WardedTerminationStrategy):
            strategy = TrivialIsomorphismStrategy()
        for node in self._result.nodes:
            strategy.register_input(node)
        self._engine.strategy = strategy
        self._result.strategy = strategy
        # -- rederivation: full round restricted to the deleted predicates ----
        deleted_predicates = {f.predicate for f in deleted}
        rules = [
            rule
            for rule in self.program.rules
            if any(atom.predicate in deleted_predicates for atom in rule.head)
        ]
        before_facts = len(store)
        if rules:
            before = len(self._result.nodes)
            seed = [node_of[f] for f in store.facts()]
            self._engine.continue_rounds(
                store, node_of, seed, self._result, self._round, rules=rules
            )
            self._round = self._result.rounds
            self._record_derivations(self._result.nodes[before:])
        self._stats["rederived"] += len(store) - before_facts

    def ensure_settled(self) -> None:
        """Resolve deferred maintenance: full rebuild and/or violation re-check."""
        if self._dirty:
            self._stats["full_rebuilds"] += 1
            started = time.perf_counter()
            self._materialise()
            self._stats["maintenance_seconds"] += time.perf_counter() - started
        if self._violations_stale:
            self._result.violations = []
            self._engine.check_violations(self._result)
            self._violations_stale = False

    # ------------------------------------------------------------------ queries
    def query(
        self,
        query: Union[str, Atom, None] = None,
        outputs: Optional[Iterable[str]] = None,
        certain: bool = False,
        snapshot: Optional[StoreSnapshot] = None,
    ) -> AnswerSet:
        """Answer a point query (or extract the declared outputs) — no chase.

        The warm materialisation already holds the fixpoint, so a query is a
        filter over the store: the same answer extraction as ``reason()``
        (isomorphic deduplication, aggregate reduction, post directives,
        query-atom filtering) without re-deriving anything.  ``snapshot``
        lets the service layer read through an epoch-guarded
        :class:`~repro.core.fact_store.StoreSnapshot` — the caller must have
        settled the reasoner first (:meth:`ensure_settled`).
        """
        if snapshot is None:
            self.ensure_settled()
            view = self._result
        else:
            if self.needs_settle:
                raise ResidentError(
                    "snapshot query on an unsettled reasoner; call "
                    "ensure_settled() under the writer lock first"
                )
            view = SimpleNamespace(store=snapshot, aggregates=self._result.aggregates)
        if query is not None:
            query_atom = parse_atom(query) if isinstance(query, str) else query
            predicates: List[str] = [query_atom.predicate]
        else:
            query_atom = None
            predicates = (
                list(outputs)
                if outputs is not None
                else self._reasoner._output_predicates(None)
            )
        cache_key = (tuple(predicates), certain)
        answers = self._extract_cache.get(cache_key)
        if answers is None:
            answers = extract_answers(view, Query(tuple(predicates), certain=certain))
            if self._post_directives:
                answers = apply_post_directives(answers, self._post_directives)
            self._extract_cache[cache_key] = answers
        if query_atom is not None:
            answers = _filter_answers(answers, query_atom)
        return answers

    def answers(
        self, outputs: Optional[Iterable[str]] = None, certain: bool = False
    ) -> AnswerSet:
        """All answers of the declared (or given) output predicates."""
        return self.query(outputs=outputs, certain=certain)

    def violations(self):
        """The EGD/constraint violations of the current materialisation."""
        self.ensure_settled()
        return list(self._result.violations)
