"""The slot-machine join (Section 4, "Slot machine join").

The join technique of the paper is an indexed nested-loop join over a set of
iterators, one per joined predicate, enhanced with **dynamic in-memory
indexing**: while an iterator is scanned, a hash index keyed by the join
attribute is built on the fly; later probes first try the (possibly
incomplete) index optimistically and fall back to continuing the scan only
on an index miss.  With hash indexes the cost of the join tends to the
number of facts of the first predicate.

The implementation below works over arbitrary arity by specifying, for each
input, which positions form the join key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.atoms import Fact
from ..storage.index import HashIndex


@dataclass
class JoinInput:
    """One side of a slot-machine join: a fact iterator plus its key positions."""

    name: str
    facts: Iterable[Fact]
    key_positions: Tuple[int, ...]

    def key_of(self, fact: Fact) -> Hashable:
        return tuple(fact.terms[i] for i in self.key_positions)


@dataclass
class JoinStats:
    """Counters describing how a join executed."""

    probes: int = 0
    index_hits: int = 0
    index_misses: int = 0
    scanned_facts: int = 0
    output_tuples: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "probes": self.probes,
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "scanned_facts": self.scanned_facts,
            "output_tuples": self.output_tuples,
        }


class _IndexedIterator:
    """Wraps a fact iterator with a dynamically built hash index on the key."""

    def __init__(self, join_input: JoinInput) -> None:
        self._input = join_input
        self._iterator = iter(join_input.facts)
        self._index: HashIndex[Fact] = HashIndex()
        self._exhausted = False

    def probe(self, key: Hashable, stats: JoinStats) -> List[Fact]:
        """Facts whose key equals ``key``, advancing the scan only when needed."""
        stats.probes += 1
        cached = self._index.get(key)
        if cached is not None:
            stats.index_hits += 1
            return cached
        stats.index_misses += 1
        matches: List[Fact] = []
        while not self._exhausted:
            try:
                fact = next(self._iterator)
            except StopIteration:
                self._exhausted = True
                self._index.mark_complete()
                break
            stats.scanned_facts += 1
            fact_key = self._input.key_of(fact)
            self._index.insert(fact_key, fact)
            if fact_key == key:
                matches.append(fact)
        return matches

    @property
    def index(self) -> HashIndex:
        return self._index


class SlotMachineJoin:
    """N-way join driven by the first input, probing the others via dynamic indexes."""

    def __init__(self, inputs: Sequence[JoinInput]) -> None:
        if len(inputs) < 2:
            raise ValueError("a join needs at least two inputs")
        key_len = len(inputs[0].key_positions)
        if any(len(i.key_positions) != key_len for i in inputs):
            raise ValueError("all join inputs must use the same key length")
        self.inputs = list(inputs)
        self.stats = JoinStats()
        self._indexed = [_IndexedIterator(i) for i in self.inputs[1:]]

    def __iter__(self) -> Iterator[Tuple[Fact, ...]]:
        return self.execute()

    def execute(self) -> Iterator[Tuple[Fact, ...]]:
        """Yield one tuple of facts (one per input) for every join match."""
        driver = self.inputs[0]
        for fact in driver.facts:
            self.stats.scanned_facts += 1
            yield from self._probe_rest(0, (fact,), driver.key_of(fact))

    def _probe_rest(
        self, position: int, prefix: Tuple[Fact, ...], key: Hashable
    ) -> Iterator[Tuple[Fact, ...]]:
        if position == len(self._indexed):
            self.stats.output_tuples += 1
            yield prefix
            return
        for match in self._indexed[position].probe(key, self.stats):
            yield from self._probe_rest(position + 1, prefix + (match,), key)

    def index_stats(self) -> List[Dict[str, int]]:
        return [indexed.index.stats.as_dict() for indexed in self._indexed]


class CompiledRuleExecutor:
    """Executes a compiled :class:`~repro.engine.plan.RuleJoinPlan` against a store.

    This is the slot-machine join wired into the chase hot path: the seed
    step scans (or index-probes) the current semi-naive delta, every further
    step probes the store's dynamic per-position indexes — choosing the most
    selective bound position, i.e. the smallest bucket — and variable
    bindings live in a single mutable slot array written and un-written by
    tuple position.  The dict binding handed to the chase is built once per
    full body match, not once per candidate fact.
    """

    def __init__(self, plan) -> None:
        self.plan = plan
        self.stats = JoinStats()
        # Per seed plan: (seed step, probe steps each paired with whether the
        # probe atom precedes the seed textually — those only match facts of
        # earlier rounds).
        self._schedule = tuple(
            (
                sp.seed,
                tuple((step, step.atom_index < sp.seed.atom_index) for step in sp.probes),
            )
            for sp in plan.seed_plans
        )

    # -- candidate selection -------------------------------------------------
    @staticmethod
    def _seed_candidates(step, store) -> Sequence[Fact]:
        """Delta facts that can match the seed step (indexed when possible)."""
        best: Optional[Sequence[Fact]] = None
        for pos, term in step.const_checks:
            bucket = store.delta_candidates(step.predicate, pos, term)
            if not bucket:
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
        if best is not None:
            return best
        return store.delta_facts(step.predicate)

    def _probe_candidates(self, step, slots, store) -> Sequence[Fact]:
        """Most selective full-index bucket for a probe step (slot-machine probe)."""
        self.stats.probes += 1
        dicts = store.position_dicts(step.predicate)
        if dicts is None:
            return ()
        n_dicts = len(dicts)
        best: Optional[Sequence[Fact]] = None
        for pos, term in step.const_checks:
            if pos >= n_dicts:
                return ()
            bucket = dicts[pos].get(term)
            if bucket is None:
                return ()
            if best is None or len(bucket) < len(best):
                best = bucket
                if len(best) <= 1:
                    break
        if best is None or len(best) > 1:
            for pos, slot in step.bound_checks:
                if pos >= n_dicts:
                    return ()
                bucket = dicts[pos].get(slots[slot])
                if bucket is None:
                    return ()
                if best is None or len(bucket) < len(best):
                    best = bucket
                    if len(best) <= 1:
                        break
        if best is not None:
            self.stats.index_hits += 1
            return best
        self.stats.index_misses += 1
        return store.by_predicate(step.predicate)

    # -- stepping ------------------------------------------------------------
    @staticmethod
    def _admit(step, fact, slots) -> bool:
        """Positional checks + slot writes for one candidate; True on match.

        On a mismatch no slot has been written yet (all checks precede the
        writes), so there is nothing to undo.
        """
        terms = fact.terms
        if len(terms) != step.arity:
            return False
        for pos, term in step.const_checks:
            if terms[pos] != term:
                return False
        for pos, slot in step.bound_checks:
            if terms[pos] != slots[slot]:
                return False
        for pos, first_pos in step.same_checks:
            if terms[pos] != terms[first_pos]:
                return False
        for pos, slot in step.writes:
            slots[slot] = terms[pos]
        for condition in step.conditions:
            if not condition.holds(slots):
                for _pos, slot in step.writes:
                    slots[slot] = None
                return False
        return True

    def matches(
        self, store, round_index: int, seed_lists: Optional[Sequence[Sequence[Fact]]] = None
    ) -> Iterator[Tuple[List, List[Fact]]]:
        """Enumerate full body matches over the current delta.

        Yields the executor's *live* ``(slots, used_facts)`` pair — the slot
        array indexed like ``plan.variables`` and the matched facts in
        textual body order.  Both lists are reused across matches: consumers
        must read them before advancing the generator (the chase fires
        immediately, so this is safe and saves two allocations per match).
        Atoms textually before the seed only match facts of earlier rounds
        (the standard semi-naive decomposition avoiding duplicate joins
        across seed choices).

        ``store`` may be the live :class:`~repro.core.fact_store.FactStore`
        or a read-only :class:`~repro.core.fact_store.StoreSnapshot` — the
        executor only reads.  ``seed_lists``, when given, supplies the seed
        candidates externally (one sequence per seed plan, aligned with
        ``plan.seed_plans``): the parallel executor passes each worker its
        hash-shard of the delta this way, bypassing the store's own delta
        lookup while every positional check still runs per candidate.

        The probe walk is an explicit iterative backtracking loop with the
        admission checks inlined: this is the innermost loop of the whole
        system, and generator recursion plus one function call per candidate
        fact measurably dominated it.
        """
        stats = self.stats
        round_of = store.round_of
        n_slots = len(self.plan.variables)
        body_length = self.plan.body_length
        sentinel = None
        for plan_index, (seed, probes) in enumerate(self._schedule):
            if seed_lists is None:
                seed_candidates = self._seed_candidates(seed, store)
            else:
                seed_candidates = seed_lists[plan_index]
            if not seed_candidates:
                continue
            slots: List[Optional[object]] = [None] * n_slots
            used: List[Optional[Fact]] = [None] * body_length
            n_probes = len(probes)
            seed_index = seed.atom_index
            seed_writes = seed.writes
            for fact in seed_candidates:
                stats.scanned_facts += 1
                if not self._admit(seed, fact, slots):
                    continue
                used[seed_index] = fact
                if n_probes == 0:
                    stats.output_tuples += 1
                    yield slots, used
                else:
                    iters: List[Optional[Iterator[Fact]]] = [None] * n_probes
                    iters[0] = iter(self._probe_candidates(probes[0][0], slots, store))
                    depth = 0
                    step, before_seed = probes[0]
                    while True:
                        candidate = next(iters[depth], sentinel)
                        if candidate is sentinel:
                            # Exhausted this level: backtrack, undoing the
                            # current candidate of the level above.
                            depth -= 1
                            if depth < 0:
                                break
                            step, before_seed = probes[depth]
                            used[step.atom_index] = None
                            for _pos, slot in step.writes:
                                slots[slot] = None
                            continue
                        if before_seed and round_of(candidate) >= round_index:
                            continue
                        # ---- inlined admission (see AtomStep) ----
                        terms = candidate.terms
                        if len(terms) != step.arity:
                            continue
                        ok = True
                        for pos, term in step.const_checks:
                            if terms[pos] != term:
                                ok = False
                                break
                        if ok:
                            for pos, slot in step.bound_checks:
                                if terms[pos] != slots[slot]:
                                    ok = False
                                    break
                        if ok:
                            for pos, first_pos in step.same_checks:
                                if terms[pos] != terms[first_pos]:
                                    ok = False
                                    break
                        if not ok:
                            continue
                        for pos, slot in step.writes:
                            slots[slot] = terms[pos]
                        if step.conditions:
                            for condition in step.conditions:
                                if not condition.holds(slots):
                                    ok = False
                                    break
                            if not ok:
                                for _pos, slot in step.writes:
                                    slots[slot] = None
                                continue
                        used[step.atom_index] = candidate
                        if depth + 1 == n_probes:
                            stats.output_tuples += 1
                            yield slots, used
                            used[step.atom_index] = None
                            for _pos, slot in step.writes:
                                slots[slot] = None
                        else:
                            depth += 1
                            step, before_seed = probes[depth]
                            iters[depth] = iter(
                                self._probe_candidates(step, slots, store)
                            )
                used[seed_index] = None
                for _pos, slot in seed_writes:
                    slots[slot] = None

    def bindings(
        self, store, round_index: int, seed_lists: Optional[Sequence[Sequence[Fact]]] = None
    ) -> Iterator[Tuple[Dict, List[Fact]]]:
        """Like :meth:`matches` but yielding fresh dict bindings (slow path)."""
        variables = self.plan.variables
        for slots, used in self.matches(store, round_index, seed_lists):
            yield {variables[i]: slots[i] for i in range(len(variables))}, list(used)


def hash_join(
    left: Iterable[Fact],
    right: Iterable[Fact],
    left_positions: Tuple[int, ...],
    right_positions: Tuple[int, ...],
) -> List[Tuple[Fact, Fact]]:
    """Simple two-way slot-machine join returning materialised pairs."""
    join = SlotMachineJoin(
        [
            JoinInput("left", left, left_positions),
            JoinInput("right", right, right_positions),
        ]
    )
    return [(pair[0], pair[1]) for pair in join.execute()]
