"""The slot-machine join (Section 4, "Slot machine join").

The join technique of the paper is an indexed nested-loop join over a set of
iterators, one per joined predicate, enhanced with **dynamic in-memory
indexing**: while an iterator is scanned, a hash index keyed by the join
attribute is built on the fly; later probes first try the (possibly
incomplete) index optimistically and fall back to continuing the scan only
on an index miss.  With hash indexes the cost of the join tends to the
number of facts of the first predicate.

The implementation below works over arbitrary arity by specifying, for each
input, which positions form the join key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.atoms import Fact
from ..storage.index import HashIndex


@dataclass
class JoinInput:
    """One side of a slot-machine join: a fact iterator plus its key positions."""

    name: str
    facts: Iterable[Fact]
    key_positions: Tuple[int, ...]

    def key_of(self, fact: Fact) -> Hashable:
        return tuple(fact.terms[i] for i in self.key_positions)


@dataclass
class JoinStats:
    """Counters describing how a join executed."""

    probes: int = 0
    index_hits: int = 0
    index_misses: int = 0
    scanned_facts: int = 0
    output_tuples: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "probes": self.probes,
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "scanned_facts": self.scanned_facts,
            "output_tuples": self.output_tuples,
        }


class _IndexedIterator:
    """Wraps a fact iterator with a dynamically built hash index on the key."""

    def __init__(self, join_input: JoinInput) -> None:
        self._input = join_input
        self._iterator = iter(join_input.facts)
        self._index: HashIndex[Fact] = HashIndex()
        self._exhausted = False

    def probe(self, key: Hashable, stats: JoinStats) -> List[Fact]:
        """Facts whose key equals ``key``, advancing the scan only when needed."""
        stats.probes += 1
        cached = self._index.get(key)
        if cached is not None:
            stats.index_hits += 1
            return cached
        stats.index_misses += 1
        matches: List[Fact] = []
        while not self._exhausted:
            try:
                fact = next(self._iterator)
            except StopIteration:
                self._exhausted = True
                self._index.mark_complete()
                break
            stats.scanned_facts += 1
            fact_key = self._input.key_of(fact)
            self._index.insert(fact_key, fact)
            if fact_key == key:
                matches.append(fact)
        return matches

    @property
    def index(self) -> HashIndex:
        return self._index


class SlotMachineJoin:
    """N-way join driven by the first input, probing the others via dynamic indexes."""

    def __init__(self, inputs: Sequence[JoinInput]) -> None:
        if len(inputs) < 2:
            raise ValueError("a join needs at least two inputs")
        key_len = len(inputs[0].key_positions)
        if any(len(i.key_positions) != key_len for i in inputs):
            raise ValueError("all join inputs must use the same key length")
        self.inputs = list(inputs)
        self.stats = JoinStats()
        self._indexed = [_IndexedIterator(i) for i in self.inputs[1:]]

    def __iter__(self) -> Iterator[Tuple[Fact, ...]]:
        return self.execute()

    def execute(self) -> Iterator[Tuple[Fact, ...]]:
        """Yield one tuple of facts (one per input) for every join match."""
        driver = self.inputs[0]
        for fact in driver.facts:
            self.stats.scanned_facts += 1
            yield from self._probe_rest(0, (fact,), driver.key_of(fact))

    def _probe_rest(
        self, position: int, prefix: Tuple[Fact, ...], key: Hashable
    ) -> Iterator[Tuple[Fact, ...]]:
        if position == len(self._indexed):
            self.stats.output_tuples += 1
            yield prefix
            return
        for match in self._indexed[position].probe(key, self.stats):
            yield from self._probe_rest(position + 1, prefix + (match,), key)

    def index_stats(self) -> List[Dict[str, int]]:
        return [indexed.index.stats.as_dict() for indexed in self._indexed]


def hash_join(
    left: Iterable[Fact],
    right: Iterable[Fact],
    left_positions: Tuple[int, ...],
    right_positions: Tuple[int, ...],
) -> List[Tuple[Fact, Fact]]:
    """Simple two-way slot-machine join returning materialised pairs."""
    join = SlotMachineJoin(
        [
            JoinInput("left", left, left_positions),
            JoinInput("right", right, right_positions),
        ]
    )
    return [(pair[0], pair[1]) for pair in join.execute()]
