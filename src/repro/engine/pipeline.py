"""Pull-based streaming pipeline executor (Section 4, "Execution model").

This module is the paper's pipes-and-filters runtime made real: a reasoning
task is compiled into a DAG of *filter nodes* — record-manager **sources**
feeding extensional facts, **rule filters** evaluating one rule each, and
output **sinks** collecting the answer predicates — connected by buffered
pipes.  Execution is *pull-based*: sinks issue ``open()/next()/close()``
calls that propagate backwards through the pipeline; a node with several
predecessors pulls from them in **round-robin** order, which sustains the
breadth-first application of the rules, and the live
:class:`~repro.engine.scheduler.PullScheduler` classifies every pull as a
hit, a *cyclic miss* (``notifyCycle`` — the callee is already serving a
``next()`` further up the invocation chain) or a *real miss*.

Compared to the materializing chase (:mod:`repro.core.chase`) the pipeline

* is **query-driven**: only rules in the backward slice of the requested
  output predicates (:func:`repro.engine.plan.backward_slice`) are
  instantiated, everything else is pruned;
* returns **first answers early**: an answer fact reaches its sink as soon
  as one derivation chain completes, long before the full model is
  materialized — :meth:`PipelineExecutor.first_answer` stops pulling at that
  point;
* keeps intermediates in **buffer segments**
  (:class:`~repro.engine.buffer.BufferSegment`): every filter appends its
  emitted facts to a paginated per-filter buffer whose pages are evicted to
  swap beyond a residency budget, and consumers read them back through
  per-edge cursors;
* wires the **termination wrappers in-line**: every candidate fact a rule
  filter derives passes its :class:`~repro.engine.wrappers.TerminationWrapper`
  (``checkTermination``) before it is emitted downstream.

Rule filters execute the compiled slot-machine join plans of PR 1
(:class:`~repro.engine.plan.RuleJoinPlan`) *incrementally*: each newly
pulled fact is used as the semi-naive seed of every body atom with its
predicate, probing the shared store's dynamic per-position indexes for the
remaining atoms.  Duplicate derivations across pulls are avoided with a
**per-fact arrival sequence**: a probe atom may only match facts that
arrived strictly before the seed fact (or the seed fact itself at a later
body position), so every body combination is enumerated exactly once — when
its newest member is pulled.  Firing itself is delegated to the chase
kernel (:meth:`repro.core.chase.ChaseEngine.fire_binding`), so assignments,
aggregations, ``Dom`` guards, fresh nulls and forest metadata behave
identically across executors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.atoms import Fact
from ..core.chase import ChaseConfig, ChaseEngine, ChaseLimitError, ChaseResult
from ..core.fact_store import FactStore
from ..core.forests import ChaseNode, input_node
from ..core.limits import (
    STATUS_COMPLETE,
    ExecutionGovernor,
    ExecutionStopped,
)
from ..obs.trace import activate
from ..testing.faults import fault_point
from ..core.rules import DOM_PREDICATE, Program, Rule
from ..core.termination import TerminationStrategy
from ..core.wardedness import ProgramAnalysis
from .buffer import BufferCache
from .joins import CompiledRuleExecutor
from .plan import RuleJoinPlan, backward_slice, compile_rule_join_plan
from .record_managers import RecordManager
from .scheduler import PullScheduler
from .wrappers import WrapperRegistry


@dataclass
class PipelineStats:
    """Counters of one streaming run (reported via ``ChaseResult.extra_stats``)."""

    sweeps: int = 0
    facts_pulled: int = 0
    facts_emitted: int = 0
    answers_produced: int = 0
    relevant_rules: int = 0
    pruned_rules: int = 0
    pruned_sources: int = 0
    facts_at_first_answer: Optional[int] = None
    peak_resident_buffer_items: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "pipeline_sweeps": self.sweeps,
            "pipeline_facts_pulled": self.facts_pulled,
            "pipeline_facts_emitted": self.facts_emitted,
            "pipeline_answers_produced": self.answers_produced,
            "pipeline_relevant_rules": self.relevant_rules,
            "pipeline_pruned_rules": self.pruned_rules,
            "pipeline_pruned_sources": self.pruned_sources,
            "pipeline_facts_at_first_answer": self.facts_at_first_answer,
            "pipeline_peak_resident_buffer_items": self.peak_resident_buffer_items,
        }


@dataclass
class _Cursor:
    """A consumer's read position into one producer's buffer segment.

    ``wanted`` restricts the edge to the predicates the consumer actually
    needs from this producer (a multi-head rule emits facts of several
    predicates into one buffer; unwanted ones are skipped).
    """

    producer: "PipelineNode"
    wanted: FrozenSet[str]
    position: int = 0


class _Context:
    """Shared runtime state of one pipeline run."""

    def __init__(
        self,
        engine: ChaseEngine,
        result: ChaseResult,
        buffers: BufferCache,
        config: ChaseConfig,
        stats: PipelineStats,
        tracer=None,
    ) -> None:
        self.tracer = tracer
        self.engine = engine
        self.result = result
        self.store: FactStore = result.store
        self.node_of: Dict[Fact, ChaseNode] = {}
        self.seq_of: Dict[Fact, int] = {}
        self.buffers = buffers
        self.config = config
        self.stats = stats
        #: Monotone counter of *any* observable work (cursor advances, fact
        #: admissions).  A full driver sweep that leaves it unchanged proves
        #: the fixpoint: no unread buffer items, no producible facts.
        self.progress = 0
        self.sweep = 0
        self.started_at: Optional[float] = None
        self.first_answer_fact: Optional[Fact] = None
        #: Per-run budget/cancellation monitor (set once driving starts).
        self.governor: Optional[ExecutionGovernor] = None

    # -- fact admission --------------------------------------------------------
    def register(self, fact: Fact) -> None:
        self.seq_of[fact] = len(self.seq_of)
        self.progress += 1
        governor = self.governor
        if governor is not None:
            governor.tick()
            if governor.has_fact_limits:
                # A streaming sweep can admit many facts before the next
                # boundary, so the fact-count axes are enforced here too.
                stop = governor.admission_status(
                    len(self.store), self.result.chase_steps
                )
                if stop is not None:
                    raise ExecutionStopped(*stop)
        resident = self.buffers.resident_items()
        if resident > self.stats.peak_resident_buffer_items:
            self.stats.peak_resident_buffer_items = resident
        if (
            self.config.max_facts is not None
            and len(self.store) > self.config.max_facts
        ):
            raise ChaseLimitError(
                f"pipeline exceeded the configured maximum of {self.config.max_facts} facts"
            )

    def note_answer(self, fact: Fact) -> None:
        self.stats.answers_produced += 1
        if self.first_answer_fact is None:
            self.first_answer_fact = fact
            self.stats.facts_at_first_answer = len(self.store)
            if self.started_at is not None:
                self.result.first_answer_seconds = time.perf_counter() - self.started_at

    # -- the pull protocol -----------------------------------------------------
    def pull_one(
        self, consumer: "PipelineNode", cursor: _Cursor, sched: PullScheduler
    ) -> Optional[Fact]:
        """One ``next()`` call from ``consumer`` to ``cursor.producer``.

        Unread buffered items are served without re-entering the producer —
        this is what lets a recursive filter consume its *own* earlier output
        without a runtime cycle.  Only when the buffer is drained does the
        pull recurse into ``produce()``, answering a cyclic miss instead if
        the producer is already on the invocation stack.
        """
        producer = cursor.producer
        sched.record_next(consumer.name, producer.name)
        while True:
            buffer = producer.buffer
            while cursor.position < len(buffer):
                item = buffer.item(cursor.position)
                cursor.position += 1
                self.progress += 1
                if item.predicate in cursor.wanted:
                    sched.record_hit(consumer.name, producer.name)
                    self.stats.facts_pulled += 1
                    return item
                # Fact of a predicate this edge does not carry: skip it.
            if sched.on_stack(producer.name):
                sched.record_cyclic_miss(consumer.name, producer.name)
                return None
            if producer.barren_at == self.progress:
                # The producer already proved (this exact progress level) that
                # its whole upstream cone is dry; re-entering it would repeat
                # an identical traversal.  Without this memo the retry traffic
                # grows multiplicatively with pipeline depth.
                sched.record_barren_skip(consumer.name, producer.name)
                sched.record_real_miss(consumer.name, producer.name)
                return None
            if not producer.produce(sched):
                sched.record_real_miss(consumer.name, producer.name)
                return None
            # The producer emitted something new: loop back to read it.


class PipelineNode:
    """Common shape of pipeline nodes: a name plus a buffered output pipe."""

    kind = "node"

    def __init__(self, name: str, ctx: _Context) -> None:
        self.name = name
        self.ctx = ctx
        self.buffer = ctx.buffers.segment(name)
        #: Progress level at which a ``produce()`` attempt failed without any
        #: global progress; until the level changes the node is provably dry
        #: and pulls skip it (its buffer stays readable regardless).
        self.barren_at = -1

    def produce(self, sched: PullScheduler) -> bool:
        """Try to emit at least one new fact into the buffer; True on success."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, buffered={len(self.buffer)})"


class SourceNode(PipelineNode):
    """A record-manager source: streams one extensional fact per ``next()``."""

    kind = "source"

    def __init__(self, name: str, predicate: str, manager: RecordManager, ctx: _Context) -> None:
        super().__init__(name, ctx)
        self.predicate = predicate
        self.manager = manager
        self.wrapper = None  # set by the executor (termination input routing)
        self._iterator: Optional[Iterator[Fact]] = None
        self.exhausted = False

    def produce(self, sched: PullScheduler) -> bool:
        if self.exhausted:
            return False
        if self._iterator is None:  # open(): the stream starts on first pull
            self._iterator = self.manager.stream()
        ctx = self.ctx
        for fact in self._iterator:
            if not ctx.store.add(fact):
                continue  # duplicate input row
            node = input_node(fact, step=0)
            ctx.node_of[fact] = node
            ctx.result.nodes.append(node)
            if self.wrapper is not None:
                self.wrapper.register_input(node)
            ctx.register(fact)
            self.buffer.append(fact)
            return True
        self.exhausted = True
        self.barren_at = ctx.progress
        return False


class RuleFilterNode(PipelineNode):
    """One rule of the program, evaluated incrementally against pulled facts."""

    kind = "rule"

    def __init__(
        self,
        name: str,
        rule: Rule,
        plan: RuleJoinPlan,
        wrapper,
        ctx: _Context,
    ) -> None:
        super().__init__(name, ctx)
        self.rule = rule
        self.plan = plan
        self.wrapper = wrapper
        self.cursors: List[_Cursor] = []
        self._rr = 0
        # Tracing accumulators (only written on the traced path): per-sweep
        # spans would be far too many, so the filter accumulates its busy
        # time and counters here and ``PipelineExecutor._finish`` emits one
        # summary "rule" span per filter spanning [t_first, t_last].
        self.busy_seconds = 0.0
        self.consumed = 0
        self.fires = 0
        self.candidates = 0
        self.t_first: Optional[float] = None
        self.t_last: Optional[float] = None
        # The compiled executor contributes its positional admission checks
        # and most-selective-bucket probe over the store's dynamic indexes.
        self._executor = CompiledRuleExecutor(plan)
        self._seeds_by_predicate: Dict[str, List] = {}
        for seed_plan in plan.seed_plans:
            self._seeds_by_predicate.setdefault(seed_plan.seed.predicate, []).append(
                seed_plan
            )

    # -- the pull loop ---------------------------------------------------------
    def produce(self, sched: PullScheduler) -> bool:
        """Pull predecessors round-robin until ≥ 1 fact is emitted.

        Consuming a fact that fires nothing is still progress (the cursor
        advanced), so the loop keeps rotating; it gives up only after a full
        round in which every predecessor missed.
        """
        fault_point("pipeline.rule", rule=self.rule.label or "rule")
        ctx = self.ctx
        emitted_mark = len(self.buffer)
        attempt_start = ctx.progress
        sched.enter(self.name)
        try:
            n = len(self.cursors)
            if n == 0:
                self.barren_at = ctx.progress
                return False
            while True:
                pulled_any = False
                for _ in range(n):
                    cursor = self.cursors[self._rr]
                    self._rr = (self._rr + 1) % n
                    fact = ctx.pull_one(self, cursor, sched)
                    if fact is None:
                        continue
                    pulled_any = True
                    if ctx.tracer is None:
                        self._consume(fact)
                    else:
                        self._consume_traced(fact)
                    if len(self.buffer) > emitted_mark:
                        return True
                if not pulled_any:
                    if ctx.progress == attempt_start:
                        # Nothing moved anywhere during this attempt: the node
                        # is dry until upstream progress invalidates the memo.
                        self.barren_at = ctx.progress
                    return False
        finally:
            sched.leave(self.name)

    def _consume_traced(self, fact: Fact) -> None:
        """Traced wrapper of :meth:`_consume`: accumulate busy time and the
        candidate/fire deltas (bulk, never per match) for the summary span."""
        result = self.ctx.result
        candidates_before = result.candidate_facts
        steps_before = result.chase_steps
        t0 = time.perf_counter()
        try:
            self._consume(fact)
        finally:
            t1 = time.perf_counter()
            self.busy_seconds += t1 - t0
            self.consumed += 1
            self.candidates += result.candidate_facts - candidates_before
            self.fires += result.chase_steps - steps_before
            if self.t_first is None:
                self.t_first = t0
            self.t_last = t1

    # -- incremental evaluation ------------------------------------------------
    def _consume(self, fact: Fact) -> None:
        """Use ``fact`` as the semi-naive seed of every matching body atom."""
        seed_plans = self._seeds_by_predicate.get(fact.predicate)
        if not seed_plans:
            return
        seq_fact = self.ctx.seq_of[fact]
        n_slots = len(self.plan.variables)
        for seed_plan in seed_plans:
            slots: List[Optional[object]] = [None] * n_slots
            seed = seed_plan.seed
            if not CompiledRuleExecutor._admit(seed, fact, slots):
                continue
            used: List[Optional[Fact]] = [None] * self.plan.body_length
            used[seed.atom_index] = fact
            self._walk(seed_plan.probes, 0, slots, used, seq_fact, seed.atom_index)

    def _walk(
        self,
        probes: Tuple,
        depth: int,
        slots: List,
        used: List,
        seq_fact: int,
        seed_index: int,
    ) -> None:
        """Backtracking probe walk restricted by the arrival sequence.

        A candidate with a later sequence number than the seed is left for
        the pull that will deliver *it* as the seed; the seed fact itself may
        re-match only at a strictly later body position.  Together this
        enumerates every body combination exactly once across all pulls.
        """
        if depth == len(probes):
            self._fire(slots, used)
            return
        step = probes[depth]
        seq_of = self.ctx.seq_of
        admit = CompiledRuleExecutor._admit
        for candidate in self._executor._probe_candidates(step, slots, self.ctx.store):
            seq_candidate = seq_of[candidate]
            if seq_candidate > seq_fact:
                continue
            if seq_candidate == seq_fact and step.atom_index <= seed_index:
                continue
            if not admit(step, candidate, slots):
                continue
            used[step.atom_index] = candidate
            self._walk(probes, depth + 1, slots, used, seq_fact, seed_index)
            used[step.atom_index] = None
            for _pos, slot in step.writes:
                slots[slot] = None

    def _fire(self, slots: List, used: List) -> None:
        """Fire the rule on a full match, emitting wrapper-admitted facts."""
        ctx = self.ctx
        plan = self.plan
        variables = plan.variables
        binding = {variables[i]: slots[i] for i in range(len(variables))}
        if plan.residual_conditions and not all(
            c.holds(binding) for c in plan.residual_conditions
        ):
            return
        if self.rule.dom_guards and not ctx.engine.dom_guards_hold(
            self.rule, binding, ctx.store
        ):
            return
        produced = ctx.engine.fire_binding(
            self.rule,
            binding,
            list(used),
            ctx.store,
            ctx.node_of,
            ctx.sweep,
            ctx.result,
            admit=self.wrapper.check_termination,
        )
        for node in produced:
            ctx.register(node.fact)
            self.buffer.append(node.fact)
            ctx.stats.facts_emitted += 1


class SinkNode(PipelineNode):
    """Collects the facts of one output predicate as they become derivable."""

    kind = "sink"

    def __init__(self, name: str, predicate: str, ctx: _Context, hidden: bool = False) -> None:
        super().__init__(name, ctx)
        self.predicate = predicate
        #: Hidden sinks drain predicates needed only by constraint/EGD checks;
        #: they never surface answers through the public iterator.
        self.hidden = hidden
        self.cursors: List[_Cursor] = []
        self._rr = 0
        self._read = 0

    def produce(self, sched: PullScheduler) -> bool:
        ctx = self.ctx
        attempt_start = ctx.progress
        sched.enter(self.name)
        try:
            n = len(self.cursors)
            for _ in range(n):
                cursor = self.cursors[self._rr]
                self._rr = (self._rr + 1) % n
                fact = ctx.pull_one(self, cursor, sched)
                if fact is None:
                    continue
                self.buffer.append(fact)
                if not self.hidden:
                    ctx.note_answer(fact)
                return True
            if ctx.progress == attempt_start:
                self.barren_at = ctx.progress
            return False
        finally:
            sched.leave(self.name)

    def pop_unread(self) -> Optional[Fact]:
        """The next buffered answer not yet handed to the caller, if any."""
        if self._read < len(self.buffer):
            fact = self.buffer.item(self._read)
            self._read += 1
            return fact
        return None


class PipelineExecutor:
    """Compiles a program into a pull pipeline and drives it on demand.

    The executor exposes three granularities:

    * :meth:`first_answer` — pull only until one answer fact reaches a sink;
    * :meth:`next_answer` / :meth:`answers` — a lazy answer stream, pulling
      exactly as much of the pipeline as each answer requires;
    * :meth:`run_to_completion` — drain everything to the fixpoint (then EGD
      and constraint checks run, like the chase's post-pass) and return the
      :class:`~repro.core.chase.ChaseResult`.

    All three share state: answers already produced are never re-derived.
    """

    def __init__(
        self,
        program: Program,
        outputs: Sequence[str],
        input_managers: Mapping[str, RecordManager],
        strategy: TerminationStrategy,
        analysis: Optional[ProgramAnalysis] = None,
        config: Optional[ChaseConfig] = None,
        join_plans: Optional[Dict[int, RuleJoinPlan]] = None,
        page_size: int = 256,
        max_pages_per_segment: int = 64,
        eviction_policy: str = "lru",
        record_events: bool = True,
        tracer=None,
    ) -> None:
        self.program = program
        self.outputs = list(outputs)
        self.config = config or ChaseConfig()
        self.stats = PipelineStats()
        self.sched = PullScheduler(record_events=record_events)
        self.finished = False
        self.tracer = tracer
        #: Construction time, stamped as the ``t_create`` attribute of the
        #: streaming "chase" span; the span itself (and ``timings["chase"]``)
        #: starts at the *first pull* (``t_first_pull``) — streaming runs are
        #: lazy by design.
        self.created_at = time.perf_counter()
        self._chase_span = None

        # The chase kernel supplies firing semantics (assignments, nulls,
        # aggregates, Dom guards) plus the deferred EGD/constraint checks;
        # executor="naive" skips its own plan compilation — the pipeline
        # reuses the reasoner's compiled plans directly.
        engine = ChaseEngine(
            program,
            (),
            strategy=strategy,
            analysis=analysis,
            config=self.config,
            executor="naive",
        )
        self.result = ChaseResult(
            store=FactStore(),
            nodes=[],
            program=program,
            strategy=strategy,
            aggregates=engine.aggregates,
            executor="streaming",
        )
        buffers = BufferCache(
            page_size=page_size,
            max_pages_per_segment=max_pages_per_segment,
            policy=eviction_policy,
        )
        self.buffers = buffers
        self.ctx = _Context(
            engine, self.result, buffers, self.config, self.stats, tracer=tracer
        )
        self.registry = WrapperRegistry(strategy)

        # ---- query-driven relevance pruning --------------------------------
        hidden_targets = self._constraint_predicates(program)
        targets = list(self.outputs) + sorted(hidden_targets - set(self.outputs))
        relevant_predicates, relevant_rules = backward_slice(program, targets)
        self.stats.relevant_rules = len(relevant_rules)
        self.stats.pruned_rules = len(program.rules) - len(relevant_rules)

        # ---- nodes ----------------------------------------------------------
        self.sources: List[SourceNode] = []
        self.filters: List[RuleFilterNode] = []
        producers: Dict[str, List[PipelineNode]] = {}
        for predicate in sorted(input_managers):
            if predicate not in relevant_predicates:
                self.stats.pruned_sources += 1
                continue
            source = SourceNode(
                f"source:{predicate}", predicate, input_managers[predicate], self.ctx
            )
            source.wrapper = self.registry.wrapper_for(source.name)
            self.sources.append(source)
            producers.setdefault(predicate, []).append(source)
        for rule in relevant_rules:
            plan = (join_plans or {}).get(id(rule)) or compile_rule_join_plan(rule)
            name = f"rule:{rule.label}"
            node = RuleFilterNode(
                name, rule, plan, self.registry.wrapper_for(name), self.ctx
            )
            self.filters.append(node)
            for predicate in rule.head_predicate_names():
                producers.setdefault(predicate, []).append(node)

        # ---- pipes (cursors) ------------------------------------------------
        for node in self.filters:
            cursor_of: Dict[str, _Cursor] = {}
            for atom in node.rule.relational_body:
                for producer in producers.get(atom.predicate, []):
                    existing = cursor_of.get(producer.name)
                    if existing is None:
                        cursor_of[producer.name] = _Cursor(
                            producer, frozenset({atom.predicate})
                        )
                    else:
                        existing.wanted = existing.wanted | {atom.predicate}
            node.cursors = list(cursor_of.values())

        self.sinks: List[SinkNode] = []
        hidden_sinks: List[SinkNode] = []
        for predicate in self.outputs:
            sink = self._make_sink(predicate, producers, hidden=False)
            self.sinks.append(sink)
        for predicate in sorted(hidden_targets - set(self.outputs)):
            hidden_sinks.append(self._make_sink(predicate, producers, hidden=True))
        self.all_sinks: List[SinkNode] = self.sinks + hidden_sinks
        self._sink_rr = 0

    def _make_sink(
        self, predicate: str, producers: Dict[str, List[PipelineNode]], hidden: bool
    ) -> SinkNode:
        prefix = "drain" if hidden else "sink"
        sink = SinkNode(f"{prefix}:{predicate}", predicate, self.ctx, hidden=hidden)
        sink.cursors = [
            _Cursor(producer, frozenset({predicate}))
            for producer in producers.get(predicate, [])
        ]
        return sink

    @staticmethod
    def _constraint_predicates(program: Program) -> Set[str]:
        """Predicates the deferred EGD/constraint checks will scan."""
        needed: Set[str] = set()
        for constraint in program.constraints:
            for atom in constraint.body:
                if atom.predicate != DOM_PREDICATE:
                    needed.add(atom.predicate)
        for egd in program.egds:
            for atom in egd.body:
                if atom.predicate != DOM_PREDICATE:
                    needed.add(atom.predicate)
        return needed

    # ------------------------------------------------------------------ driving
    def _ensure_started(self) -> None:
        if self.ctx.started_at is None:
            self.ctx.started_at = time.perf_counter()
            # The deadline clock starts at the first pull, not at pipeline
            # construction — streaming runs are lazy by design.
            governor = ExecutionGovernor.for_config(self.config)
            self.ctx.governor = governor
            self.sched.governor = governor
            tracer = self.tracer
            if tracer is not None:
                if governor is not None:
                    governor.tracer = tracer
                self._chase_span = tracer.begin(
                    "chase",
                    "chase:streaming",
                    executor="streaming",
                    t_create=self.created_at,
                    t_first_pull=self.ctx.started_at,
                )

    def _check_budget(self) -> bool:
        """Sweep-boundary budget check; True when the run must stop."""
        governor = self.ctx.governor
        if governor is None or self.finished:
            return False
        stop = governor.round_status(
            self.ctx.sweep, len(self.ctx.store), self.result.chase_steps
        )
        if stop is None:
            return False
        self._stop(*stop)
        return True

    def _stop(self, status: str, detail: str) -> None:
        """End the run early with a structured status and partial results."""
        self.result.status = status
        self.result.stop_reason = detail
        self.result.warnings.append(
            f"streaming run stopped early ({status}): {detail}; "
            "the answers produced so far are a sound subset of the complete result"
        )
        self._finish()

    def _drive_once(self) -> bool:
        """One driver sweep: give every sink a pull; False at the fixpoint."""
        if self.tracer is None:
            return self._drive_once_inner()
        # Activate the tracer around the sweep so lazily-evaluated datasource
        # scan generators (which outlive any single phase span) can find it.
        with activate(self.tracer):
            return self._drive_once_inner()

    def _drive_once_inner(self) -> bool:
        self._ensure_started()
        if self._check_budget():
            return False
        self.ctx.sweep += 1
        self.stats.sweeps += 1
        self.ctx.store.current_round = self.ctx.sweep
        before = self.ctx.progress
        try:
            for sink in self.all_sinks:
                if sink.produce(self.sched):
                    return True
        except ExecutionStopped as stop:
            self._stop(stop.status, stop.detail)
            return False
        if self.ctx.progress == before:
            self._finish()
            return False
        return True

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        if self.result.status == STATUS_COMPLETE:
            self.ctx.engine.check_violations(self.result)
        self.result.rounds = self.stats.sweeps
        if self.ctx.started_at is not None:
            self.result.elapsed_seconds = time.perf_counter() - self.ctx.started_at
        extra = self.stats.as_dict()
        extra["pull_protocol"] = self.sched.stats()
        extra["buffer_evictions"] = self.buffers.total_evictions()
        self.result.extra_stats.update(extra)
        if len(self.ctx.store) > self.result.peak_resident_facts:
            self.result.peak_resident_facts = len(self.ctx.store)
        tracer = self.tracer
        if tracer is not None and self._chase_span is not None:
            chase_span = self._chase_span
            # One summary "rule" span per active filter, spanning its
            # [first, last] activity window; the accumulated busy time rides
            # along as a counter (the report prefers it over the window).
            for node in self.filters:
                if node.consumed == 0 and node.fires == 0:
                    continue
                label = node.rule.label or "rule"
                t0 = node.t_first if node.t_first is not None else chase_span.t_start
                t1 = node.t_last if node.t_last is not None else t0
                tracer.emit(
                    "rule",
                    f"rule:{label}",
                    t0,
                    t1,
                    parent=chase_span,
                    attrs={"rule": label, "node": node.name},
                    counters={
                        "fires": node.fires,
                        "candidates": node.candidates,
                        "deduped": node.candidates - node.fires,
                        "consumed": node.consumed,
                        "busy_seconds": node.busy_seconds,
                    },
                )
            metrics = tracer.metrics
            for key, value in self.sched.stats().items():
                metrics.counter(f"pull.{key}").inc(value)
                chase_span.counters[f"pull.{key}"] = value
            metrics.counter("buffer.evictions").inc(self.buffers.total_evictions())
            metrics.gauge("chase.peak_resident_facts").set_max(
                self.result.peak_resident_facts
            )
            chase_span.counters["facts"] = len(self.ctx.store)
            chase_span.counters["derived"] = self.result.chase_steps
            chase_span.counters["candidates"] = self.result.candidate_facts
            chase_span.counters["rounds"] = self.stats.sweeps
            chase_span.counters["peak_resident_facts"] = self.result.peak_resident_facts
            chase_span.attrs["status"] = self.result.status
            if self.result.stop_reason:
                chase_span.attrs["stop_reason"] = self.result.stop_reason
            tracer.unwind(chase_span)
            tracer.end(chase_span)

    # ------------------------------------------------------------------ answers
    def first_answer(self) -> Optional[Fact]:
        """Pull only until the first answer fact reaches a sink (early stop)."""
        while self.ctx.first_answer_fact is None and not self.finished:
            self._drive_once()
        return self.ctx.first_answer_fact

    def next_answer(self) -> Optional[Fact]:
        """The next not-yet-returned answer fact, pulling on demand."""
        while True:
            for _ in range(len(self.sinks) or 1):
                if not self.sinks:
                    break
                sink = self.sinks[self._sink_rr]
                self._sink_rr = (self._sink_rr + 1) % len(self.sinks)
                fact = sink.pop_unread()
                if fact is not None:
                    return fact
            if self.finished:
                return None
            self._drive_once()

    def answers(self) -> Iterator[Fact]:
        """Lazy stream of answer facts, in production order per sink rotation."""
        while True:
            fact = self.next_answer()
            if fact is None:
                return
            yield fact

    def run_to_completion(self) -> ChaseResult:
        """Drain the pipeline to the fixpoint and return the chase result."""
        if self.tracer is None:
            return self._run_to_completion_inner()
        with activate(self.tracer):
            return self._run_to_completion_inner()

    def _run_to_completion_inner(self) -> ChaseResult:
        self._ensure_started()
        while not self.finished:
            if self._check_budget():
                break
            before = self.ctx.progress
            self.ctx.sweep += 1
            self.stats.sweeps += 1
            self.ctx.store.current_round = self.ctx.sweep
            try:
                for sink in self.all_sinks:
                    while sink.produce(self.sched):
                        pass
            except ExecutionStopped as stop:
                self._stop(stop.status, stop.detail)
                break
            if self.ctx.progress == before:
                self._finish()
        return self.result

    # -------------------------------------------------------------- diagnostics
    def describe(self) -> str:
        """Human-readable pipeline topology (mirrors ``ReasoningAccessPlan.describe``)."""
        lines = ["Streaming pipeline:"]
        for source in self.sources:
            lines.append(
                f"  source:{source.predicate} [{type(source.manager).__name__}]"
            )
        for node in self.filters:
            feeds = ", ".join(c.producer.name for c in node.cursors) or "-"
            lines.append(f"  {node.name} <- {feeds}")
        for sink in self.all_sinks:
            feeds = ", ".join(c.producer.name for c in sink.cursors) or "-"
            lines.append(f"  {sink.name} <- {feeds}")
        return "\n".join(lines)
