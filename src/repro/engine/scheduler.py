"""Round-robin pull scheduling and runtime cycle management (Section 4).

The execution model of the Vadalog system is pull-based: sinks issue
``open()/next()/close()`` messages that propagate backwards through the
pipeline; when a filter has several predecessors it pulls from them in
**round-robin** order, which sustains a breadth-first application of the
rules.  Recursion induces two kinds of cycles:

* *runtime invocation cycles* — a ``next()`` call re-entering a filter that
  is already serving a ``next()``; the callee answers ``notifyCycle`` and the
  caller tries its other predecessors before giving up (``cyclic miss`` vs
  ``real miss``);
* *non-terminating sequences* — handled by the termination wrappers.

Two schedulers live here:

* :class:`RoundRobinScheduler` — the compile-time scheduler: fixes the
  round-robin rule order used by the materializing chase engine and records
  the invocation-cycle events one pull sweep *would* produce (a static
  simulation used by ``explain()`` and the architecture tests);
* :class:`PullScheduler` — the runtime driver of the streaming pipeline
  executor (:mod:`repro.engine.pipeline`): it owns the live invocation
  stack, classifies every pull as a hit, a cyclic miss (``notifyCycle``) or
  a real miss, and keeps the protocol counters the pipeline reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..core.rules import Program, Rule
from .plan import ReasoningAccessPlan


@dataclass
class PullEvent:
    """One recorded event of the pull protocol (for tracing and tests)."""

    caller: str
    callee: str
    kind: str  # "next", "hit", "cyclic-miss" or "real-miss"


@dataclass
class SchedulerReport:
    """Outcome of a scheduling pass over the plan."""

    rule_order: List[Rule] = field(default_factory=list)
    events: List[PullEvent] = field(default_factory=list)
    cyclic_misses: int = 0
    real_misses: int = 0
    recursive_components: int = 0

    def stats(self) -> Dict[str, int]:
        return {
            "rules": len(self.rule_order),
            "pull_events": len(self.events),
            "cyclic_misses": self.cyclic_misses,
            "real_misses": self.real_misses,
            "recursive_components": self.recursive_components,
        }


class RoundRobinScheduler:
    """Derives the rule application order and simulates the pull protocol."""

    def __init__(self, plan: ReasoningAccessPlan, program: Program) -> None:
        self.plan = plan
        self.program = program

    def schedule(self) -> SchedulerReport:
        """Compute the round-robin rule order and trace one pull sweep."""
        report = SchedulerReport()
        report.rule_order = self.plan.topological_rule_order(self.program)
        report.recursive_components = len(self.plan.recursive_components())
        self._trace_pull(report)
        return report

    # ------------------------------------------------------------------ tracing
    def _trace_pull(self, report: SchedulerReport) -> None:
        """Simulate one ``next()`` sweep initiated by every sink.

        Each node pulls from its predecessors in round-robin (plan) order.  A
        predecessor already on the current invocation stack answers with a
        cyclic miss (``notifyCycle``); a source node always answers
        positively; a node none of whose predecessors could answer reports a
        real miss.
        """
        for sink in self.plan.sinks():
            self._pull(sink.name, [], report, set())

    def _pull(
        self,
        node_name: str,
        stack: List[str],
        report: SchedulerReport,
        satisfied: Set[str],
    ) -> bool:
        node = self.plan.node_by_name[node_name]
        if node.kind == "source":
            return True
        if node_name in satisfied:
            return True
        predecessors = self.plan.predecessors(node_name)
        if not predecessors:
            report.real_misses += 1
            return False
        any_answer = False
        for predecessor in predecessors:
            if predecessor in stack:
                report.events.append(PullEvent(node_name, predecessor, "cyclic-miss"))
                report.cyclic_misses += 1
                continue
            report.events.append(PullEvent(node_name, predecessor, "next"))
            answered = self._pull(predecessor, stack + [node_name], report, satisfied)
            any_answer = any_answer or answered
        if any_answer:
            satisfied.add(node_name)
        else:
            report.events.append(PullEvent(node_name, node_name, "real-miss"))
            report.real_misses += 1
        return any_answer

    def rule_order(self) -> List[Rule]:
        """Just the round-robin rule order (producers before consumers)."""
        return self.plan.topological_rule_order(self.program)


class PullScheduler:
    """Runtime state of the pull protocol: invocation stack, events, counters.

    The streaming pipeline's nodes delegate all protocol bookkeeping here:
    before recursing into a predecessor's ``produce()`` a node asks
    :meth:`on_stack`; a positive answer is the paper's ``notifyCycle`` — the
    callee is already serving a ``next()`` further up the invocation chain,
    so the caller records a **cyclic miss** and tries its other predecessors
    before giving up with a **real miss**.  The event log is capped (the
    counters stay exact) so long runs keep a bounded trace prefix — enough
    for the protocol tests and ``explain``-style inspection without holding
    an unbounded event history in memory.
    """

    def __init__(self, record_events: bool = True, max_events: int = 10_000) -> None:
        self.record_events = record_events
        self.max_events = max_events
        #: Optional per-run :class:`~repro.core.limits.ExecutionGovernor`;
        #: when set, every ``next()`` is a (strided) deadline/cancellation
        #: checkpoint — the streaming equivalent of "inside long joins".
        self.governor = None
        self.events: List[PullEvent] = []
        self.next_calls = 0
        self.hits = 0
        self.cyclic_misses = 0
        self.real_misses = 0
        #: Real misses answered from the barren-node memo (the producer had
        #: already proved its upstream cone dry at the current progress
        #: level) — a sub-count of ``real_misses``.
        self.barren_skips = 0
        self._stack: List[str] = []
        self._on_stack: Set[str] = set()

    # -- invocation stack ------------------------------------------------------
    def on_stack(self, name: str) -> bool:
        return name in self._on_stack

    def enter(self, name: str) -> None:
        """Push a node serving a ``next()`` onto the invocation stack."""
        self._stack.append(name)
        self._on_stack.add(name)

    def leave(self, name: str) -> None:
        popped = self._stack.pop()
        assert popped == name, f"unbalanced pull stack: popped {popped}, expected {name}"
        if name not in self._stack:
            self._on_stack.discard(name)

    def depth(self) -> int:
        return len(self._stack)

    # -- event recording -------------------------------------------------------
    def _record(self, caller: str, callee: str, kind: str) -> None:
        if self.record_events and len(self.events) < self.max_events:
            self.events.append(PullEvent(caller, callee, kind))

    def record_next(self, caller: str, callee: str) -> None:
        governor = self.governor
        if governor is not None:
            governor.tick()
        self.next_calls += 1
        self._record(caller, callee, "next")

    def record_hit(self, caller: str, callee: str) -> None:
        self.hits += 1
        self._record(caller, callee, "hit")

    def record_cyclic_miss(self, caller: str, callee: str) -> None:
        self.cyclic_misses += 1
        self._record(caller, callee, "cyclic-miss")

    def record_real_miss(self, caller: str, callee: str) -> None:
        self.real_misses += 1
        self._record(caller, callee, "real-miss")

    def record_barren_skip(self, caller: str, callee: str) -> None:
        """Count a real miss served by the barren memo (no event: the
        follow-up :meth:`record_real_miss` records the classification)."""
        self.barren_skips += 1

    def stats(self) -> Dict[str, int]:
        return {
            "next_calls": self.next_calls,
            "hits": self.hits,
            "cyclic_misses": self.cyclic_misses,
            "real_misses": self.real_misses,
            "barren_skips": self.barren_skips,
        }
