"""The Vadalog reasoner facade — the main public entry point of the library.

The reasoner ties the pieces of Section 3 and Section 4 together, following
the four compilation steps of the pipeline architecture:

1. the **logic optimizer** rewrites the rules: duplicate removal, multiple-
   head elimination, isolation of existentials into linear rules and, when
   needed, harmful-join elimination (Section 3.2);
2. the **logic compiler** produces the reasoning access plan
   (:mod:`repro.engine.plan`);
3. the **execution optimizer** orders the rule filters (round-robin order
   from the scheduler, producers before consumers);
4. the **query compiler / executor** compiles every rule body into a
   slot-machine join plan (:func:`repro.engine.plan.compile_join_plans` —
   selectivity-ordered atoms, variable→slot maps, join-key positions), runs
   the chase through the compiled executors with the warded termination
   strategy (Algorithm 1) and extracts the answers, applying the
   post-processing annotations.  Pass ``executor="naive"`` to fall back to
   the interpreted matcher (the reference path for differential testing).

Typical usage::

    from repro import VadalogReasoner

    reasoner = VadalogReasoner('''
        @output("Control").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        Control(X, Z) :- Control(X, Y), Own(Y, Z, W), V = msum(W, <Y>), V > 0.5.
    ''')
    result = reasoner.reason(database={"Own": [("a", "b", 0.6), ("b", "c", 0.6)]})
    result.answers.ground_tuples("Control")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.chase import ChaseConfig, ChaseEngine, ChaseResult
from ..core.harmful_joins import (
    HarmfulJoinEliminationResult,
    UnsupportedHarmfulJoin,
    eliminate_harmful_joins,
)
from ..core.atoms import Fact
from ..core.parser import parse_program
from ..core.query import AnswerSet, Query, extract_answers
from ..core.rules import Program
from ..core.terms import Constant
from ..core.termination import TerminationStrategy, strategy_by_name
from ..core.transform import is_auxiliary_predicate, normalize_for_chase
from ..core.wardedness import ProgramAnalysis, analyse_program
from ..storage.database import Database
from .annotations import apply_post_directives, collect_bindings, load_bound_facts
from .plan import ReasoningAccessPlan, RuleJoinPlan, compile_join_plans, compile_plan
from .scheduler import RoundRobinScheduler, SchedulerReport
from .wrappers import WrapperRegistry

DatabaseLike = Union[Database, Mapping[str, Iterable[Sequence[object]]], Iterable[Fact], None]


@dataclass
class ReasoningResult:
    """Everything produced by one reasoning run."""

    answers: AnswerSet
    chase: ChaseResult
    analysis: ProgramAnalysis
    plan: ReasoningAccessPlan
    scheduler: SchedulerReport
    harmful_join_rewriting: Optional[HarmfulJoinEliminationResult]
    warnings: List[str] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)

    def facts(self, predicate: str) -> Tuple[Fact, ...]:
        return self.answers.facts(predicate)

    def tuples(self, predicate: str):
        return self.answers.tuples(predicate)

    def ground_tuples(self, predicate: str):
        return self.answers.ground_tuples(predicate)

    def stats(self) -> Dict[str, object]:
        data = dict(self.chase.stats())
        data.update({f"time_{k}": v for k, v in self.timings.items()})
        data["warnings"] = list(self.warnings)
        return data


class VadalogReasoner:
    """High-level reasoner over Vadalog programs (Warded Datalog± core)."""

    def __init__(
        self,
        program: Union[Program, str],
        strategy: Union[str, TerminationStrategy, None] = "warded",
        eliminate_harmful: bool = True,
        normalize: bool = True,
        chase_config: Optional[ChaseConfig] = None,
        base_path: Optional[str] = None,
        executor: str = "compiled",
    ) -> None:
        if executor not in ("compiled", "naive"):
            raise ValueError(f"unknown executor {executor!r}; use 'compiled' or 'naive'")
        self.original_program = parse_program(program) if isinstance(program, str) else program
        self._strategy_spec = strategy
        self.eliminate_harmful = eliminate_harmful
        self.normalize = normalize
        self.chase_config = chase_config or ChaseConfig()
        self.base_path = base_path
        self.executor = executor
        self.warnings: List[str] = []
        self.harmful_join_rewriting: Optional[HarmfulJoinEliminationResult] = None

        self.program = self._optimize(self.original_program)
        self.analysis = analyse_program(self.program)
        self.plan = compile_plan(self.program)
        self.scheduler = RoundRobinScheduler(self.plan, self.program)
        self.scheduler_report = self.scheduler.schedule()
        self._order_rules(self.scheduler_report)
        # Step 4a (query compiler): compile every rule body into its
        # slot-machine join plan once; reasoning runs reuse the plans.
        self.join_plans: Dict[int, RuleJoinPlan] = (
            compile_join_plans(self.program) if executor == "compiled" else {}
        )

    # -------------------------------------------------------------- compilation
    def _optimize(self, program: Program) -> Program:
        """Step 1: the logic optimizer (elementary + complex rewritings)."""
        optimized = program
        analysis = analyse_program(optimized)
        if not analysis.is_warded:
            self.warnings.append(
                "the program is not warded: termination of the chase is not guaranteed "
                "by the warded strategy"
            )
        if self.eliminate_harmful and analysis.has_harmful_joins:
            try:
                rewriting = eliminate_harmful_joins(optimized)
                self.harmful_join_rewriting = rewriting
                optimized = rewriting.program
            except UnsupportedHarmfulJoin as exc:
                self.warnings.append(
                    f"harmful-join elimination skipped ({exc}); answers involving "
                    "labelled nulls joined harmfully may be incomplete"
                )
        if self.normalize:
            optimized = normalize_for_chase(optimized)
        return optimized

    def _order_rules(self, report: SchedulerReport) -> None:
        """Step 3: the execution optimizer fixes the round-robin rule order."""
        if report.rule_order and len(report.rule_order) == len(self.program.rules):
            self.program.rules = list(report.rule_order)

    def _make_strategy(self) -> TerminationStrategy:
        if isinstance(self._strategy_spec, TerminationStrategy):
            return self._strategy_spec
        if self._strategy_spec is None:
            return strategy_by_name("warded")
        return strategy_by_name(self._strategy_spec)

    # ----------------------------------------------------------------- running
    def reason(
        self,
        database: DatabaseLike = None,
        outputs: Optional[Iterable[str]] = None,
        certain: bool = False,
        strategy: Union[str, TerminationStrategy, None] = None,
    ) -> ReasoningResult:
        """Run the reasoning task and return answers plus diagnostics."""
        timings: Dict[str, float] = {}
        started = time.perf_counter()
        facts = list(self._database_facts(database))
        bindings = collect_bindings(self.program, self.base_path)
        facts.extend(load_bound_facts(bindings))
        timings["load"] = time.perf_counter() - started

        if strategy is not None:
            chosen: TerminationStrategy = (
                strategy if isinstance(strategy, TerminationStrategy) else strategy_by_name(strategy)
            )
        else:
            chosen = self._make_strategy()
        registry = WrapperRegistry(chosen)
        for rule in self.program.rules:
            registry.wrapper_for(f"rule:{rule.label}")

        chase_started = time.perf_counter()
        engine = ChaseEngine(
            self.program,
            facts,
            strategy=chosen,
            analysis=self.analysis,
            config=self.chase_config,
            executor=self.executor,
            join_plans=self.join_plans,
        )
        chase_result = engine.run()
        timings["chase"] = time.perf_counter() - chase_started

        answer_started = time.perf_counter()
        output_predicates = self._output_predicates(outputs)
        query = Query(tuple(output_predicates), certain=certain)
        answers = extract_answers(chase_result, query)
        answers = apply_post_directives(answers, bindings.post_directives)
        timings["answers"] = time.perf_counter() - answer_started
        timings["total"] = time.perf_counter() - started

        return ReasoningResult(
            answers=answers,
            chase=chase_result,
            analysis=self.analysis,
            plan=self.plan,
            scheduler=self.scheduler_report,
            harmful_join_rewriting=self.harmful_join_rewriting,
            warnings=list(self.warnings),
            timings=timings,
        )

    # ----------------------------------------------------------------- helpers
    def _output_predicates(self, outputs: Optional[Iterable[str]]) -> List[str]:
        if outputs is not None:
            return list(outputs)
        declared = self.original_program.output_predicates()
        return sorted(p for p in declared if not is_auxiliary_predicate(p))

    @staticmethod
    def _database_facts(database: DatabaseLike) -> List[Fact]:
        if database is None:
            return []
        if isinstance(database, Database):
            return database.facts()
        if isinstance(database, Mapping):
            facts: List[Fact] = []
            for predicate, rows in database.items():
                for row in rows:
                    facts.append(Fact(predicate, [Constant(v) for v in row]))
            return facts
        return [f for f in database]  # already facts

    def explain(self) -> str:
        """Human-readable description of the compiled program and plan."""
        lines = [
            f"Program: {len(self.program.rules)} rules "
            f"({self.analysis.fragment()} fragment)",
        ]
        summary = self.analysis.summary()
        lines.append(
            "  linear rules: {linear_rules}, join rules: {join_rules}, "
            "existential rules: {existential_rules}, harmful joins: {harmful_joins}".format(**summary)
        )
        if self.harmful_join_rewriting and self.harmful_join_rewriting.changed:
            lines.append(
                f"  harmful-join elimination introduced "
                f"{len(self.harmful_join_rewriting.tracking_predicates)} tracking predicates"
            )
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        lines.append(self.plan.describe())
        lines.append(
            "Scheduler: "
            + ", ".join(f"{k}={v}" for k, v in self.scheduler_report.stats().items())
        )
        return "\n".join(lines)


def reason(
    program: Union[Program, str],
    database: DatabaseLike = None,
    outputs: Optional[Iterable[str]] = None,
    certain: bool = False,
    strategy: Union[str, TerminationStrategy, None] = "warded",
    executor: str = "compiled",
) -> ReasoningResult:
    """One-call helper: build a :class:`VadalogReasoner` and run it."""
    reasoner = VadalogReasoner(program, strategy=strategy, executor=executor)
    return reasoner.reason(database=database, outputs=outputs, certain=certain)
