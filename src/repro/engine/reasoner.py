"""The Vadalog reasoner facade — the main public entry point of the library.

The reasoner ties the pieces of Section 3 and Section 4 together, following
the four compilation steps of the pipeline architecture:

1. the **logic optimizer** rewrites the rules: duplicate removal, multiple-
   head elimination, isolation of existentials into linear rules and, when
   needed, harmful-join elimination (Section 3.2);
2. the **logic compiler** produces the reasoning access plan
   (:mod:`repro.engine.plan`);
3. the **execution optimizer** orders the rule filters (round-robin order
   from the scheduler, producers before consumers);
4. the **query compiler / executor** compiles every rule body into a
   slot-machine join plan (:func:`repro.engine.plan.compile_join_plans` —
   selectivity-ordered atoms, variable→slot maps, join-key positions), runs
   the chase through the compiled executors with the warded termination
   strategy (Algorithm 1) and extracts the answers, applying the
   post-processing annotations.  Pass ``executor="naive"`` to fall back to
   the interpreted matcher (the reference path for differential testing),
   ``executor="streaming"`` for the pull-based pipeline runtime
   (:mod:`repro.engine.pipeline`): query-driven, buffer-backed and able to
   return first answers before the model is fully materialized —
   :meth:`VadalogReasoner.stream` exposes the lazy variant — or
   ``executor="parallel"`` for the sharded worker-pool chase
   (:mod:`repro.engine.partition`): the delta is hash-partitioned on the
   seed join key across ``parallelism=`` workers and merged through a
   single-writer admission stage, answer-identical to ``compiled``.

Typical usage::

    from repro import VadalogReasoner

    reasoner = VadalogReasoner('''
        @output("Control").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        Control(X, Z) :- Control(X, Y), Own(Y, Z, W), V = msum(W, <Y>), V > 0.5.
    ''')
    result = reasoner.reason(database={"Own": [("a", "b", 0.6), ("b", "c", 0.6)]})
    result.answers.ground_tuples("Control")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.chase import ChaseConfig, ChaseEngine, ChaseResult
from ..core.limits import STATUS_COMPLETE, CancellationToken, ExecutionBudget
from ..core.harmful_joins import (
    HarmfulJoinEliminationResult,
    UnsupportedHarmfulJoin,
    eliminate_harmful_joins,
)
from ..core.atoms import Atom, Fact
from ..core.magic import (
    REWRITES,
    MagicRewriteError,
    MagicRewriteResult,
    rewrite_with_magic,
)
from ..core.parser import parse_atom, parse_program
from ..core.query import AnswerSet, Query, extract_answers
from ..core.rules import Program
from ..core.terms import Constant
from ..core.termination import TerminationStrategy, strategy_by_name
from ..core.transform import is_auxiliary_predicate, normalize_for_chase
from ..core.wardedness import ProgramAnalysis, analyse_program
from ..obs.report import render_report
from ..obs.trace import Tracer, activate, as_tracer
from ..storage.database import Database
from .annotations import (
    BindingSet,
    apply_post_directives,
    collect_bindings,
    load_bound_facts,
    write_output_bindings,
)
from .pipeline import PipelineExecutor
from .plan import (
    ReasoningAccessPlan,
    RuleJoinPlan,
    compile_join_plans,
    compile_plan,
    compile_source_pushdowns,
)
from .record_managers import (
    DataSourceRecordManager,
    FactsRecordManager,
    RecordManager,
    managers_for_database,
    managers_for_facts,
)
from .scheduler import RoundRobinScheduler, SchedulerReport
from .wrappers import WrapperRegistry

EXECUTORS = ("compiled", "naive", "streaming", "parallel")

DatabaseLike = Union[Database, Mapping[str, Iterable[Sequence[object]]], Iterable[Fact], None]


@dataclass
class ReasoningResult:
    """Everything produced by one reasoning run.

    Eager runs (``reason()``) arrive with :attr:`answers` fully populated.
    Streaming runs created by :meth:`VadalogReasoner.stream` additionally
    carry a live :attr:`pipeline`; :meth:`first_answer` and
    :meth:`iter_answers` then pull the pipeline on demand, and
    :meth:`complete` drains it and fills :attr:`answers` (post-processing
    directives included) exactly like an eager run.
    """

    answers: AnswerSet
    chase: ChaseResult
    analysis: ProgramAnalysis
    plan: ReasoningAccessPlan
    scheduler: SchedulerReport
    harmful_join_rewriting: Optional[HarmfulJoinEliminationResult]
    warnings: List[str] = field(default_factory=list)
    #: Coarse per-phase wall-clock seconds (``rewrite``/``load``/``chase``/
    #: ``answers``/``total``).  Streaming runs measure ``chase`` from the
    #: *first pull* (the pipeline is lazy — nothing runs at build time);
    #: the trace's chase span records both clocks as ``t_create`` and
    #: ``t_first_pull`` attrs.  Thin legacy view: traced runs carry the same
    #: phases as spans on :attr:`trace` — prefer :meth:`run_report`.
    timings: Dict[str, float] = field(default_factory=dict)
    #: The live streaming pipeline (lazy runs and eager streaming runs).
    pipeline: Optional[PipelineExecutor] = None
    #: Per-predicate datasource counters (``@bind`` traffic: rows scanned,
    #: pushdown applied, cache hits, rows written back).  Empty when the run
    #: used no external bindings.  Thin legacy view: traced runs record each
    #: completed scan as a ``source-scan`` span with the same counters.
    source_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Per-round shard-balance statistics of the parallel executor: one dict
    #: per chase round with the per-shard seed-fact and match counts and the
    #: busiest-to-mean imbalance ratio.  Empty on the other executors.
    #: Thin legacy view: traced runs carry per-shard ``shard-match`` spans
    #: (with worker pids) under each round span.
    shard_balance: List[Dict[str, object]] = field(default_factory=list)
    #: The run's telemetry (:class:`repro.obs.Tracer`) when the run was
    #: started with ``trace=``; ``None`` otherwise.  Spans are in
    #: ``trace.spans()``, aggregated counters in ``trace.metrics``.
    trace: Optional[Tracer] = None
    #: The magic-set rewriting applied to this run (``reason(query=...,
    #: rewrite="magic")``), including guard/fallback/seed counters; ``None``
    #: on runs without a query or with ``rewrite="none"``.
    magic_rewriting: Optional[MagicRewriteResult] = None
    _finalizer: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def status(self) -> str:
        """Structured run outcome: ``"complete"``, ``"deadline_exceeded"``,
        ``"budget_exceeded"`` or ``"cancelled"`` (see :mod:`repro.core.limits`).

        Non-complete runs carry the sound partial materialisation derived
        before the stop — the chase is monotone, so every answer present is
        an answer of the complete run too.
        """
        return self.chase.status

    @property
    def stop_reason(self) -> Optional[str]:
        """Why a non-complete run stopped (``None`` for complete runs)."""
        return self.chase.stop_reason

    def is_complete(self) -> bool:
        return self.chase.status == STATUS_COMPLETE

    def facts(self, predicate: str) -> Tuple[Fact, ...]:
        return self.answers.facts(predicate)

    def tuples(self, predicate: str):
        return self.answers.tuples(predicate)

    def ground_tuples(self, predicate: str):
        return self.answers.ground_tuples(predicate)

    # ------------------------------------------------------- streaming access
    def first_answer(self) -> Optional[Fact]:
        """The first answer fact, pulling the pipeline only as far as needed.

        On a lazy streaming result this *stops* as soon as any sink produces
        a fact — the rest of the model is not materialized.  On an eager
        result it simply returns the first extracted answer.
        """
        if self.pipeline is not None:
            return self.pipeline.first_answer()
        for facts in self.answers.facts_by_predicate.values():
            if facts:
                return facts[0]
        return None

    def iter_answers(self):
        """Lazily iterate answer facts; finalizes :attr:`answers` when drained.

        Streamed facts are the raw sink output (universal answers, before
        isomorphic deduplication and monotonic-aggregate reduction); the
        post-processed view is in :attr:`answers` after :meth:`complete`.
        """
        if self.pipeline is None:
            yield from self.answers.facts()
            return
        yield from self.pipeline.answers()
        self._finalize()

    def complete(self) -> "ReasoningResult":
        """Drain a lazy streaming run and populate :attr:`answers`."""
        if self.pipeline is not None:
            self.pipeline.run_to_completion()
            self._finalize()
        return self

    def _finalize(self) -> None:
        if self._finalizer is not None:
            finalizer, self._finalizer = self._finalizer, None
            finalizer(self)

    def stats(self) -> Dict[str, object]:
        data = dict(self.chase.stats())
        data.update({f"time_{k}": v for k, v in self.timings.items()})
        data["warnings"] = list(self.warnings)
        if self.source_stats:
            data["datasources"] = dict(self.source_stats)
        if self.magic_rewriting is not None:
            data.update(self.magic_rewriting.stats())
        return data

    def run_report(self, limit: int = 5) -> str:
        """Human-readable run summary (phases, top rules, rounds, sources).

        Traced runs (``reason(trace=...)``) render the full span tree
        aggregates; untraced runs fall back to a coarse summary built from
        :meth:`stats` and :attr:`timings`.
        """
        return render_report(self, limit=limit)


@dataclass
class _RunSpec:
    """Everything one reasoning run needs: program, plans and seed facts.

    Runs without a query reuse the reasoner's compiled state; query runs
    with ``rewrite="magic"`` carry the magic-rewritten program with its own
    analysis/plans plus the ``_aux_magic_*`` seed facts.
    """

    program: Program
    analysis: ProgramAnalysis
    join_plans: Dict[int, RuleJoinPlan]
    outputs: List[str]
    seeds: List[Fact] = field(default_factory=list)
    query_atom: Optional[Atom] = None
    rewriting: Optional[MagicRewriteResult] = None


class VadalogReasoner:
    """High-level reasoner over Vadalog programs (Warded Datalog± core)."""

    def __init__(
        self,
        program: Union[Program, str],
        strategy: Union[str, TerminationStrategy, None] = "warded",
        eliminate_harmful: bool = True,
        normalize: bool = True,
        chase_config: Optional[ChaseConfig] = None,
        base_path: Optional[str] = None,
        executor: str = "compiled",
        parallelism: Optional[int] = None,
        parallel_backend: str = "threads",
        parallel_worker_timeout: Optional[float] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; use one of {', '.join(EXECUTORS)}"
            )
        self.original_program = parse_program(program) if isinstance(program, str) else program
        self._strategy_spec = strategy
        self.eliminate_harmful = eliminate_harmful
        self.normalize = normalize
        self.chase_config = chase_config or ChaseConfig()
        self.base_path = base_path
        self.executor = executor
        #: Worker/shard count of the parallel executor (``None`` = auto:
        #: ``min(4, cpu_count)``); ignored by the other executors.
        self.parallelism = parallelism
        #: ``"threads"`` (persistent pool, shared read snapshot) or
        #: ``"fork"`` (per-round process pool, copy-on-write snapshot).
        self.parallel_backend = parallel_backend
        #: Per-shard result timeout (seconds); a shard that exceeds it is
        #: treated as hung and goes through worker recovery (retry, then
        #: degrade to sequential).  ``None`` = wait indefinitely.
        self.parallel_worker_timeout = parallel_worker_timeout
        self.warnings: List[str] = []
        self.harmful_join_rewriting: Optional[HarmfulJoinEliminationResult] = None
        #: ``@bind`` resolution is memoized across runs so the per-source
        #: page caches persist — a second ``reason()`` on the same reasoner
        #: reads sources from memory, not the backend.
        self._bindings: Optional[BindingSet] = None
        #: Magic-rewritten run specs, memoized per query atom (a production
        #: reasoner answers the same point query many times; the rewriting,
        #: analysis and join plans are reused, only the chase re-runs).
        self._magic_cache: Dict[Tuple[str, Tuple], _RunSpec] = {}

        self.program = self._optimize(self.original_program)
        self.analysis = analyse_program(self.program)
        self.plan = compile_plan(self.program)
        self.scheduler = RoundRobinScheduler(self.plan, self.program)
        self.scheduler_report = self.scheduler.schedule()
        self._order_rules(self.scheduler_report)
        # Step 4a (query compiler): compile every rule body into its
        # slot-machine join plan once; reasoning runs reuse the plans.  The
        # streaming pipeline executes the same plans incrementally.
        self.join_plans: Dict[int, RuleJoinPlan] = (
            compile_join_plans(self.program) if executor != "naive" else {}
        )

    # -------------------------------------------------------------- compilation
    def _optimize(self, program: Program) -> Program:
        """Step 1: the logic optimizer (elementary + complex rewritings)."""
        optimized = program
        analysis = analyse_program(optimized)
        if not analysis.is_warded:
            self.warnings.append(
                "the program is not warded: termination of the chase is not guaranteed "
                "by the warded strategy"
            )
        if self.eliminate_harmful and analysis.has_harmful_joins:
            try:
                rewriting = eliminate_harmful_joins(optimized)
                self.harmful_join_rewriting = rewriting
                optimized = rewriting.program
            except UnsupportedHarmfulJoin as exc:
                self.warnings.append(
                    f"harmful-join elimination skipped ({exc}); answers involving "
                    "labelled nulls joined harmfully may be incomplete"
                )
        if self.normalize:
            optimized = normalize_for_chase(optimized)
        return optimized

    def _order_rules(self, report: SchedulerReport) -> None:
        """Step 3: the execution optimizer fixes the round-robin rule order."""
        if report.rule_order and len(report.rule_order) == len(self.program.rules):
            self.program.rules = list(report.rule_order)

    def _make_strategy(self) -> TerminationStrategy:
        if isinstance(self._strategy_spec, TerminationStrategy):
            return self._strategy_spec
        if self._strategy_spec is None:
            return strategy_by_name("warded")
        return strategy_by_name(self._strategy_spec)

    # ----------------------------------------------------------------- running
    def reason(
        self,
        database: DatabaseLike = None,
        outputs: Optional[Iterable[str]] = None,
        certain: bool = False,
        strategy: Union[str, TerminationStrategy, None] = None,
        query: Union[str, Atom, None] = None,
        rewrite: Optional[str] = None,
        deadline: Optional[float] = None,
        budget: Optional[ExecutionBudget] = None,
        cancel: Optional[CancellationToken] = None,
        trace: object = None,
    ) -> ReasoningResult:
        """Run the reasoning task and return answers plus diagnostics.

        ``query`` asks for a single predicate with some arguments bound to
        constants (``query='Control("f0", Y)'`` — a string or an
        :class:`~repro.core.atoms.Atom`); answers are the matching facts of
        that predicate and ``outputs`` is ignored.  ``rewrite`` selects the
        query-driven logic optimization: ``"magic"`` (the default with a
        query) applies the existential-safe magic-set rewriting of
        :mod:`repro.core.magic` so every executor only derives facts the
        query can observe; ``"none"`` evaluates the full program and
        filters.  Both return identical answers — the rewriting only prunes
        derivations no answer depends on.  Query runs do not write back to
        ``@output`` bindings (their answer set is intentionally partial).

        ``deadline`` (wall-clock seconds), ``budget`` (an
        :class:`~repro.core.limits.ExecutionBudget`) and ``cancel`` (a
        :class:`~repro.core.limits.CancellationToken`) bound the run: when
        any of them triggers, the run ends gracefully with
        ``result.status != "complete"`` and the sound partial answers
        derived so far, instead of raising.  ``deadline`` is shorthand for
        ``budget=ExecutionBudget(deadline_seconds=...)`` and overrides the
        budget's own deadline when both are given.

        ``trace`` opts the run into the telemetry layer of :mod:`repro.obs`:
        ``True`` records spans in memory (inspect via ``result.trace`` /
        ``result.run_report()``), a path string writes a JSONL trace file, a
        ready-made :class:`repro.obs.Tracer` is used as-is.  The default
        ``None`` is the zero-overhead null tracer — the run is bit-identical
        to an untraced one.
        """
        tracer = as_tracer(trace)
        if tracer is None:
            return self._reason_impl(
                database, outputs, certain, strategy, query, rewrite,
                deadline, budget, cancel, tracer=None,
            )
        run_span = tracer.begin(
            "run",
            f"reason:{self.executor}",
            executor=self.executor,
            query=str(query) if query is not None else None,
        )
        try:
            with activate(tracer):
                result = self._reason_impl(
                    database, outputs, certain, strategy, query, rewrite,
                    deadline, budget, cancel, tracer=tracer,
                )
        except BaseException as exc:
            tracer.end(run_span, status="error", error=repr(exc))
            tracer.finish()
            raise
        chase = result.chase
        run_span.counters["facts"] = len(chase.store)
        run_span.counters["derived"] = chase.chase_steps
        run_span.counters["rounds"] = chase.rounds
        run_span.counters["peak_resident_facts"] = chase.peak_resident_facts
        run_span.attrs["status"] = chase.status
        if chase.stop_reason is not None:
            run_span.attrs["stop_reason"] = chase.stop_reason
        tracer.end(run_span)
        tracer.finish()
        result.trace = tracer
        return result

    def _reason_impl(
        self,
        database: DatabaseLike,
        outputs: Optional[Iterable[str]],
        certain: bool,
        strategy: Union[str, TerminationStrategy, None],
        query: Union[str, Atom, None],
        rewrite: Optional[str],
        deadline: Optional[float],
        budget: Optional[ExecutionBudget],
        cancel: Optional[CancellationToken],
        tracer: Optional[Tracer],
    ) -> ReasoningResult:
        timings: Dict[str, float] = {}
        started = time.perf_counter()
        chosen = self._resolve_strategy(strategy)
        config = self._effective_config(deadline, budget, cancel)
        rewrite_span = tracer.begin("rewrite", "rewrite") if tracer is not None else None
        spec = self._prepare_run(outputs, query, rewrite)
        if rewrite_span is not None:
            rewrite_span.attrs["magic"] = bool(
                spec.rewriting is not None and spec.rewriting.changed
            )
            tracer.end(rewrite_span)
        timings["rewrite"] = time.perf_counter() - started
        output_predicates = spec.outputs
        bindings = self._collect_bindings(output_predicates)

        if self.executor == "streaming":
            load_span = tracer.begin("load", "load") if tracer is not None else None
            pipeline = self._build_pipeline(
                database, bindings, chosen, output_predicates, spec, config=config,
                tracer=tracer,
            )
            if load_span is not None:
                tracer.end(load_span)
            timings["load"] = time.perf_counter() - started
            chase_started = time.perf_counter()
            chase_result = pipeline.run_to_completion()
            timings["chase"] = time.perf_counter() - chase_started
        else:
            pipeline = None
            load_span = tracer.begin("load", "load") if tracer is not None else None
            facts = list(self._database_facts(database))
            facts.extend(load_bound_facts(bindings))
            facts.extend(spec.seeds)
            if load_span is not None:
                load_span.counters["facts"] = len(facts)
                tracer.end(load_span)
            timings["load"] = time.perf_counter() - started

            registry = WrapperRegistry(chosen)
            for rule in spec.program.rules:
                registry.wrapper_for(f"rule:{rule.label}")

            chase_started = time.perf_counter()
            if self.executor == "parallel":
                from .partition import ParallelChaseEngine

                engine: ChaseEngine = ParallelChaseEngine(
                    spec.program,
                    facts,
                    strategy=chosen,
                    analysis=spec.analysis,
                    config=config,
                    join_plans=spec.join_plans,
                    parallelism=self.parallelism,
                    backend=self.parallel_backend,
                    worker_timeout=self.parallel_worker_timeout,
                    tracer=tracer,
                )
            else:
                engine = ChaseEngine(
                    spec.program,
                    facts,
                    strategy=chosen,
                    analysis=spec.analysis,
                    config=config,
                    executor=self.executor,
                    join_plans=spec.join_plans,
                    tracer=tracer,
                )
            chase_result = engine.run()
            timings["chase"] = time.perf_counter() - chase_started

        answer_started = time.perf_counter()
        answers_span = tracer.begin("answers", "answers") if tracer is not None else None
        query_spec = Query(tuple(output_predicates), certain=certain)
        answers = extract_answers(chase_result, query_spec)
        answers = apply_post_directives(answers, bindings.post_directives)
        if spec.query_atom is not None:
            answers = _filter_answers(answers, spec.query_atom)
        else:
            write_output_bindings(bindings, answers, output_predicates)
        if answers_span is not None:
            answers_span.counters["answers"] = sum(
                len(facts) for facts in answers.facts_by_predicate.values()
            )
            tracer.end(answers_span)
        timings["answers"] = time.perf_counter() - answer_started
        if chase_result.first_answer_seconds is not None:
            timings["first_answer"] = chase_result.first_answer_seconds
        timings["total"] = time.perf_counter() - started

        return ReasoningResult(
            answers=answers,
            chase=chase_result,
            analysis=spec.analysis,
            plan=self.plan,
            scheduler=self.scheduler_report,
            harmful_join_rewriting=self.harmful_join_rewriting,
            warnings=list(self.warnings) + list(chase_result.warnings),
            timings=timings,
            pipeline=pipeline,
            source_stats=bindings.source_stats(),
            shard_balance=list(
                chase_result.extra_stats.get("parallel_shard_balance", ())
            ),
            magic_rewriting=spec.rewriting,
        )

    def stream(
        self,
        database: DatabaseLike = None,
        outputs: Optional[Iterable[str]] = None,
        certain: bool = False,
        strategy: Union[str, TerminationStrategy, None] = None,
        query: Union[str, Atom, None] = None,
        rewrite: Optional[str] = None,
        deadline: Optional[float] = None,
        budget: Optional[ExecutionBudget] = None,
        cancel: Optional[CancellationToken] = None,
        trace: object = None,
    ) -> ReasoningResult:
        """Start a lazy streaming run: nothing is evaluated until pulled.

        The returned result exposes ``first_answer()`` (pull until one answer
        fact is produced, then stop), ``iter_answers()`` (a lazy answer
        iterator) and ``complete()`` (drain to the fixpoint and populate
        ``answers`` exactly like ``reason()``).  Available on every reasoner
        regardless of its default ``executor``.  ``query``/``rewrite``
        behave as in :meth:`reason`; with ``rewrite="magic"`` the pipeline
        pulls through the rewritten program, so a bound first answer touches
        only the demanded slice of the data.  ``deadline``/``budget``/
        ``cancel`` bound the run as in :meth:`reason`; the deadline clock
        starts at the first pull, not at this call.  ``trace`` behaves as in
        :meth:`reason`; the trace is finalized when the run is drained
        (``complete()`` or an exhausted ``iter_answers()``), and the chase
        span records both the build and the first-pull clock (``t_create``
        and ``t_first_pull`` attrs).
        """
        tracer = as_tracer(trace)
        run_span = (
            tracer.begin("run", "stream:streaming", executor="streaming",
                         query=str(query) if query is not None else None)
            if tracer is not None
            else None
        )
        chosen = self._resolve_strategy(strategy)
        config = self._effective_config(deadline, budget, cancel)
        rewrite_span = tracer.begin("rewrite", "rewrite") if tracer is not None else None
        spec = self._prepare_run(outputs, query, rewrite)
        if rewrite_span is not None:
            tracer.end(rewrite_span)
        output_predicates = spec.outputs
        bindings = self._collect_bindings(output_predicates)
        load_span = tracer.begin("load", "load") if tracer is not None else None
        pipeline = self._build_pipeline(
            database, bindings, chosen, output_predicates, spec, config=config,
            tracer=tracer,
        )
        if load_span is not None:
            tracer.end(load_span)

        def finalize(result: ReasoningResult) -> None:
            query_spec = Query(tuple(output_predicates), certain=certain)
            answers = extract_answers(pipeline.result, query_spec)
            answers = apply_post_directives(answers, bindings.post_directives)
            if spec.query_atom is not None:
                answers = _filter_answers(answers, spec.query_atom)
            else:
                write_output_bindings(bindings, answers, output_predicates)
            result.answers = answers
            result.source_stats = bindings.source_stats()
            for warning in pipeline.result.warnings:
                if warning not in result.warnings:
                    result.warnings.append(warning)
            if pipeline.result.first_answer_seconds is not None:
                result.timings["first_answer"] = pipeline.result.first_answer_seconds
            result.timings["total"] = pipeline.result.elapsed_seconds
            if tracer is not None and run_span is not None:
                chase = pipeline.result
                run_span.counters["facts"] = len(chase.store)
                run_span.counters["derived"] = chase.chase_steps
                run_span.counters["rounds"] = chase.rounds
                run_span.counters["peak_resident_facts"] = chase.peak_resident_facts
                run_span.attrs["status"] = chase.status
                if chase.stop_reason is not None:
                    run_span.attrs["stop_reason"] = chase.stop_reason
                tracer.end(run_span)
                tracer.finish()

        return ReasoningResult(
            answers=AnswerSet(),
            chase=pipeline.result,
            analysis=spec.analysis,
            plan=self.plan,
            scheduler=self.scheduler_report,
            harmful_join_rewriting=self.harmful_join_rewriting,
            warnings=list(self.warnings),
            timings={},
            pipeline=pipeline,
            magic_rewriting=spec.rewriting,
            trace=tracer,
            _finalizer=finalize,
        )

    def _effective_config(
        self,
        deadline: Optional[float],
        budget: Optional[ExecutionBudget],
        cancel: Optional[CancellationToken],
    ) -> ChaseConfig:
        """The run's chase config with the call's budget/cancel merged in."""
        if deadline is None and budget is None and cancel is None:
            return self.chase_config
        merged = budget or self.chase_config.budget or ExecutionBudget()
        if deadline is not None:
            merged = replace(merged, deadline_seconds=deadline)
        return replace(
            self.chase_config,
            budget=merged,
            cancel=cancel if cancel is not None else self.chase_config.cancel,
        )

    # ----------------------------------------------------------------- helpers
    def _prepare_run(
        self,
        outputs: Optional[Iterable[str]],
        query: Union[str, Atom, None],
        rewrite: Optional[str],
    ) -> _RunSpec:
        """Resolve the program/plans/outputs/seeds of one run.

        Without a query this is the reasoner's own compiled state.  With a
        query the output is the query's predicate and ``rewrite="magic"``
        (the default) swaps in the magic-rewritten program: its own
        wardedness analysis, join plans, round-robin rule order and
        ``_aux_magic_*`` seed facts.  If the rewriting declines or fails
        its internal invariants the run falls back to the unrewritten
        program — answers are identical either way, only the pruning is
        lost (a warning records the fallback).
        """
        if query is None:
            if rewrite is not None:
                raise ValueError("rewrite= requires a query= atom")
            return _RunSpec(
                program=self.program,
                analysis=self.analysis,
                join_plans=self.join_plans,
                outputs=self._output_predicates(outputs),
            )
        query_atom = parse_atom(query) if isinstance(query, str) else query
        chosen_rewrite = rewrite if rewrite is not None else "magic"
        if chosen_rewrite not in REWRITES:
            raise ValueError(
                f"unknown rewrite {chosen_rewrite!r}; use one of {', '.join(REWRITES)}"
            )
        base = _RunSpec(
            program=self.program,
            analysis=self.analysis,
            join_plans=self.join_plans,
            outputs=[query_atom.predicate],
            query_atom=query_atom,
        )
        if chosen_rewrite == "none":
            return base
        cache_key = (query_atom.predicate, query_atom.terms)
        cached = self._magic_cache.pop(cache_key, None)
        if cached is not None:
            self._magic_cache[cache_key] = cached  # refresh LRU recency
            return cached
        try:
            rewriting = rewrite_with_magic(self.program, query_atom, self.analysis)
        except MagicRewriteError as exc:
            self.warnings.append(
                f"magic rewriting failed ({exc}); falling back to the full program"
            )
            base.rewriting = None
            return base
        base.rewriting = rewriting
        if rewriting.changed:
            program = rewriting.program
            plan = compile_plan(program)
            report = RoundRobinScheduler(plan, program).schedule()
            if report.rule_order and len(report.rule_order) == len(program.rules):
                program.rules = list(report.rule_order)
            base = _RunSpec(
                program=program,
                analysis=analyse_program(program),
                join_plans=(
                    compile_join_plans(program) if self.executor != "naive" else {}
                ),
                outputs=[query_atom.predicate],
                seeds=list(rewriting.seeds),
                query_atom=query_atom,
                rewriting=rewriting,
            )
        if len(self._magic_cache) >= 32:
            self._magic_cache.pop(next(iter(self._magic_cache)))
        self._magic_cache[cache_key] = base
        return base

    def _collect_bindings(self, output_predicates: Sequence[str]) -> BindingSet:
        """Resolve ``@bind``/``@mapping`` and attach compiled pushdowns.

        Resolution happens once per reasoner (sources — and their page
        caches — are shared by subsequent runs; external files modified
        behind a live reasoner's back are re-read only by a new reasoner).
        The selection pushdowns of :func:`compile_source_pushdowns` are
        recomputed per run and attached to the input record managers, so
        both the materializing load (:func:`load_bound_facts`) and the
        streaming pipeline's lazy source cursors scan with the same
        restriction.  ``output_predicates`` is this run's answer selection:
        a bound predicate the caller asks for directly must be served in
        full, so it is excluded from pushdown.
        """
        if self._bindings is None:
            self._bindings = collect_bindings(self.program, self.base_path)
        bindings = self._bindings
        if bindings.sources:
            bindings.pushdowns = compile_source_pushdowns(
                self.program, tuple(bindings.sources), output_predicates
            )
            for predicate, manager in bindings.record_managers.items():
                if isinstance(manager, DataSourceRecordManager):
                    manager.pushdown = bindings.pushdowns.get(predicate)
        return bindings

    def _resolve_strategy(
        self, strategy: Union[str, TerminationStrategy, None]
    ) -> TerminationStrategy:
        if strategy is None:
            return self._make_strategy()
        if isinstance(strategy, TerminationStrategy):
            return strategy
        return strategy_by_name(strategy)

    def _build_pipeline(
        self,
        database: DatabaseLike,
        bindings: BindingSet,
        strategy: TerminationStrategy,
        output_predicates: Sequence[str],
        spec: Optional[_RunSpec] = None,
        config: Optional[ChaseConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> PipelineExecutor:
        """Assemble the streaming pipeline for one run.

        :class:`Database` inputs and external ``@bind`` sources keep lazy
        record managers (their relations are only read when the backward
        slice actually pulls them); loose fact lists/mappings, program facts
        and magic seed facts are wrapped in :class:`FactsRecordManager`
        sources.  ``spec`` overrides the program/plans for query runs.
        """
        program = spec.program if spec is not None else self.program
        analysis = spec.analysis if spec is not None else self.analysis
        managers: Dict[str, RecordManager] = {}
        if isinstance(database, Database):
            managers.update(managers_for_database(database))
            loose: List[Fact] = []
        else:
            loose = list(self._database_facts(database))
        loose.extend(program.facts)
        if spec is not None:
            loose.extend(spec.seeds)
        for predicate, manager in managers_for_facts(loose).items():
            managers[predicate] = self._merge_managers(managers.get(predicate), manager)
        for predicate, manager in bindings.record_managers.items():
            managers[predicate] = self._merge_managers(managers.get(predicate), manager)
        join_plans = spec.join_plans if spec is not None else self.join_plans
        if not join_plans and program is self.program:
            # A reasoner built with executor="naive" has no plans yet; the
            # pipeline needs them, so compile (and cache) on first use.
            self.join_plans = join_plans = compile_join_plans(self.program)
        return PipelineExecutor(
            program,
            outputs=list(output_predicates),
            input_managers=managers,
            strategy=strategy,
            analysis=analysis,
            config=config if config is not None else self.chase_config,
            join_plans=join_plans,
            tracer=tracer,
        )

    @staticmethod
    def _merge_managers(
        existing: Optional[RecordManager], manager: RecordManager
    ) -> RecordManager:
        """Combine two sources of the same predicate (rare), materialising both."""
        if existing is None:
            return manager
        return FactsRecordManager(
            manager.predicate, existing.facts() + manager.facts()
        )

    # ----------------------------------------------------------------- helpers
    def _output_predicates(self, outputs: Optional[Iterable[str]]) -> List[str]:
        if outputs is not None:
            return list(outputs)
        declared = self.original_program.output_predicates()
        return sorted(p for p in declared if not is_auxiliary_predicate(p))

    @staticmethod
    def _database_facts(database: DatabaseLike) -> List[Fact]:
        if database is None:
            return []
        if isinstance(database, Database):
            return database.facts()
        if isinstance(database, Mapping):
            facts: List[Fact] = []
            for predicate, rows in database.items():
                for row in rows:
                    facts.append(Fact(predicate, [Constant(v) for v in row]))
            return facts
        return [f for f in database]  # already facts

    def resident(self, database: DatabaseLike = None) -> "ResidentReasoner":
        """Materialise ``database`` once and keep it warm under updates.

        Returns a :class:`~repro.engine.incremental.ResidentReasoner` bound
        to this reasoner's compiled state (optimized program, analysis,
        join plans): ``upsert``/``retract`` maintain the materialisation
        incrementally and ``query`` answers without re-running the chase.
        Requires the ``compiled`` or ``naive`` executor and a *named*
        termination strategy (retraction replays a fresh instance).
        """
        from .incremental import ResidentReasoner

        if not isinstance(self._strategy_spec, (str, type(None))):
            raise ValueError(
                "resident maintenance needs a named termination strategy; "
                "this reasoner was built with a strategy instance"
            )
        return ResidentReasoner(self, database=database)

    def explain(self) -> str:
        """Human-readable description of the compiled program and plan."""
        lines = [
            f"Program: {len(self.program.rules)} rules "
            f"({self.analysis.fragment()} fragment)",
        ]
        summary = self.analysis.summary()
        lines.append(
            "  linear rules: {linear_rules}, join rules: {join_rules}, "
            "existential rules: {existential_rules}, harmful joins: {harmful_joins}".format(**summary)
        )
        if self.harmful_join_rewriting and self.harmful_join_rewriting.changed:
            lines.append(
                f"  harmful-join elimination introduced "
                f"{len(self.harmful_join_rewriting.tracking_predicates)} tracking predicates"
            )
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        lines.append(self.plan.describe())
        lines.append(
            "Scheduler: "
            + ", ".join(f"{k}={v}" for k, v in self.scheduler_report.stats().items())
        )
        return "\n".join(lines)


def _filter_answers(answers: AnswerSet, query_atom: Atom) -> AnswerSet:
    """Restrict an answer set to the facts matching a query atom.

    Constants of the query must coincide positionally; repeated query
    variables must bind consistently (``Atom.match`` semantics).
    """
    filtered = AnswerSet()
    for predicate, facts in answers.facts_by_predicate.items():
        if predicate != query_atom.predicate:
            filtered.facts_by_predicate[predicate] = list(facts)
            continue
        filtered.facts_by_predicate[predicate] = [
            fact
            for fact in facts
            if fact.arity == query_atom.arity and query_atom.match(fact) is not None
        ]
    return filtered


def reason(
    program: Union[Program, str],
    database: DatabaseLike = None,
    outputs: Optional[Iterable[str]] = None,
    certain: bool = False,
    strategy: Union[str, TerminationStrategy, None] = "warded",
    executor: str = "compiled",
    parallelism: Optional[int] = None,
    parallel_backend: str = "threads",
    query: Union[str, Atom, None] = None,
    rewrite: Optional[str] = None,
    deadline: Optional[float] = None,
    budget: Optional[ExecutionBudget] = None,
    cancel: Optional[CancellationToken] = None,
    trace: object = None,
) -> ReasoningResult:
    """One-call helper: build a :class:`VadalogReasoner` and run it."""
    reasoner = VadalogReasoner(
        program,
        strategy=strategy,
        executor=executor,
        parallelism=parallelism,
        parallel_backend=parallel_backend,
    )
    return reasoner.reason(
        database=database,
        outputs=outputs,
        certain=certain,
        query=query,
        rewrite=rewrite,
        deadline=deadline,
        budget=budget,
        cancel=cancel,
        trace=trace,
    )
