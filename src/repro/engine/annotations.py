"""Annotation handling: ``@input``, ``@output``, ``@bind``, ``@post`` (Section 5).

Annotations are "@"-prefixed facts that inject behaviour:

* ``@input("P").`` / ``@output("P").`` mark predicates as pipeline sources
  and sinks (the parser already records them on the program);
* ``@bind("P", "csv", "path.csv").`` binds a predicate to an external source
  through a record manager (dynamic source binding);
* ``@mapping("P", 0, "column").`` records a positional→named mapping (kept
  as metadata, CSV sources are positional already);
* ``@post("P", "certain").`` / ``@post("P", "sort", 0, 1).`` /
  ``@post("P", "limit", 10).`` register post-processing directives applied
  to the answers of an output predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.atoms import Fact
from ..core.query import AnswerSet
from ..core.rules import Annotation, Program
from .record_managers import CsvRecordManager, InMemoryRecordManager, RecordManager


class AnnotationError(Exception):
    """Raised when an annotation is malformed or references unknown resources."""


@dataclass
class PostDirective:
    """A post-processing directive attached to an output predicate."""

    predicate: str
    operation: str
    arguments: Tuple[object, ...] = ()


@dataclass
class BindingSet:
    """The external bindings and post-processing directives of a program."""

    record_managers: Dict[str, RecordManager] = field(default_factory=dict)
    post_directives: List[PostDirective] = field(default_factory=list)
    mappings: Dict[str, Dict[int, str]] = field(default_factory=dict)


def collect_bindings(program: Program, base_path: Union[str, Path, None] = None) -> BindingSet:
    """Interpret the program's annotations into record managers and directives."""
    base = Path(base_path) if base_path is not None else Path(".")
    bindings = BindingSet()
    for annotation in program.annotations:
        if annotation.name in {"input", "output"}:
            continue
        if annotation.name in {"bind", "qbind"}:
            bindings.record_managers.update(_bind_manager(annotation, base))
        elif annotation.name == "mapping":
            _record_mapping(annotation, bindings)
        elif annotation.name == "post":
            bindings.post_directives.append(_post_directive(annotation))
        # Unknown annotations are kept on the program but ignored here.
    return bindings


def _bind_manager(annotation: Annotation, base: Path) -> Dict[str, RecordManager]:
    if len(annotation.arguments) < 3:
        raise AnnotationError(
            f"@{annotation.name} needs (predicate, source-kind, location), got {annotation.arguments}"
        )
    predicate, kind, location = (
        str(annotation.arguments[0]),
        str(annotation.arguments[1]).lower(),
        annotation.arguments[2],
    )
    if kind == "csv":
        return {predicate: CsvRecordManager(predicate, base / str(location))}
    raise AnnotationError(f"unsupported @bind source kind {kind!r}")


def _record_mapping(annotation: Annotation, bindings: BindingSet) -> None:
    if len(annotation.arguments) < 3:
        raise AnnotationError("@mapping needs (predicate, position, column-name)")
    predicate = str(annotation.arguments[0])
    position = int(annotation.arguments[1])  # type: ignore[arg-type]
    column = str(annotation.arguments[2])
    bindings.mappings.setdefault(predicate, {})[position] = column


def _post_directive(annotation: Annotation) -> PostDirective:
    if len(annotation.arguments) < 2:
        raise AnnotationError("@post needs at least (predicate, operation)")
    predicate = str(annotation.arguments[0])
    operation = str(annotation.arguments[1]).lower()
    if operation not in {"certain", "sort", "limit"}:
        raise AnnotationError(f"unsupported @post operation {operation!r}")
    return PostDirective(predicate, operation, tuple(annotation.arguments[2:]))


def load_bound_facts(bindings: BindingSet) -> List[Fact]:
    """Materialise the facts of every bound external source."""
    facts: List[Fact] = []
    for manager in bindings.record_managers.values():
        facts.extend(manager.facts())
    return facts


def _term_sort_key(term) -> Tuple[int, str, object]:
    """Type-aware ordering for ``@post("P", "sort", ...)``.

    Numbers sort numerically (``9 < 10``), then strings lexicographically,
    then other constants and labelled nulls by their text form — a total
    deterministic order over mixed-type columns.
    """
    from ..core.terms import Constant

    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, bool):
            return (1, "", str(value))
        if isinstance(value, (int, float)):
            return (0, "", float(value))
        if isinstance(value, str):
            return (1, "", value)
        if isinstance(value, frozenset):
            # Canonical rendering: frozenset iteration order depends on the
            # process hash seed, str(value) would not be stable across runs.
            return (2, "frozenset", str(sorted(str(v) for v in value)))
        return (2, type(value).__name__, str(value))
    return (3, "", str(term))


def apply_post_directives(answers: AnswerSet, directives: Sequence[PostDirective]) -> AnswerSet:
    """Apply post-processing directives to an answer set (in place, returned).

    All executors (compiled, naive and streaming) funnel their extracted
    answers through here — ``reason()`` directly, streaming runs when
    ``complete()`` finalizes the lazy result.
    """
    for directive in directives:
        facts = answers.facts_by_predicate.get(directive.predicate)
        if facts is None:
            continue
        if directive.operation == "certain":
            facts = [f for f in facts if not f.has_nulls]
        elif directive.operation == "sort":
            positions = [int(a) for a in directive.arguments] or [0]
            facts = sorted(
                facts,
                key=lambda f: tuple(
                    _term_sort_key(f.terms[p]) for p in positions if p < f.arity
                ),
            )
        elif directive.operation == "limit":
            limit = int(directive.arguments[0]) if directive.arguments else len(facts)
            facts = facts[:limit]
        answers.facts_by_predicate[directive.predicate] = facts
    return answers
