"""Annotation handling: ``@input``, ``@output``, ``@bind``, ``@post`` (Section 5).

Annotations are "@"-prefixed facts that inject behaviour:

* ``@input("P").`` / ``@output("P").`` mark predicates as pipeline sources
  and sinks (the parser already records them on the program);
* ``@bind("P", "kind", "location", ...).`` binds a predicate to an external
  datasource resolved through the registry of
  :mod:`repro.storage.datasources` — ``sqlite`` (with selection/projection
  pushdown), ``csv``, ``jsonl`` and named ``memory`` relations.  Binding an
  **extensional** predicate makes the source feed the pipeline through a
  lazy record manager; binding an ``@output`` predicate makes the answers
  get **written back** to the source after reasoning;
* ``@mapping("P", 0, "column").`` maps a predicate position to a backend
  column name (SQLite column selection/creation, JSONL object keys);
* ``@post("P", "certain").`` / ``@post("P", "sort", 0, 1).`` /
  ``@post("P", "limit", 10).`` register post-processing directives applied
  to the answers of an output predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.atoms import Fact
from ..core.query import AnswerSet
from ..core.rules import Annotation, Program
from ..storage.datasources import DataSource, DataSourceError, Pushdown, create_datasource
from .record_managers import DataSourceRecordManager, RecordManager


class AnnotationError(Exception):
    """Raised when an annotation is malformed or references unknown resources."""


@dataclass
class PostDirective:
    """A post-processing directive attached to an output predicate."""

    predicate: str
    operation: str
    arguments: Tuple[object, ...] = ()


@dataclass
class BindingSet:
    """The external bindings and post-processing directives of a program."""

    #: Input sources wrapped as lazy record managers, keyed by predicate.
    record_managers: Dict[str, RecordManager] = field(default_factory=dict)
    post_directives: List[PostDirective] = field(default_factory=list)
    mappings: Dict[str, Dict[int, str]] = field(default_factory=dict)
    #: The resolved input datasources (same keys as ``record_managers``).
    sources: Dict[str, DataSource] = field(default_factory=dict)
    #: Writeback targets: ``@bind`` on predicates the program derives and
    #: declares as ``@output`` — answers are written here after reasoning.
    output_sources: Dict[str, DataSource] = field(default_factory=dict)
    #: Per-predicate pushdowns compiled by the reasoner (diagnostics).
    pushdowns: Dict[str, Pushdown] = field(default_factory=dict)

    def source_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-predicate datasource counters (reads, pushdown, writeback)."""
        stats: Dict[str, Dict[str, object]] = {}
        for predicate, source in self.sources.items():
            row = {"kind": source.kind, "direction": "input"}
            row.update(source.stats.as_dict())
            pushdown = self.pushdowns.get(predicate)
            row["pushdown"] = pushdown.describe() if pushdown else None
            stats[predicate] = row
        for predicate, source in self.output_sources.items():
            row = {"kind": source.kind, "direction": "output"}
            row.update(source.stats.as_dict())
            row["pushdown"] = None
            stats[predicate] = row
        return stats


def _predicate_arities(program: Program) -> Dict[str, int]:
    """Arity of every predicate mentioned by the program (first use wins)."""
    arities: Dict[str, int] = {}
    for signature in program.predicates():
        arities.setdefault(signature.name, signature.arity)
    return arities


def collect_bindings(program: Program, base_path: Union[str, Path, None] = None) -> BindingSet:
    """Interpret the program's annotations into datasources and directives.

    ``@mapping`` annotations are gathered first so column mappings apply no
    matter where they appear relative to their ``@bind``; each ``@bind`` is
    then resolved through the datasource registry, validated against the
    predicate's arity in the program, and classified as an input source
    (extensional predicates — facts stream in) or a writeback target
    (derived ``@output`` predicates — answers stream out).
    """
    bindings = BindingSet()
    binds: List[Annotation] = []
    for annotation in program.annotations:
        if annotation.name in {"input", "output"}:
            continue
        if annotation.name in {"bind", "qbind"}:
            binds.append(annotation)
        elif annotation.name == "mapping":
            _record_mapping(annotation, bindings)
        elif annotation.name == "post":
            bindings.post_directives.append(_post_directive(annotation))
        # Unknown annotations are kept on the program but ignored here.

    arities = _predicate_arities(program)
    writeback = program.output_predicates() & program.idb_predicates()
    for annotation in binds:
        if len(annotation.arguments) < 3:
            raise AnnotationError(
                f"@{annotation.name} needs (predicate, source-kind, location), "
                f"got {annotation.arguments}"
            )
        predicate, kind, location = (
            str(annotation.arguments[0]),
            str(annotation.arguments[1]).lower(),
            annotation.arguments[2],
        )
        is_output = predicate in writeback
        columns = _mapped_columns(
            bindings.mappings.get(predicate), arities.get(predicate)
        )
        try:
            source = create_datasource(
                kind,
                predicate,
                location,
                tuple(annotation.arguments[3:]),
                base_path=base_path,
                arity=arities.get(predicate),
                columns=columns,
                create=is_output,
            )
        except DataSourceError as exc:
            raise AnnotationError(str(exc)) from exc
        if is_output:
            bindings.output_sources[predicate] = source
        else:
            bindings.sources[predicate] = source
            bindings.record_managers[predicate] = DataSourceRecordManager(
                predicate, source
            )
    return bindings


def _mapped_columns(
    mapping: Optional[Dict[int, str]], arity: Optional[int]
) -> Optional[List[str]]:
    """Materialise ``@mapping`` entries into a positional column-name list."""
    if not mapping:
        return None
    width = max(max(mapping) + 1, arity or 0)
    return [mapping.get(i, f"c{i}") for i in range(width)]


def _record_mapping(annotation: Annotation, bindings: BindingSet) -> None:
    if len(annotation.arguments) < 3:
        raise AnnotationError("@mapping needs (predicate, position, column-name)")
    predicate = str(annotation.arguments[0])
    try:
        position = int(annotation.arguments[1])  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise AnnotationError(
            f"@mapping position must be an integer, got {annotation.arguments[1]!r}"
        ) from exc
    column = str(annotation.arguments[2])
    bindings.mappings.setdefault(predicate, {})[position] = column


def _post_directive(annotation: Annotation) -> PostDirective:
    if len(annotation.arguments) < 2:
        raise AnnotationError("@post needs at least (predicate, operation)")
    predicate = str(annotation.arguments[0])
    operation = str(annotation.arguments[1]).lower()
    if operation not in {"certain", "sort", "limit"}:
        raise AnnotationError(f"unsupported @post operation {operation!r}")
    return PostDirective(predicate, operation, tuple(annotation.arguments[2:]))


def load_bound_facts(bindings: BindingSet) -> List[Fact]:
    """Materialise the facts of every bound external source.

    The materializing executors load through the same record managers the
    streaming pipeline pulls from, so pushdowns (attached by the reasoner)
    apply identically on both paths.
    """
    facts: List[Fact] = []
    for manager in bindings.record_managers.values():
        try:
            facts.extend(manager.facts())
        except DataSourceError as exc:
            raise AnnotationError(str(exc)) from exc
    return facts


def write_output_bindings(
    bindings: BindingSet,
    answers: AnswerSet,
    requested_outputs: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Write each bound ``@output`` predicate's answers back to its source.

    Only null-free (certain) tuples are written — labelled nulls have no
    faithful external representation; skipped rows are counted in the
    source's ``rows_skipped_nulls`` statistic.  When ``requested_outputs``
    is given (the run's ``reason(outputs=…)`` selection), bound predicates
    *outside* that selection are left untouched — the run never extracted
    their answers, so writing would wipe the external relation.  Returns
    rows written per predicate.
    """
    written: Dict[str, int] = {}
    for predicate, source in bindings.output_sources.items():
        if requested_outputs is not None and predicate not in requested_outputs:
            continue
        facts = answers.facts_by_predicate.get(predicate, [])
        rows = [fact.values() for fact in facts if not fact.has_nulls]
        source.stats.rows_skipped_nulls += len(facts) - len(rows)
        try:
            written[predicate] = source.write_rows(rows)
        except DataSourceError as exc:
            raise AnnotationError(str(exc)) from exc
    return written


def _term_sort_key(term) -> Tuple[int, str, object]:
    """Type-aware ordering for ``@post("P", "sort", ...)``.

    Numbers sort numerically (``9 < 10``), then strings lexicographically,
    then other constants and labelled nulls by their text form — a total
    deterministic order over mixed-type columns.
    """
    from ..core.terms import Constant

    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, bool):
            return (1, "", str(value))
        if isinstance(value, (int, float)):
            return (0, "", float(value))
        if isinstance(value, str):
            return (1, "", value)
        if isinstance(value, frozenset):
            # Canonical rendering: frozenset iteration order depends on the
            # process hash seed, str(value) would not be stable across runs.
            return (2, "frozenset", str(sorted(str(v) for v in value)))
        return (2, type(value).__name__, str(value))
    return (3, "", str(term))


def apply_post_directives(answers: AnswerSet, directives: Sequence[PostDirective]) -> AnswerSet:
    """Apply post-processing directives to an answer set (in place, returned).

    All executors (compiled, naive and streaming) funnel their extracted
    answers through here — ``reason()`` directly, streaming runs when
    ``complete()`` finalizes the lazy result.
    """
    for directive in directives:
        facts = answers.facts_by_predicate.get(directive.predicate)
        if facts is None:
            continue
        if directive.operation == "certain":
            facts = [f for f in facts if not f.has_nulls]
        elif directive.operation == "sort":
            positions = [int(a) for a in directive.arguments] or [0]
            facts = sorted(
                facts,
                key=lambda f: tuple(
                    _term_sort_key(f.terms[p]) for p in positions if p < f.arity
                ),
            )
        elif directive.operation == "limit":
            limit = int(directive.arguments[0]) if directive.arguments else len(facts)
            facts = facts[:limit]
        answers.facts_by_predicate[directive.predicate] = facts
    return answers
