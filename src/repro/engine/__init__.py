"""Pipeline architecture of the reproduction (Section 4 of the paper)."""

from .annotations import (
    BindingSet,
    PostDirective,
    collect_bindings,
    write_output_bindings,
)
from .buffer import BufferCache, BufferSegment
from .joins import CompiledRuleExecutor, JoinInput, SlotMachineJoin, hash_join
from .partition import (
    ParallelChaseEngine,
    RoundPartitioner,
    partition_facts,
    shard_of,
    stable_term_hash,
)
from .pipeline import (
    PipelineExecutor,
    PipelineStats,
    RuleFilterNode,
    SinkNode,
    SourceNode,
)
from .plan import (
    AtomStep,
    PlanNode,
    ReasoningAccessPlan,
    RuleJoinPlan,
    SeedJoinPlan,
    backward_slice,
    compile_join_plans,
    compile_plan,
    compile_source_pushdowns,
    compile_rule_join_plan,
    seed_partition_positions,
)
from .incremental import ResidentError, ResidentReasoner
from .reasoner import ReasoningResult, VadalogReasoner, reason
from .service import ReasoningService, predicate_dependencies
from .record_managers import (
    CsvRecordManager,
    DatabaseRecordManager,
    DataSourceRecordManager,
    FactsRecordManager,
    InMemoryRecordManager,
    RecordManager,
    managers_for_database,
    managers_for_facts,
)
from .scheduler import PullScheduler, RoundRobinScheduler, SchedulerReport
from .wrappers import TerminationWrapper, WrapperRegistry

__all__ = [
    "BindingSet",
    "PostDirective",
    "collect_bindings",
    "write_output_bindings",
    "BufferCache",
    "BufferSegment",
    "CompiledRuleExecutor",
    "JoinInput",
    "SlotMachineJoin",
    "hash_join",
    "ParallelChaseEngine",
    "RoundPartitioner",
    "partition_facts",
    "shard_of",
    "stable_term_hash",
    "PipelineExecutor",
    "PipelineStats",
    "RuleFilterNode",
    "SinkNode",
    "SourceNode",
    "AtomStep",
    "PlanNode",
    "ReasoningAccessPlan",
    "RuleJoinPlan",
    "SeedJoinPlan",
    "backward_slice",
    "compile_source_pushdowns",
    "compile_join_plans",
    "compile_plan",
    "compile_rule_join_plan",
    "seed_partition_positions",
    "ReasoningResult",
    "ResidentError",
    "ResidentReasoner",
    "ReasoningService",
    "predicate_dependencies",
    "VadalogReasoner",
    "reason",
    "CsvRecordManager",
    "DatabaseRecordManager",
    "DataSourceRecordManager",
    "FactsRecordManager",
    "InMemoryRecordManager",
    "RecordManager",
    "managers_for_database",
    "managers_for_facts",
    "PullScheduler",
    "RoundRobinScheduler",
    "SchedulerReport",
    "TerminationWrapper",
    "WrapperRegistry",
]
