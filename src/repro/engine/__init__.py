"""Pipeline architecture of the reproduction (Section 4 of the paper)."""

from .annotations import BindingSet, PostDirective, collect_bindings
from .buffer import BufferCache, BufferSegment
from .joins import CompiledRuleExecutor, JoinInput, SlotMachineJoin, hash_join
from .plan import (
    AtomStep,
    PlanNode,
    ReasoningAccessPlan,
    RuleJoinPlan,
    SeedJoinPlan,
    compile_join_plans,
    compile_plan,
    compile_rule_join_plan,
)
from .reasoner import ReasoningResult, VadalogReasoner, reason
from .record_managers import (
    CsvRecordManager,
    DatabaseRecordManager,
    InMemoryRecordManager,
    RecordManager,
)
from .scheduler import RoundRobinScheduler, SchedulerReport
from .wrappers import TerminationWrapper, WrapperRegistry

__all__ = [
    "BindingSet",
    "PostDirective",
    "collect_bindings",
    "BufferCache",
    "BufferSegment",
    "CompiledRuleExecutor",
    "JoinInput",
    "SlotMachineJoin",
    "hash_join",
    "AtomStep",
    "PlanNode",
    "ReasoningAccessPlan",
    "RuleJoinPlan",
    "SeedJoinPlan",
    "compile_join_plans",
    "compile_plan",
    "compile_rule_join_plan",
    "ReasoningResult",
    "VadalogReasoner",
    "reason",
    "CsvRecordManager",
    "DatabaseRecordManager",
    "InMemoryRecordManager",
    "RecordManager",
    "RoundRobinScheduler",
    "SchedulerReport",
    "TerminationWrapper",
    "WrapperRegistry",
]
