"""Pipeline architecture of the reproduction (Section 4 of the paper)."""

from .annotations import (
    BindingSet,
    PostDirective,
    collect_bindings,
    write_output_bindings,
)
from .buffer import BufferCache, BufferSegment
from .joins import CompiledRuleExecutor, JoinInput, SlotMachineJoin, hash_join
from .pipeline import (
    PipelineExecutor,
    PipelineStats,
    RuleFilterNode,
    SinkNode,
    SourceNode,
)
from .plan import (
    AtomStep,
    PlanNode,
    ReasoningAccessPlan,
    RuleJoinPlan,
    SeedJoinPlan,
    backward_slice,
    compile_join_plans,
    compile_plan,
    compile_source_pushdowns,
    compile_rule_join_plan,
)
from .reasoner import ReasoningResult, VadalogReasoner, reason
from .record_managers import (
    CsvRecordManager,
    DatabaseRecordManager,
    DataSourceRecordManager,
    FactsRecordManager,
    InMemoryRecordManager,
    RecordManager,
    managers_for_database,
    managers_for_facts,
)
from .scheduler import PullScheduler, RoundRobinScheduler, SchedulerReport
from .wrappers import TerminationWrapper, WrapperRegistry

__all__ = [
    "BindingSet",
    "PostDirective",
    "collect_bindings",
    "write_output_bindings",
    "BufferCache",
    "BufferSegment",
    "CompiledRuleExecutor",
    "JoinInput",
    "SlotMachineJoin",
    "hash_join",
    "PipelineExecutor",
    "PipelineStats",
    "RuleFilterNode",
    "SinkNode",
    "SourceNode",
    "AtomStep",
    "PlanNode",
    "ReasoningAccessPlan",
    "RuleJoinPlan",
    "SeedJoinPlan",
    "backward_slice",
    "compile_source_pushdowns",
    "compile_join_plans",
    "compile_plan",
    "compile_rule_join_plan",
    "ReasoningResult",
    "VadalogReasoner",
    "reason",
    "CsvRecordManager",
    "DatabaseRecordManager",
    "DataSourceRecordManager",
    "FactsRecordManager",
    "InMemoryRecordManager",
    "RecordManager",
    "managers_for_database",
    "managers_for_facts",
    "PullScheduler",
    "RoundRobinScheduler",
    "SchedulerReport",
    "TerminationWrapper",
    "WrapperRegistry",
]
