"""Storage substrate: databases, indexes, and the pluggable datasource layer.

Besides the in-memory :class:`Database` and the fact-store indexes, this
package hosts the multi-backend datasource registry of
:mod:`repro.storage.datasources` — SQLite/CSV/JSONL sources resolved from
``@bind`` annotations, with selection/projection pushdown and per-source
LRU page caching.
"""

from .database import Database, Relation
from .datasources import (
    CsvDataSource,
    DataSource,
    DataSourceError,
    InMemoryDataSource,
    JsonlDataSource,
    Pushdown,
    RowPageCache,
    SourceStats,
    SQLiteDataSource,
    create_datasource,
    datasource_kinds,
    load_database_sqlite,
    publish_memory_relation,
    clear_memory_relations,
    register_datasource,
    save_database_sqlite,
)
from .index import HashIndex
from .csv_io import load_relation_csv, save_relation_csv

__all__ = [
    "Database",
    "Relation",
    "HashIndex",
    "load_relation_csv",
    "save_relation_csv",
    "CsvDataSource",
    "DataSource",
    "DataSourceError",
    "InMemoryDataSource",
    "JsonlDataSource",
    "Pushdown",
    "RowPageCache",
    "SourceStats",
    "SQLiteDataSource",
    "create_datasource",
    "datasource_kinds",
    "load_database_sqlite",
    "publish_memory_relation",
    "clear_memory_relations",
    "register_datasource",
    "save_database_sqlite",
]
