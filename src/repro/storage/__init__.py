"""Storage substrate: databases, relations, hash indexes and CSV adapters."""

from .database import Database, Relation
from .index import HashIndex
from .csv_io import load_relation_csv, save_relation_csv

__all__ = ["Database", "Relation", "HashIndex", "load_relation_csv", "save_relation_csv"]
