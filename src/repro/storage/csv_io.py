"""CSV record managers (Section 4: record managers adapt external sources).

The evaluation of the paper uses plain CSV archives as storage so that the
measured times reflect the reasoner itself.  These helpers load and save
relations in that format, with a light-weight type inference for numeric
columns (quoted values always stay strings).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .database import Database, Relation


def _coerce(value: str) -> object:
    """Infer int/float/bool values from their textual representation."""
    text = value.strip()
    if text.lower() in {"true", "false"}:
        return text.lower() == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def load_relation_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    has_header: bool = False,
    delimiter: str = ",",
) -> Relation:
    """Load a relation from a CSV file (one tuple per row)."""
    path = Path(path)
    relation_name = name or path.stem
    rows: List[Sequence[object]] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for index, row in enumerate(reader):
            if index == 0 and has_header:
                continue
            if not row:
                continue
            rows.append(tuple(_coerce(cell) for cell in row))
    arity = len(rows[0]) if rows else 0
    relation = Relation(relation_name, arity)
    relation.extend(rows)
    return relation


def save_relation_csv(
    relation: Relation, path: Union[str, Path], delimiter: str = ","
) -> Path:
    """Write a relation to a CSV file, one tuple per row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for row in relation.tuples:
            writer.writerow(row)
    return path


def load_database_csv(
    paths: Iterable[Union[str, Path]], has_header: bool = False
) -> Database:
    """Load several CSV files (named after their stem) into a database."""
    database = Database()
    for path in paths:
        relation = load_relation_csv(path, has_header=has_header)
        database.add_tuples(relation.name, relation.tuples)
    return database
