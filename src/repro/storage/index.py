"""Dynamic in-memory hash indexes (Section 4, "Slot machine join").

The slot-machine join builds hash indexes *while scanning*: there is no
persistent pre-computed index, the index grows as facts stream through the
operator and can be consulted optimistically even while incomplete (an index
miss on an incomplete index falls back to a scan).  :class:`HashIndex`
captures exactly that behaviour and reports hit/miss statistics used by the
join operator and by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Iterable, List, Optional, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class IndexStats:
    """Access counters of a dynamic index."""

    inserts: int = 0
    hits: int = 0
    misses: int = 0
    fallback_scans: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "inserts": self.inserts,
            "hits": self.hits,
            "misses": self.misses,
            "fallback_scans": self.fallback_scans,
        }


class HashIndex(Generic[T]):
    """A dynamically built hash index from keys to lists of items."""

    def __init__(self) -> None:
        self._buckets: Dict[Hashable, List[T]] = {}
        self._complete = False
        self.stats = IndexStats()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def complete(self) -> bool:
        """Whether the index has seen every item of the underlying stream."""
        return self._complete

    def mark_complete(self) -> None:
        self._complete = True

    def insert(self, key: Hashable, item: T) -> None:
        self._buckets.setdefault(key, []).append(item)
        self.stats.inserts += 1

    def get(self, key: Hashable) -> Optional[List[T]]:
        """Optimistic lookup: ``None`` signals an index miss.

        On a complete index a miss means "no matching item"; on an incomplete
        index the caller must fall back to scanning the remaining input.
        """
        bucket = self._buckets.get(key)
        if bucket is not None:
            self.stats.hits += 1
            return list(bucket)
        self.stats.misses += 1
        if self._complete:
            return []
        return None

    def keys(self) -> Tuple[Hashable, ...]:
        return tuple(self._buckets)

    def bulk_load(self, items: Iterable[Tuple[Hashable, T]]) -> None:
        for key, item in items:
            self.insert(key, item)
        self.mark_complete()
