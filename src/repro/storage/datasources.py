"""Pluggable external datasources behind ``@bind`` (Fig. 6, record managers).

The paper's architecture treats external data binding as a first-class
layer: *record managers* stream tuples from relational databases and files
into the reasoning pipeline, pushing selection and projection down to the
source where the backend supports it.  This module is that layer's storage
half — backend implementations plus the registry that ``@bind`` resolves
through:

* :class:`SQLiteDataSource` — relations stored as tables of a SQLite file;
  constant selections and literal comparisons compiled from the bound
  atom's plan conditions are executed as a SQL ``WHERE`` clause, and
  columns fixed by an equality are not transferred at all (projection
  pushdown — they are reconstructed client-side from the pushed constant);
* :class:`CsvDataSource` / :class:`JsonlDataSource` — file-backed sources;
  rows are filtered at the source boundary (Python-side, since the formats
  have no query capability), so the engine still never sees pruned tuples;
* :class:`InMemoryDataSource` — named in-memory relations registered with
  :func:`publish_memory_relation`, closing the loop with the default
  in-memory :class:`~repro.storage.database.Database` backend.

Every source keeps :class:`SourceStats` counters (scans, rows scanned vs.
relation size, cache traffic, rows written) and serves repeated scans from
a per-source :class:`RowPageCache` — an LRU cache of result pages keyed by
the pushdown that produced them, so a reasoner that is run twice (or an
executor that re-reads an input) does not re-hit the backend.

Row scans are *lazy*: ``scan()`` is a generator and backends read rows
only as they are pulled, which is what lets the streaming pipeline avoid
reading relations its backward slice pruned.  The one deliberately eager
step is SQLite *schema validation*: resolving a ``@bind`` opens the file
for a ``PRAGMA`` peek so that missing tables, missing mapped columns and
arity mismatches fail fast at binding time rather than mid-chase.  Writing
is supported for every backend so that ``@output`` predicates bound to a
source are written back after reasoning.
"""

from __future__ import annotations

import csv
import json
import operator
import sqlite3
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs.trace import get_tracer
from ..testing.faults import fault_point
from .database import Database


class DataSourceError(Exception):
    """Raised when a datasource cannot be resolved, read or written."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff policy for transient scan failures.

    ``attempts`` counts *retries* after the first failure; a scan therefore
    makes at most ``attempts + 1`` tries before giving up with a
    :class:`DataSourceError` (chained to the last transient error).  Only
    the exception types in ``retry_on`` are considered transient — semantic
    errors (malformed rows, missing tables, arity mismatches) are raised as
    :class:`DataSourceError` immediately and never retried.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    retry_on: Tuple[type, ...] = (OSError, sqlite3.OperationalError)

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay * (self.multiplier ** (attempt - 1)), self.max_delay)


#: Policy used when a source is created without an explicit one.
DEFAULT_RETRY_POLICY = RetryPolicy()


# ---------------------------------------------------------------------------
# Pushdown: the selection a source may apply before rows reach the engine
# ---------------------------------------------------------------------------

_PUSHDOWN_OPS: Dict[str, Callable[[object, object], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: Operators a SQLite WHERE clause evaluates with the same semantics as the
#: engine (numeric comparisons and equality over primitive values).
_SQL_OPS = {"==": "=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


@dataclass(frozen=True)
class Pushdown:
    """A conjunction of per-column constraints pushed into a source scan.

    ``constraints`` is a tuple of ``(position, op, value)`` triples over the
    relation's columns; a row passes when **every** triple holds.  The
    reasoner only compiles a constraint into a predicate's pushdown when it
    appears on *every* occurrence of that predicate in the program
    (:func:`repro.engine.plan.compile_source_pushdowns`), so rows skipped at
    the source are provably unusable by any rule.
    """

    constraints: Tuple[Tuple[int, str, object], ...] = ()

    def __post_init__(self) -> None:
        for _pos, op, _value in self.constraints:
            if op not in _PUSHDOWN_OPS:
                raise DataSourceError(f"unsupported pushdown operator {op!r}")

    def is_empty(self) -> bool:
        return not self.constraints

    def key(self) -> Tuple[Tuple[int, str, object], ...]:
        """Hashable cache key identifying this pushdown."""
        return self.constraints

    def matches(self, row: Sequence[object]) -> bool:
        """Python-side evaluation, used by backends without native filters.

        Mirrors :meth:`repro.core.conditions.Comparison.holds`: a comparison
        that raises (mixed incomparable types) simply rejects the row.
        """
        for pos, op, value in self.constraints:
            if pos >= len(row):
                return False
            try:
                if not _PUSHDOWN_OPS[op](row[pos], value):
                    return False
            except TypeError:
                return False
        return True

    def describe(self) -> str:
        if not self.constraints:
            return "none"
        return " AND ".join(
            f"col{pos} {op} {value!r}" for pos, op, value in self.constraints
        )


def _sql_compatible(op: str, value: object) -> bool:
    """True when SQLite evaluates ``column op value`` like the engine does.

    Equality/inequality is safe for every primitive; ordering comparisons
    are only pushed for real numbers (SQLite's text collation need not match
    Python's, and booleans are stored as integers).
    """
    if isinstance(value, bool):
        return op in {"==", "!="}
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, str):
        return op in {"==", "!="}
    return False


# ---------------------------------------------------------------------------
# Per-source statistics and the LRU page cache
# ---------------------------------------------------------------------------


@dataclass
class SourceStats:
    """Counters of one datasource's traffic across a reasoner's lifetime."""

    scans: int = 0  # scan() calls, including cache-served ones
    cache_served_scans: int = 0
    rows_scanned: int = 0  # rows physically read from the backend
    rows_emitted: int = 0  # rows handed to the engine (post-pushdown)
    relation_rows: Optional[int] = None  # full relation size, when known
    rows_written: int = 0
    rows_skipped_nulls: int = 0  # writeback rows dropped for labelled nulls
    page_hits: int = 0
    page_misses: int = 0
    pages_evicted: int = 0
    retries: int = 0  # transient scan failures absorbed by the retry policy
    retry_giveups: int = 0  # scans that exhausted their retry budget

    def as_dict(self) -> Dict[str, object]:
        return {
            "scans": self.scans,
            "cache_served_scans": self.cache_served_scans,
            "rows_scanned": self.rows_scanned,
            "rows_emitted": self.rows_emitted,
            "relation_rows": self.relation_rows,
            "rows_written": self.rows_written,
            "rows_skipped_nulls": self.rows_skipped_nulls,
            "page_hits": self.page_hits,
            "page_misses": self.page_misses,
            "pages_evicted": self.pages_evicted,
            "retries": self.retries,
            "retry_giveups": self.retry_giveups,
        }


class RowPageCache:
    """An LRU cache of completed scan results, stored in fixed-size pages.

    Entries are keyed by the pushdown that produced the rows; the budget is
    counted in *pages* across all entries, and whole entries are evicted
    least-recently-used (a partially cached scan result would be useless —
    consumers always need the full stream).  Results larger than the whole
    budget are not admitted at all.
    """

    def __init__(self, page_size: int = 1024, max_pages: int = 64) -> None:
        if page_size <= 0 or max_pages <= 0:
            raise ValueError("page_size and max_pages must be positive")
        self.page_size = page_size
        self.max_pages = max_pages
        self._entries: "OrderedDict[Tuple, List[List[Tuple[object, ...]]]]" = OrderedDict()
        self._total_pages = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_pages(self) -> int:
        return self._total_pages

    def get(self, key: Tuple) -> Optional[List[List[Tuple[object, ...]]]]:
        pages = self._entries.get(key)
        if pages is not None:
            self._entries.move_to_end(key)
        return pages

    def put(self, key: Tuple, rows: Sequence[Tuple[object, ...]], stats: SourceStats) -> bool:
        """Admit a completed scan result; returns False when it cannot fit."""
        pages = [
            list(rows[i : i + self.page_size])
            for i in range(0, len(rows), self.page_size)
        ] or [[]]
        if len(pages) > self.max_pages:
            return False
        if key in self._entries:
            self._total_pages -= len(self._entries.pop(key))
        while self._total_pages + len(pages) > self.max_pages and self._entries:
            _evicted_key, evicted = self._entries.popitem(last=False)
            self._total_pages -= len(evicted)
            stats.pages_evicted += len(evicted)
        self._entries[key] = pages
        self._total_pages += len(pages)
        return True

    def invalidate(self) -> None:
        self._entries.clear()
        self._total_pages = 0


# ---------------------------------------------------------------------------
# The DataSource interface and its implementations
# ---------------------------------------------------------------------------


class DataSource:
    """One external relation: a named, scannable (and writable) tuple set.

    Subclasses implement :meth:`_scan_rows`, which must apply the given
    pushdown (natively when the backend can, via :meth:`Pushdown.matches`
    otherwise) and maintain ``stats.rows_scanned`` — the number of rows
    physically read from the backend.  The public :meth:`scan` adds the
    LRU page cache and the ``rows_emitted`` accounting on top.
    """

    kind = "abstract"

    def __init__(
        self,
        predicate: str,
        arity: Optional[int] = None,
        page_size: int = 1024,
        max_cache_pages: int = 64,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.predicate = predicate
        self.arity = arity
        self.stats = SourceStats()
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._cache = RowPageCache(page_size=page_size, max_pages=max_cache_pages)

    # -- reading ---------------------------------------------------------------
    def scan(self, pushdown: Optional[Pushdown] = None) -> Iterator[Tuple[object, ...]]:
        """Stream the relation's rows, restricted by ``pushdown``.

        Lazy: nothing is read until the first row is pulled.  A completed
        scan is admitted to the page cache; subsequent scans with the same
        pushdown are served from memory without touching the backend.
        """
        if pushdown is not None and pushdown.is_empty():
            pushdown = None
        key = pushdown.key() if pushdown is not None else ()
        self.stats.scans += 1
        # The active tracer is looked up at first pull (the generator may be
        # created long before it is iterated) and the span is emitted when
        # the scan completes; abandoned scans (early-stop pulls) emit none.
        tracer = get_tracer()
        t_start = time.perf_counter() if tracer is not None else 0.0
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_served_scans += 1
            self.stats.page_hits += len(cached)
            for page in cached:
                for row in page:
                    self.stats.rows_emitted += 1
                    yield row
            if tracer is not None:
                self._emit_scan_span(
                    tracer,
                    t_start,
                    emitted=sum(len(page) for page in cached),
                    scanned=0,
                    cache_served=True,
                    pushdown=pushdown,
                )
            return
        self.stats.page_misses += 1
        scanned_before = self.stats.rows_scanned
        emitted_before = self.stats.rows_emitted
        # Buffer for cache admission only while the result can still fit the
        # page budget; a scan larger than the whole cache is streamed through
        # without being retained (the memory bound stays the cache budget).
        budget = self._cache.page_size * self._cache.max_pages
        rows: Optional[List[Tuple[object, ...]]] = []
        for row in self._scan_resilient(pushdown):
            self.stats.rows_emitted += 1
            if rows is not None:
                rows.append(row)
                if len(rows) > budget:
                    rows = None
            yield row
        if rows is not None:
            self._cache.put(key, rows, self.stats)
        if tracer is not None:
            self._emit_scan_span(
                tracer,
                t_start,
                emitted=self.stats.rows_emitted - emitted_before,
                scanned=self.stats.rows_scanned - scanned_before,
                cache_served=False,
                pushdown=pushdown,
            )

    def _emit_scan_span(
        self,
        tracer,
        t_start: float,
        emitted: int,
        scanned: int,
        cache_served: bool,
        pushdown: Optional[Pushdown],
    ) -> None:
        """Record one completed scan as a ``source-scan`` span.

        Parented to the run root rather than the current phase span: lazy
        scan generators routinely outlive the phase that first pulled them,
        and root-parenting keeps the span-nesting invariant intact.
        """
        tracer.emit(
            "source-scan",
            f"scan:{self.predicate}",
            t_start,
            time.perf_counter(),
            parent=tracer.root,
            attrs={
                "predicate": self.predicate,
                "backend": self.kind,
                "cache_served": cache_served,
                "pushdown": pushdown.describe() if pushdown is not None else None,
            },
            counters={"rows_emitted": emitted, "rows_scanned": scanned},
        )

    def _scan_resilient(self, pushdown: Optional[Pushdown]) -> Iterator[Tuple[object, ...]]:
        """Backend scan wrapped in retry-with-exponential-backoff.

        Transient failures (``retry_policy.retry_on``, by default ``OSError``
        and ``sqlite3.OperationalError``) restart the backend scan; rows
        already handed to the consumer are skipped on the restarted pass —
        backend scans are deterministic, so resume-by-skip neither drops nor
        duplicates rows.  Exhausting the retry budget raises a
        :class:`DataSourceError` chained to the last transient error.
        """
        policy = self.retry_policy
        emitted = 0
        attempt = 0
        while True:
            try:
                fault_point(
                    "datasource.scan", predicate=self.predicate, attempt=attempt
                )
                skip = emitted
                for row in self._scan_rows(pushdown):
                    if skip:
                        skip -= 1
                        continue
                    emitted += 1
                    yield row
                return
            except policy.retry_on as exc:
                attempt += 1
                if attempt > policy.attempts:
                    self.stats.retry_giveups += 1
                    self._emit_retry_span(exc, attempt, "giveup")
                    raise DataSourceError(
                        f"{self.kind} source for {self.predicate!r} failed after "
                        f"{attempt} attempts: {exc}"
                    ) from exc
                self.stats.retries += 1
                self._emit_retry_span(exc, attempt, "retry")
                time.sleep(policy.delay_for(attempt))

    def _emit_retry_span(self, exc: BaseException, attempt: int, action: str) -> None:
        """Record one absorbed retry (or final giveup) as an error-tagged span."""
        tracer = get_tracer()
        if tracer is None:
            return
        now = time.perf_counter()
        tracer.emit(
            "source-retry",
            f"retry:{self.predicate}",
            now,
            now,
            parent=tracer.root,
            attrs={
                "predicate": self.predicate,
                "backend": self.kind,
                "attempt": attempt,
                "action": action,
            },
            status="error",
            error=f"{type(exc).__name__}: {exc}",
        )
        tracer.metrics.counter("source.retries").inc()

    def _scan_rows(self, pushdown: Optional[Pushdown]) -> Iterator[Tuple[object, ...]]:
        raise NotImplementedError

    def _check_arity(self, row: Sequence[object], where: str) -> None:
        if self.arity is not None and len(row) != self.arity:
            raise DataSourceError(
                f"arity mismatch for predicate {self.predicate!r}: {where} has "
                f"{len(row)} columns but the program uses arity {self.arity}"
            )

    # -- writing ---------------------------------------------------------------
    def write_rows(self, rows: Iterable[Sequence[object]]) -> int:
        """Replace the relation's content with ``rows``; returns rows written."""
        raise DataSourceError(
            f"{self.kind} source for {self.predicate!r} does not support writing"
        )

    def _note_written(self, count: int) -> int:
        self.stats.rows_written += count
        self._cache.invalidate()
        return count

    def describe(self) -> str:
        return f"{self.kind}:{self.predicate}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.predicate!r})"


class InMemoryDataSource(DataSource):
    """A plain list of tuples, the in-memory end of the registry.

    When the source was resolved from a relation registered with
    :func:`publish_memory_relation`, ``published_name`` links back to that
    registry entry so writebacks update the published relation too.
    """

    kind = "memory"

    def __init__(
        self,
        predicate: str,
        rows: Iterable[Sequence[object]],
        published_name: Optional[str] = None,
        **kwargs,
    ) -> None:
        super().__init__(predicate, **kwargs)
        self._rows = [tuple(row) for row in rows]
        self._published_name = published_name
        self.stats.relation_rows = len(self._rows)
        for row in self._rows:
            self._check_arity(row, "an in-memory row")

    def _scan_rows(self, pushdown: Optional[Pushdown]) -> Iterator[Tuple[object, ...]]:
        for row in self._rows:
            self.stats.rows_scanned += 1
            if pushdown is None or pushdown.matches(row):
                yield row

    def write_rows(self, rows: Iterable[Sequence[object]]) -> int:
        self._rows = [tuple(row) for row in rows]
        if self._published_name is not None:
            _MEMORY_RELATIONS[self._published_name] = list(self._rows)
        self.stats.relation_rows = len(self._rows)
        return self._note_written(len(self._rows))


class CsvDataSource(DataSource):
    """A CSV file, one tuple per line, with numeric/boolean type inference."""

    kind = "csv"

    def __init__(
        self,
        predicate: str,
        path: Union[str, Path],
        has_header: bool = False,
        delimiter: str = ",",
        **kwargs,
    ) -> None:
        super().__init__(predicate, **kwargs)
        self.path = Path(path)
        self.has_header = has_header
        self.delimiter = delimiter

    def _scan_rows(self, pushdown: Optional[Pushdown]) -> Iterator[Tuple[object, ...]]:
        from .csv_io import _coerce

        if not self.path.exists():
            raise DataSourceError(
                f"csv source for {self.predicate!r} not found: {self.path}"
            )
        raw = 0
        with self.path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            for index, cells in enumerate(reader):
                if (index == 0 and self.has_header) or not cells:
                    continue
                row = tuple(_coerce(cell) for cell in cells)
                self._check_arity(row, f"row {index + 1} of {self.path}")
                raw += 1
                self.stats.rows_scanned += 1
                if pushdown is None or pushdown.matches(row):
                    yield row
        self.stats.relation_rows = raw

    def write_rows(self, rows: Iterable[Sequence[object]]) -> int:
        rows = [tuple(row) for row in rows]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", newline="") as handle:
            writer = csv.writer(handle, delimiter=self.delimiter)
            for row in rows:
                writer.writerow(row)
        self.stats.relation_rows = len(rows)
        return self._note_written(len(rows))


class JsonlDataSource(DataSource):
    """A JSON-lines file: each line a JSON array (one tuple per line).

    Lines holding JSON objects are also accepted when the source knows its
    column names (from ``@mapping`` annotations): the object's values are
    read in mapped column order.
    """

    kind = "jsonl"

    def __init__(
        self,
        predicate: str,
        path: Union[str, Path],
        columns: Optional[Sequence[str]] = None,
        **kwargs,
    ) -> None:
        super().__init__(predicate, **kwargs)
        self.path = Path(path)
        self.columns = list(columns) if columns else None

    def _row_from_line(self, payload: object, line_no: int) -> Tuple[object, ...]:
        if isinstance(payload, list):
            return tuple(payload)
        if isinstance(payload, dict):
            if not self.columns:
                raise DataSourceError(
                    f"jsonl source for {self.predicate!r} holds objects; add "
                    f"@mapping annotations naming its columns"
                )
            try:
                return tuple(payload[column] for column in self.columns)
            except KeyError as exc:
                raise DataSourceError(
                    f"jsonl source for {self.predicate!r}: line {line_no} lacks "
                    f"mapped column {exc.args[0]!r}"
                ) from exc
        raise DataSourceError(
            f"jsonl source for {self.predicate!r}: line {line_no} is neither an "
            f"array nor an object"
        )

    def _scan_rows(self, pushdown: Optional[Pushdown]) -> Iterator[Tuple[object, ...]]:
        if not self.path.exists():
            raise DataSourceError(
                f"jsonl source for {self.predicate!r} not found: {self.path}"
            )
        raw = 0
        with self.path.open() as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DataSourceError(
                        f"jsonl source for {self.predicate!r}: line {line_no} is "
                        f"not valid JSON ({exc.msg})"
                    ) from exc
                row = self._row_from_line(payload, line_no)
                self._check_arity(row, f"line {line_no} of {self.path}")
                raw += 1
                self.stats.rows_scanned += 1
                if pushdown is None or pushdown.matches(row):
                    yield row
        self.stats.relation_rows = raw

    def write_rows(self, rows: Iterable[Sequence[object]]) -> int:
        rows = [tuple(row) for row in rows]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w") as handle:
            for row in rows:
                if self.columns and len(self.columns) == len(row):
                    handle.write(json.dumps(dict(zip(self.columns, row))) + "\n")
                else:
                    handle.write(json.dumps(list(row)) + "\n")
        self.stats.relation_rows = len(rows)
        return self._note_written(len(rows))


class SQLiteDataSource(DataSource):
    """A table of a SQLite database file, scanned with native pushdown.

    Selection pushdown: constraints whose semantics SQLite shares with the
    engine (:func:`_sql_compatible`) become a parameterised ``WHERE``
    clause, so filtered rows never leave the database; the rest are applied
    Python-side after the fetch.  Projection pushdown: a column fixed by an
    equality constant is dropped from the ``SELECT`` list and reconstructed
    client-side, so its bytes are never transferred.
    """

    kind = "sqlite"

    def __init__(
        self,
        predicate: str,
        path: Union[str, Path],
        table: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
        create: bool = False,
        busy_timeout: float = 5.0,
        **kwargs,
    ) -> None:
        super().__init__(predicate, **kwargs)
        self.path = Path(path)
        self.table = table or predicate
        self._columns = list(columns) if columns else None
        #: Seconds SQLite blocks on a locked database before raising
        #: ``OperationalError`` — which the retry policy then backs off on,
        #: so short lock contention is absorbed instead of failing the scan.
        self.busy_timeout = busy_timeout
        if not create:
            self._validate_schema()

    # -- schema ----------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if not self.path.exists():
            raise DataSourceError(
                f"sqlite source for {self.predicate!r} not found: {self.path}"
            )
        return sqlite3.connect(str(self.path), timeout=self.busy_timeout)

    def _table_columns(self, connection: sqlite3.Connection) -> List[str]:
        cursor = connection.execute(f'PRAGMA table_info("{self.table}")')
        columns = [row[1] for row in cursor.fetchall()]
        if not columns:
            raise DataSourceError(
                f"sqlite source for {self.predicate!r}: table {self.table!r} "
                f"does not exist in {self.path}"
            )
        return columns

    def _validate_schema(self) -> None:
        with self._connect() as connection:
            table_columns = self._table_columns(connection)
            if self._columns:
                missing = [c for c in self._columns if c not in table_columns]
                if missing:
                    raise DataSourceError(
                        f"sqlite source for {self.predicate!r}: table "
                        f"{self.table!r} lacks mapped column(s) "
                        f"{', '.join(repr(c) for c in missing)}"
                    )
            columns = self._columns or table_columns
            if self.arity is not None and len(columns) != self.arity:
                raise DataSourceError(
                    f"arity mismatch for predicate {self.predicate!r}: table "
                    f"{self.table!r} in {self.path} has {len(columns)} columns "
                    f"but the program uses arity {self.arity}"
                )
            self._columns = columns

    @property
    def columns(self) -> Optional[List[str]]:
        return self._columns

    # -- reading ---------------------------------------------------------------
    def _split_pushdown(
        self, pushdown: Optional[Pushdown]
    ) -> Tuple[List[Tuple[int, str, object]], Optional[Pushdown]]:
        if pushdown is None:
            return [], None
        native = [c for c in pushdown.constraints if _sql_compatible(c[1], c[2])]
        residual = tuple(c for c in pushdown.constraints if c not in native)
        return native, (Pushdown(residual) if residual else None)

    def _scan_rows(self, pushdown: Optional[Pushdown]) -> Iterator[Tuple[object, ...]]:
        native, residual = self._split_pushdown(pushdown)
        with self._connect() as connection:
            columns = self._columns or self._table_columns(connection)
            self._columns = columns
            if self.stats.relation_rows is None:
                self.stats.relation_rows = connection.execute(
                    f'SELECT COUNT(*) FROM "{self.table}"'
                ).fetchone()[0]
            # Projection pushdown: equality-fixed columns are reconstructed
            # client-side instead of being transferred.
            fixed = {
                pos: value for pos, op, value in native if op == "=="
            }
            selected = [i for i in range(len(columns)) if i not in fixed]
            select_list = (
                ", ".join(f'"{columns[i]}"' for i in selected) if selected else "1"
            )
            where_parts: List[str] = []
            params: List[object] = []
            for pos, op, value in native:
                if pos >= len(columns):
                    raise DataSourceError(
                        f"sqlite source for {self.predicate!r}: pushdown on "
                        f"column {pos} but table {self.table!r} has only "
                        f"{len(columns)} columns"
                    )
                if op == "!=":
                    # SQL three-valued logic would drop NULL-valued rows that
                    # Python's ``None != value`` keeps; match the engine.
                    where_parts.append(
                        f'("{columns[pos]}" != ? OR "{columns[pos]}" IS NULL)'
                    )
                else:
                    where_parts.append(f'"{columns[pos]}" {_SQL_OPS[op]} ?')
                params.append(int(value) if isinstance(value, bool) else value)
            sql = f'SELECT {select_list} FROM "{self.table}"'
            if where_parts:
                sql += " WHERE " + " AND ".join(where_parts)
            cursor = connection.execute(sql, params)
            for fetched in cursor:
                self.stats.rows_scanned += 1
                row_values: List[object] = [None] * len(columns)
                for out_pos, i in enumerate(selected):
                    row_values[i] = fetched[out_pos]
                for pos, value in fixed.items():
                    row_values[pos] = value
                row = tuple(row_values)
                if residual is None or residual.matches(row):
                    yield row

    # -- writing ---------------------------------------------------------------
    def write_rows(self, rows: Iterable[Sequence[object]]) -> int:
        rows = [tuple(row) for row in rows]
        arity = self.arity
        if arity is None:
            arity = len(rows[0]) if rows else len(self._columns or ())
        if not arity:
            raise DataSourceError(
                f"sqlite source for {self.predicate!r}: cannot infer the table "
                f"schema for an empty write; declare the predicate's arity"
            )
        columns = self._columns or [f"c{i}" for i in range(arity)]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with sqlite3.connect(str(self.path)) as connection:
            column_ddl = ", ".join(f'"{c}"' for c in columns)
            connection.execute(f'DROP TABLE IF EXISTS "{self.table}"')
            connection.execute(f'CREATE TABLE "{self.table}" ({column_ddl})')
            placeholders = ", ".join("?" for _ in columns)
            prepared = [
                tuple(int(v) if isinstance(v, bool) else v for v in row)
                for row in rows
            ]
            connection.executemany(
                f'INSERT INTO "{self.table}" VALUES ({placeholders})', prepared
            )
        self._columns = columns
        self.stats.relation_rows = len(rows)
        return self._note_written(len(rows))


# ---------------------------------------------------------------------------
# The registry ``@bind`` resolves through
# ---------------------------------------------------------------------------

#: Named in-memory relations addressable as ``@bind("P", "memory", "name")``.
_MEMORY_RELATIONS: Dict[str, List[Tuple[object, ...]]] = {}


def publish_memory_relation(name: str, rows: Iterable[Sequence[object]]) -> None:
    """Register rows under ``name`` for ``@bind(..., "memory", name)``."""
    _MEMORY_RELATIONS[name] = [tuple(row) for row in rows]


def clear_memory_relations() -> None:
    """Drop every published in-memory relation (test isolation)."""
    _MEMORY_RELATIONS.clear()


def _make_memory(
    predicate: str, location: str, args: Sequence[object], options: Dict[str, object]
) -> DataSource:
    if location not in _MEMORY_RELATIONS:
        if options.get("create"):
            _MEMORY_RELATIONS[location] = []  # writeback target, starts empty
        else:
            known = ", ".join(sorted(_MEMORY_RELATIONS)) or "none published"
            raise DataSourceError(
                f"memory source {location!r} for predicate {predicate!r} is not "
                f"published (known relations: {known}); call "
                f"publish_memory_relation({location!r}, rows) first"
            )
    return InMemoryDataSource(
        predicate,
        _MEMORY_RELATIONS[location],
        published_name=location,
        arity=options.get("arity"),
    )


def _make_csv(
    predicate: str, location: str, args: Sequence[object], options: Dict[str, object]
) -> DataSource:
    path = _resolve_path(location, options)
    _require_file(path, "csv", predicate, options)
    delimiter = str(args[0]) if args else ","
    return CsvDataSource(
        predicate, path, delimiter=delimiter, arity=options.get("arity")
    )


def _make_jsonl(
    predicate: str, location: str, args: Sequence[object], options: Dict[str, object]
) -> DataSource:
    path = _resolve_path(location, options)
    _require_file(path, "jsonl", predicate, options)
    return JsonlDataSource(
        predicate,
        path,
        columns=options.get("columns"),
        arity=options.get("arity"),
    )


def _make_sqlite(
    predicate: str, location: str, args: Sequence[object], options: Dict[str, object]
) -> DataSource:
    path = _resolve_path(location, options)
    create = bool(options.get("create"))
    _require_file(path, "sqlite", predicate, options)
    table = str(args[0]) if args else None
    return SQLiteDataSource(
        predicate,
        path,
        table=table,
        columns=options.get("columns"),
        arity=options.get("arity"),
        create=create,
    )


def _resolve_path(location: str, options: Dict[str, object]) -> Path:
    base = options.get("base_path")
    path = Path(str(location))
    if base is not None and not path.is_absolute():
        path = Path(str(base)) / path
    return path


def _require_file(
    path: Path, kind: str, predicate: str, options: Dict[str, object]
) -> None:
    if options.get("create"):
        return  # writeback target: the file is created on first write
    if not path.exists():
        raise DataSourceError(
            f"{kind} source for predicate {predicate!r} does not exist: {path}"
        )


#: kind -> factory(predicate, location, extra_args, options) -> DataSource
DATASOURCE_KINDS: Dict[str, Callable[..., DataSource]] = {
    "memory": _make_memory,
    "csv": _make_csv,
    "jsonl": _make_jsonl,
    "sqlite": _make_sqlite,
}


def register_datasource(kind: str, factory: Callable[..., DataSource]) -> None:
    """Add (or replace) a backend in the ``@bind`` registry."""
    DATASOURCE_KINDS[kind.lower()] = factory


def datasource_kinds() -> Tuple[str, ...]:
    return tuple(sorted(DATASOURCE_KINDS))


def create_datasource(
    kind: str,
    predicate: str,
    location: object,
    extra_args: Sequence[object] = (),
    *,
    base_path: Union[str, Path, None] = None,
    arity: Optional[int] = None,
    columns: Optional[Sequence[str]] = None,
    create: bool = False,
) -> DataSource:
    """Resolve one ``@bind`` into a :class:`DataSource` via the registry.

    ``create=True`` marks a writeback target (``@output`` predicates): the
    backing file need not exist yet and schema validation is deferred to the
    first write.
    """
    factory = DATASOURCE_KINDS.get(str(kind).lower())
    if factory is None:
        raise DataSourceError(
            f"unknown @bind source kind {kind!r} for predicate {predicate!r}; "
            f"known kinds: {', '.join(datasource_kinds())}"
        )
    options: Dict[str, object] = {
        "base_path": base_path,
        "arity": arity,
        "columns": list(columns) if columns else None,
        "create": create,
    }
    return factory(predicate, str(location), tuple(extra_args), options)


# ---------------------------------------------------------------------------
# SQLite import/export helpers (workload conversion, tests, docs)
# ---------------------------------------------------------------------------


def save_database_sqlite(
    database: Database,
    path: Union[str, Path],
    columns_by_relation: Optional[Dict[str, Sequence[str]]] = None,
) -> Path:
    """Export every relation of a database into tables of one SQLite file.

    Column names default to ``c0..cN-1``; booleans are stored as integers
    (SQLite has no boolean storage class).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with sqlite3.connect(str(path)) as connection:
        for name in database.relations():
            relation = database.relation(name)
            columns = list(
                (columns_by_relation or {}).get(name)
                or [f"c{i}" for i in range(relation.arity)]
            )
            if len(columns) != relation.arity:
                raise DataSourceError(
                    f"relation {name!r} has arity {relation.arity} but "
                    f"{len(columns)} column names were given"
                )
            column_ddl = ", ".join(f'"{c}"' for c in columns)
            connection.execute(f'DROP TABLE IF EXISTS "{name}"')
            connection.execute(f'CREATE TABLE "{name}" ({column_ddl})')
            placeholders = ", ".join("?" for _ in columns)
            connection.executemany(
                f'INSERT INTO "{name}" VALUES ({placeholders})',
                [
                    tuple(int(v) if isinstance(v, bool) else v for v in row)
                    for row in relation.tuples
                ],
            )
    return path


def load_database_sqlite(path: Union[str, Path]) -> Database:
    """Load every table of a SQLite file back into an in-memory database."""
    path = Path(path)
    if not path.exists():
        raise DataSourceError(f"sqlite database does not exist: {path}")
    database = Database()
    with sqlite3.connect(str(path)) as connection:
        tables = [
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
            )
        ]
        for table in tables:
            rows = connection.execute(f'SELECT * FROM "{table}"').fetchall()
            if rows:
                database.add_tuples(table, [tuple(row) for row in rows])
    return database
