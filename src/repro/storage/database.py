"""Extensional databases: named relations of ground tuples.

:class:`Database` is the **in-memory** backend of the storage layer: a
dictionary of :class:`Relation` objects holding plain Python tuples, with
converters to and from the :class:`~repro.core.atoms.Fact` representation
used by the engines.  It is the default way to hand extensional data to
``VadalogReasoner.reason(database=...)`` and what the workload generators
produce.

It is *not* the only backend: ``@bind`` annotations route predicates to
external datasources — SQLite, CSV and JSONL files — through the registry
in :mod:`repro.storage.datasources`, with selection/projection pushdown and
lazy cursors; :func:`repro.storage.datasources.save_database_sqlite`
exports a :class:`Database` into that world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.atoms import Fact
from ..core.terms import Constant


@dataclass
class Relation:
    """A named relation: a list of same-arity tuples of plain Python values."""

    name: str
    arity: int
    tuples: List[Tuple[object, ...]] = field(default_factory=list)

    def add(self, row: Sequence[object]) -> None:
        row = tuple(row)
        if len(row) != self.arity:
            raise ValueError(
                f"relation {self.name} has arity {self.arity}, got a tuple of {len(row)}"
            )
        self.tuples.append(row)

    def extend(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.add(row)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self.tuples)

    def facts(self) -> List[Fact]:
        """The relation as facts over constants."""
        return [Fact(self.name, [Constant(v) for v in row]) for row in self.tuples]

    def distinct(self) -> "Relation":
        seen: Dict[Tuple[object, ...], None] = {}
        for row in self.tuples:
            seen.setdefault(row, None)
        return Relation(self.name, self.arity, list(seen))


class Database:
    """A collection of relations, i.e. the extensional database D."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}

    # -- building --------------------------------------------------------------
    def relation(self, name: str, arity: Optional[int] = None) -> Relation:
        """Get (or create, when ``arity`` is given) a relation by name."""
        existing = self._relations.get(name)
        if existing is not None:
            return existing
        if arity is None:
            raise KeyError(f"relation {name!r} does not exist")
        created = Relation(name, arity)
        self._relations[name] = created
        return created

    def add_tuple(self, name: str, row: Sequence[object]) -> None:
        self.relation(name, len(tuple(row))).add(row)

    def add_tuples(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        rows = list(rows)
        if not rows:
            return
        relation = self.relation(name, len(tuple(rows[0])))
        relation.extend(rows)

    def add_facts(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.add_tuple(fact.predicate, fact.values())

    # -- access ----------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relations(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def facts(self, name: Optional[str] = None) -> List[Fact]:
        """Facts of one relation, or of the whole database."""
        if name is not None:
            return self._relations[name].facts() if name in self._relations else []
        result: List[Fact] = []
        for relation in self._relations.values():
            result.extend(relation.facts())
        return result

    def size(self, name: Optional[str] = None) -> int:
        if name is not None:
            return len(self._relations.get(name, ()))
        return sum(len(r) for r in self._relations.values())

    def __len__(self) -> int:
        return self.size()

    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "Database":
        database = cls()
        database.add_facts(facts)
        return database

    @classmethod
    def from_dict(cls, relations: Dict[str, Iterable[Sequence[object]]]) -> "Database":
        database = cls()
        for name, rows in relations.items():
            database.add_tuples(name, rows)
        return database
