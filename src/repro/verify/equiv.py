"""Bounded equivalence checking of optimizer rewritings.

:func:`check_equivalence` takes an :class:`EquivalenceTask` (original
program, rewritten program, query, shared EDB schema) and decides whether
some certain answer of the original is missing from the rewrite (or vice
versa) on *some* database within the bounds:

* ``backend="z3"`` — solve the symbolic encoding of
  :mod:`repro.verify.encode` with z3: SAT yields a concrete counterexample
  database (always re-confirmed by running the real chase on it before
  being reported), UNSAT proves equivalence up to the bounds;
* ``backend="exhaustive"`` — the same encoding, solved by exhaustive
  enumeration of the EDB selector assignments; used when z3 is not
  installed and the instance space is small (self-tests, tiny pools), with
  the same up-to-the-bounds guarantee;
* ``backend="enumerate"`` — no encoding at all: concrete differential
  sampling, running both programs on seeded random bounded databases; can
  only ever report a counterexample or "no counterexample found in N
  instances";
* ``backend="auto"`` — z3 if importable, else exhaustive if the selector
  space is small enough, else enumerate.

Counterexamples are *never* reported on the solver's word alone: every
model is decoded into a database and replayed through the real reasoner on
both programs; a model the chase disagrees with is discarded (and blocked,
on the z3 path) rather than surfaced.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.atoms import Atom, Fact
from ..core.harmful_joins import UnsupportedHarmfulJoin, eliminate_harmful_joins
from ..core.parser import parse_atom, parse_program
from ..core.rules import Program
from ..core.terms import Constant
from ..core.transform import apply_transform, normalize_for_chase
from ..core.wardedness import analyse_program
from ..engine.reasoner import VadalogReasoner
from ..storage.datasources import Pushdown
from .encode import Bounds, EncodingUnsupported, encode_task, py_eval

__all__ = [
    "EquivalenceTask",
    "EquivalenceReport",
    "Counterexample",
    "check_equivalence",
    "concrete_divergence",
    "magic_task",
    "slice_task",
    "pushdown_task",
]

#: Selector-count ceiling for the pure-Python exhaustive solver (2^limit
#: assignments are evaluated in the worst case).
EXHAUSTIVE_LIMIT = 12


@dataclass
class EquivalenceTask:
    """One original/rewritten program pair to compare over all bounded DBs."""

    name: str
    transform: str
    original: Program
    transformed: Program
    query: Atom
    #: Shared extensional schema: predicate → arity.
    edb: Dict[str, int]
    #: Extra ground facts the rewritten program needs in every database
    #: (magic seeds).
    seeds: Tuple[Fact, ...] = ()
    #: Per-source row filters of the rewritten side, as serialisable
    #: ``(position, op, value)`` triples (pushdown).
    edb_filters: Dict[str, Tuple[Tuple[int, str, object], ...]] = field(
        default_factory=dict
    )
    changed: bool = True
    detail: str = ""


@dataclass
class Counterexample:
    """A concrete database on which the two programs disagree."""

    database: Dict[str, List[Tuple[object, ...]]]
    #: One diverging certain answer (value tuple of the query predicate).
    witness: Optional[Tuple[object, ...]]
    #: Which side is missing the witness: ``"original"`` or ``"transformed"``.
    missing_in: str
    #: True when the divergence was replayed through the real chase.
    confirmed: bool = True


@dataclass
class EquivalenceReport:
    """Outcome of one equivalence check.

    ``verdict`` is ``"equivalent"`` (proved up to the bounds — z3 UNSAT or
    an exhausted exhaustive sweep), ``"counterexample"`` (confirmed concrete
    divergence in :attr:`counterexample`) or ``"no_counterexample"`` (the
    weaker claim: nothing found within the budget — always the strongest
    claim the ``enumerate`` backend can make).
    """

    task: str
    transform: str
    verdict: str
    backend: str
    bounds: Optional[Bounds] = None
    counterexample: Optional[Counterexample] = None
    checked: int = 0
    notes: str = ""
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return self.verdict == "equivalent"


# --------------------------------------------------------------------------
# Task construction
# --------------------------------------------------------------------------


def _pipeline_program(program: Union[Program, str]) -> Program:
    """Mirror the reasoner's pre-chase pipeline (harmful joins + normalise)."""
    if isinstance(program, str):
        program = parse_program(program)
    analysis = analyse_program(program)
    if analysis.has_harmful_joins:
        try:
            program = eliminate_harmful_joins(program).program
        except UnsupportedHarmfulJoin:
            pass
    return normalize_for_chase(program)


def _edb_schema(program: Program) -> Dict[str, int]:
    schema: Dict[str, int] = {}
    edb = program.edb_predicates()
    for rule in program.rules:
        for atom in rule.relational_body:
            if atom.predicate in edb:
                schema.setdefault(atom.predicate, atom.arity)
    return schema


def _build_task(
    program: Union[Program, str],
    query: Union[Atom, str],
    transform: str,
    name: Optional[str],
) -> EquivalenceTask:
    if isinstance(query, str):
        query = parse_atom(query)
    normalized = _pipeline_program(program)
    schema = _edb_schema(normalized)
    application = apply_transform(
        normalized, query, transform, analyse_program(normalized)
    )
    return EquivalenceTask(
        name=name or f"{transform}:{query.predicate}",
        transform=transform,
        original=normalized,
        transformed=application.program,
        query=query,
        edb=schema,
        seeds=application.seeds,
        edb_filters=application.edb_filters,
        changed=application.changed,
        detail=application.detail,
    )


def magic_task(
    program: Union[Program, str],
    query: Union[Atom, str],
    unsound: bool = False,
    name: Optional[str] = None,
) -> EquivalenceTask:
    """Magic-set rewriting vs the unrewritten program.

    ``unsound=True`` builds the deliberately broken variant of
    :func:`repro.core.magic.unsound_variant` (self-test injection).
    """
    return _build_task(program, query, "magic-unsound" if unsound else "magic", name)


def slice_task(
    program: Union[Program, str],
    query: Union[Atom, str],
    name: Optional[str] = None,
) -> EquivalenceTask:
    """Backward-slice pruning vs the full program."""
    return _build_task(program, query, "slice", name)


def pushdown_task(
    program: Union[Program, str],
    query: Union[Atom, str],
    name: Optional[str] = None,
) -> EquivalenceTask:
    """Source-selection pushdown vs unfiltered sources."""
    return _build_task(program, query, "pushdown", name)


# --------------------------------------------------------------------------
# Concrete replay (the ground truth both symbolic backends defer to)
# --------------------------------------------------------------------------


class _TaskRunner:
    """Caches one reasoner per side; replays databases through the chase."""

    def __init__(self, task: EquivalenceTask) -> None:
        self.task = task
        self._original = VadalogReasoner(task.original.copy())
        self._transformed = VadalogReasoner(task.transformed.copy())

    def _side_answers(
        self, reasoner: VadalogReasoner, facts: List[Fact]
    ) -> Set[Tuple[object, ...]]:
        query = self.task.query
        result = reasoner.reason(database=facts, outputs=[query.predicate])
        answers: Set[Tuple[object, ...]] = set()
        for fact in result.answers.facts(query.predicate):
            if fact.has_nulls:
                continue
            if query.match(fact) is not None:
                answers.add(fact.values())
        return answers

    def divergence(
        self, database: Dict[str, Sequence[Tuple[object, ...]]]
    ) -> Optional[Counterexample]:
        task = self.task
        original_facts = [
            Fact(predicate, row)
            for predicate in sorted(database)
            for row in database[predicate]
        ]
        transformed_facts = []
        for predicate in sorted(database):
            rows = database[predicate]
            constraint_spec = task.edb_filters.get(predicate)
            if constraint_spec:
                pushdown = Pushdown(tuple(constraint_spec))
                rows = [row for row in rows if pushdown.matches(row)]
            transformed_facts.extend(Fact(predicate, row) for row in rows)
        transformed_facts.extend(task.seeds)
        left = self._side_answers(self._original, original_facts)
        right = self._side_answers(self._transformed, transformed_facts)
        if left == right:
            return None
        missing_in = "transformed" if left - right else "original"
        witness = sorted(left.symmetric_difference(right), key=repr)[0]
        return Counterexample(
            database={p: sorted(rows, key=repr) for p, rows in database.items()},
            witness=witness,
            missing_in=missing_in,
            confirmed=True,
        )


def concrete_divergence(
    task: EquivalenceTask, database: Dict[str, Sequence[Tuple[object, ...]]]
) -> Optional[Counterexample]:
    """Run both programs on one concrete database; the real-chase verdict."""
    return _TaskRunner(task).divergence(database)


# --------------------------------------------------------------------------
# Backends
# --------------------------------------------------------------------------


def _solve_exhaustive(
    task: EquivalenceTask, encoding, runner: _TaskRunner, max_models: int
) -> EquivalenceReport:
    names = encoding.selector_names()
    system = list(encoding.constraints) + [encoding.goal]
    checked = 0
    spurious = 0
    # Sweep by increasing database size so hits are small counterexamples.
    for count in range(len(names) + 1):
        for chosen in itertools.combinations(names, count):
            checked += 1
            assignment = dict.fromkeys(chosen, True)
            if not all(py_eval(node, assignment) for node in system):
                continue
            database = encoding.database_from_assignment(assignment)
            counterexample = runner.divergence(database)
            if counterexample is not None:
                return EquivalenceReport(
                    task=task.name,
                    transform=task.transform,
                    verdict="counterexample",
                    backend="exhaustive",
                    bounds=encoding.bounds,
                    counterexample=counterexample,
                    checked=checked,
                    stats=encoding.stats,
                )
            spurious += 1
            if spurious >= max_models:
                return EquivalenceReport(
                    task=task.name,
                    transform=task.transform,
                    verdict="no_counterexample",
                    backend="exhaustive",
                    bounds=encoding.bounds,
                    checked=checked,
                    notes=f"{spurious} symbolic models failed concrete confirmation",
                    stats=encoding.stats,
                )
    verdict = "no_counterexample" if (encoding.truncated or spurious) else "equivalent"
    notes = ""
    if encoding.truncated:
        notes = "null depth truncated; equivalence claim limited"
    elif spurious:
        notes = f"{spurious} symbolic models failed concrete confirmation"
    return EquivalenceReport(
        task=task.name,
        transform=task.transform,
        verdict=verdict,
        backend="exhaustive",
        bounds=encoding.bounds,
        checked=checked,
        notes=notes,
        stats=encoding.stats,
    )


def _solve_z3(
    task: EquivalenceTask,
    encoding,
    runner: _TaskRunner,
    max_models: int,
    timeout_ms: int,
) -> EquivalenceReport:  # pragma: no cover - requires z3-solver
    import z3

    from .encode import to_z3

    cache: dict = {}
    solver = z3.Solver()
    solver.set("timeout", timeout_ms)
    for constraint in encoding.constraints:
        solver.add(to_z3(constraint, z3, cache))
    solver.add(to_z3(encoding.goal, z3, cache))
    names = encoding.selector_names()
    z3_vars = {name: z3.Bool(name) for name in names}
    spurious = 0
    for _ in range(max_models):
        outcome = solver.check()
        if outcome == z3.unsat:
            verdict = (
                "no_counterexample" if (encoding.truncated or spurious) else "equivalent"
            )
            notes = ""
            if encoding.truncated:
                notes = "null depth truncated; equivalence claim limited"
            elif spurious:
                notes = f"{spurious} symbolic models failed concrete confirmation"
            return EquivalenceReport(
                task=task.name,
                transform=task.transform,
                verdict=verdict,
                backend="z3",
                bounds=encoding.bounds,
                checked=spurious + 1,
                notes=notes,
                stats=encoding.stats,
            )
        if outcome != z3.sat:
            return EquivalenceReport(
                task=task.name,
                transform=task.transform,
                verdict="no_counterexample",
                backend="z3",
                bounds=encoding.bounds,
                checked=spurious,
                notes=f"solver returned {outcome}",
                stats=encoding.stats,
            )
        model = solver.model()
        assignment = {
            name: bool(model.eval(z3_vars[name], model_completion=True))
            for name in names
        }
        database = encoding.database_from_assignment(assignment)
        counterexample = runner.divergence(database)
        if counterexample is not None:
            return EquivalenceReport(
                task=task.name,
                transform=task.transform,
                verdict="counterexample",
                backend="z3",
                bounds=encoding.bounds,
                counterexample=counterexample,
                checked=spurious + 1,
                stats=encoding.stats,
            )
        spurious += 1
        solver.add(
            z3.Or(
                *[
                    z3_vars[name] != z3.BoolVal(assignment[name])
                    for name in names
                ]
            )
        )
    return EquivalenceReport(
        task=task.name,
        transform=task.transform,
        verdict="no_counterexample",
        backend="z3",
        bounds=encoding.bounds,
        checked=spurious,
        notes=f"{spurious} symbolic models failed concrete confirmation",
        stats=encoding.stats,
    )


def _enumerate_databases(
    task: EquivalenceTask, bounds: Bounds, samples: int, seed: int
):
    """Seeded stream of small concrete databases over the task's pool."""
    from .encode import _pool_constants

    pool = [
        constant.value
        for constant in _pool_constants(
            (task.original, task.transformed), task.query, bounds.extra_constants
        )
    ]
    schema = sorted(task.edb.items())
    # Systematic phase: one fact total, swept across predicates and rows.
    emitted = 0
    for predicate, arity in schema:
        for row in itertools.product(pool, repeat=arity):
            if emitted >= samples:
                return
            emitted += 1
            yield {predicate: [row]}
    rng = random.Random(seed)
    while emitted < samples:
        emitted += 1
        database = {}
        for predicate, arity in schema:
            n_rows = rng.randint(0, bounds.k_facts)
            rows = {
                tuple(rng.choice(pool) for _ in range(arity)) for _ in range(n_rows)
            }
            if rows:
                database[predicate] = sorted(rows, key=repr)
        yield database


def _solve_enumerate(
    task: EquivalenceTask,
    bounds: Bounds,
    runner: _TaskRunner,
    samples: int,
    seed: int,
    notes: str = "",
) -> EquivalenceReport:
    checked = 0
    for database in _enumerate_databases(task, bounds, samples, seed):
        checked += 1
        counterexample = runner.divergence(database)
        if counterexample is not None:
            return EquivalenceReport(
                task=task.name,
                transform=task.transform,
                verdict="counterexample",
                backend="enumerate",
                bounds=bounds,
                counterexample=counterexample,
                checked=checked,
                notes=notes,
            )
    return EquivalenceReport(
        task=task.name,
        transform=task.transform,
        verdict="no_counterexample",
        backend="enumerate",
        bounds=bounds,
        checked=checked,
        notes=notes or f"no divergence in {checked} sampled databases",
    )


def _z3_available() -> bool:
    try:  # pragma: no cover - depends on the optional extra
        import z3  # noqa: F401

        return True
    except ImportError:
        return False


def check_equivalence(
    task: EquivalenceTask,
    bounds: Optional[Bounds] = None,
    backend: str = "auto",
    samples: int = 120,
    seed: int = 0,
    max_models: int = 5,
    timeout_ms: int = 60_000,
) -> EquivalenceReport:
    """Decide bounded equivalence of one task; see the module docstring."""
    bounds = bounds or Bounds()
    if backend not in ("auto", "z3", "exhaustive", "enumerate"):
        raise ValueError(f"unknown backend {backend!r}")
    if not task.changed and not task.seeds and not task.edb_filters:
        if task.transformed is task.original or (
            task.transformed.rules == task.original.rules
        ):
            return EquivalenceReport(
                task=task.name,
                transform=task.transform,
                verdict="equivalent",
                backend="static",
                bounds=bounds,
                notes="transform left the program unchanged",
            )
    runner = _TaskRunner(task)
    if backend == "enumerate":
        return _solve_enumerate(task, bounds, runner, samples, seed)
    try:
        encoding = encode_task(task, bounds)
    except EncodingUnsupported as exc:
        if backend in ("z3", "exhaustive"):
            raise
        return _solve_enumerate(
            task, bounds, runner, samples, seed, notes=f"encoding unsupported: {exc}"
        )
    if encoding.goal is False and not encoding.truncated:
        # No candidate answer can differ on any bounded database.
        return EquivalenceReport(
            task=task.name,
            transform=task.transform,
            verdict="equivalent",
            backend="static",
            bounds=bounds,
            notes="divergence goal simplified to false",
            stats=encoding.stats,
        )
    if backend == "z3" or (backend == "auto" and _z3_available()):
        return _solve_z3(  # pragma: no cover - requires z3-solver
            task, encoding, runner, max_models, timeout_ms
        )
    if len(encoding.selectors) <= EXHAUSTIVE_LIMIT:
        return _solve_exhaustive(task, encoding, runner, max_models)
    if backend == "exhaustive":
        raise EncodingUnsupported(
            f"{len(encoding.selectors)} selectors exceed the exhaustive limit "
            f"({EXHAUSTIVE_LIMIT}); install z3 or use enumerate"
        )
    return _solve_enumerate(
        task,
        bounds,
        runner,
        samples,
        seed,
        notes="selector space too large for exhaustive solving without z3",
    )
