"""The fuzz-corpus oracle: symbolic equivalence checks as a second opinion.

The PR 5 fuzz harness compares the optimizer rewritings against concrete
runs on one random database per case.  This module adds the symbolic
oracle on top of the same corpus (:mod:`repro.testing.fuzz`): every case's
magic rewriting is checked over *all* databases within the bounds
(:func:`check_fuzz_case` / :func:`sweep`), and any divergence — concrete
or symbolic — is shrunk by :mod:`repro.verify.minimize` and written out as
a standalone regression test under ``tests/regressions/``
(:func:`write_regression`).

``backend="auto"`` degrades gracefully without z3: small instances are
solved exhaustively in pure Python, large ones fall back to seeded concrete
sampling, and the report says which claim was actually made.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.parser import unparse_atom
from ..core.rules import Program
from ..engine.reasoner import VadalogReasoner
from ..testing import fuzz
from .encode import Bounds
from .equiv import EquivalenceReport, check_equivalence, magic_task
from .minimize import MinimisationResult, minimise_divergence, repro_snippet

__all__ = [
    "DEFAULT_BOUNDS",
    "OracleOutcome",
    "check_fuzz_case",
    "sweep",
    "magic_divergence_oracle",
    "shrink_and_report",
    "write_regression",
]

#: Bounds used for corpus sweeps: k=3 facts per predicate (the acceptance
#: bound), 4 unrolled rounds (the corpus' recursion converges in ≤ 3 over
#: pools this small — the convergence constraints enforce it per model).
DEFAULT_BOUNDS = Bounds(k_facts=3, rounds=4)


@dataclass
class OracleOutcome:
    """One corpus case's oracle run."""

    index: int
    seed: int
    query: Optional[Atom]
    report: Optional[EquivalenceReport]

    @property
    def skipped(self) -> bool:
        return self.report is None

    def summary(self) -> str:
        if self.report is None:
            return f"case {self.index}: skipped (no derivable point query)"
        report = self.report
        extra = f" [{report.notes}]" if report.notes else ""
        return (
            f"case {self.index}: {report.verdict} via {report.backend}"
            f" (transform={report.transform}, checked={report.checked}){extra}"
        )


def check_fuzz_case(
    index: int,
    backend: str = "auto",
    bounds: Optional[Bounds] = None,
    samples: int = 60,
    transform: str = "magic",
    unsound: bool = False,
) -> OracleOutcome:
    """Run the symbolic oracle on one corpus case's point query."""
    case = fuzz.generate_case(index)
    reasoner = VadalogReasoner(case.program.copy())
    result = reasoner.reason(database=case.database)
    query = fuzz.point_query(case, result)
    if query is None:
        return OracleOutcome(index=index, seed=case.seed, query=None, report=None)
    task = magic_task(
        case.program, query, unsound=unsound, name=f"fuzz-{index}"
    )
    task.transform = transform if not unsound else "magic-unsound"
    report = check_equivalence(
        task, bounds=bounds or DEFAULT_BOUNDS, backend=backend, samples=samples
    )
    return OracleOutcome(index=index, seed=case.seed, query=query, report=report)


def sweep(
    indices: Sequence[int],
    backend: str = "auto",
    bounds: Optional[Bounds] = None,
    samples: int = 60,
) -> List[OracleOutcome]:
    """Run the oracle over a corpus slice; outcomes in index order."""
    return [
        check_fuzz_case(index, backend=backend, bounds=bounds, samples=samples)
        for index in indices
    ]


# --------------------------------------------------------------------------
# Divergence handling: shrink, snippet, regression file
# --------------------------------------------------------------------------


def magic_divergence_oracle(query_hint: Optional[Atom] = None):
    """A shrinker oracle comparing ``rewrite="magic"`` against ``"none"``.

    Goes through the *public* reasoner pipeline (exactly what the fuzz
    suite asserts on), so a shrunk case keeps failing the same way the
    original did.  Returns the smallest diverging certain answer, or a
    ``("<null-patterns>",)`` sentinel when only the null answer patterns
    differ.
    """

    def diverges(program: Program, database, query: Atom):
        from ..core.isomorphism import pattern_key

        reasoner = VadalogReasoner(program.copy())
        plain = reasoner.reason(database=database, query=query, rewrite="none")
        magic = reasoner.reason(database=database, query=query, rewrite="magic")
        predicate = query.predicate
        plain_ground = set(plain.ground_tuples(predicate))
        magic_ground = set(magic.ground_tuples(predicate))
        if plain_ground != magic_ground:
            return sorted(plain_ground.symmetric_difference(magic_ground), key=repr)[0]
        plain_patterns = {
            pattern_key(f) for f in plain.answers.facts(predicate) if f.has_nulls
        }
        magic_patterns = {
            pattern_key(f) for f in magic.answers.facts(predicate) if f.has_nulls
        }
        if plain_patterns != magic_patterns:
            return ("<null-patterns>",)
        return None

    return diverges


def shrink_and_report(
    label: str,
    seed: Optional[int],
    program: Program,
    database: Dict[str, Sequence[Tuple[object, ...]]],
    query: Atom,
    diverges=None,
    max_checks: int = 400,
    transform: str = "magic",
) -> Tuple[MinimisationResult, str]:
    """Shrink one diverging case and render its copy-pasteable repro."""
    minimised = minimise_divergence(
        program, database, query, diverges or magic_divergence_oracle(), max_checks
    )
    snippet = repro_snippet(
        label,
        seed,
        minimised.program_text,
        minimised.database,
        minimised.query,
        transform=transform,
    )
    return minimised, snippet


_REGRESSION_TEMPLATE = '''"""Auto-generated regression — found by the translation-validation oracle.

Source: {label}{seed_note}.  The magic-set rewriting must return the same
certain answers as the unrewritten program on this minimised case; the
divergence below was observed under a broken rewriting and shrunk by
``repro.verify.minimize``.
"""

from repro.engine.reasoner import VadalogReasoner

PROGRAM = """\\
{program_text}
"""

DATABASE = {database_repr}

QUERY = {query_text!r}


def test_{name}():
    reasoner = VadalogReasoner(PROGRAM)
    plain = reasoner.reason(database=DATABASE, query=QUERY, rewrite="none")
    magic = reasoner.reason(database=DATABASE, query=QUERY, rewrite="magic")
    predicate = {predicate!r}
    assert set(magic.ground_tuples(predicate)) == set(plain.ground_tuples(predicate))
'''


def write_regression(
    directory: Path,
    name: str,
    label: str,
    program_text: str,
    database: Dict[str, Sequence[Tuple[object, ...]]],
    query: Atom,
    seed: Optional[int] = None,
) -> Path:
    """Write a standalone pytest regression for one shrunk divergence.

    The generated test asserts magic-vs-plain agreement through the public
    pipeline: it *fails* while the rewrite is broken and passes once fixed,
    pinning the bug class forever.  ``name`` must be a valid identifier
    suffix; the file lands at ``directory/test_regression_<name>.py``.
    """
    name = re.sub(r"[^0-9A-Za-z_]", "_", name)
    database_repr = "{\n" + "".join(
        f"    {predicate!r}: {sorted(rows, key=repr)!r},\n"
        for predicate, rows in sorted(database.items())
    ) + "}"
    content = _REGRESSION_TEMPLATE.format(
        label=label,
        seed_note=f" (seed {seed})" if seed is not None else "",
        program_text=program_text,
        database_repr=database_repr,
        query_text=unparse_atom(query),
        name=name,
        predicate=query.predicate,
    )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"test_regression_{name}.py"
    path.write_text(content, encoding="utf-8")
    return path
