"""Bounded symbolic encoding of chase equivalence (translation validation).

Following the VeriEQL recipe adapted from SQL to warded Datalog±, one
:class:`EquivalenceTask` (an original program, a rewritten program, a query
and a shared extensional schema) is compiled into a Boolean formula over a
*bounded symbolic instance*:

* **the instance** — for every extensional predicate, every tuple over a
  finite constant pool (the program's and query's constants plus a few
  fresh ones) gets a free *selector* variable saying "this fact is in the
  database", with an at-most-``k`` cardinality constraint per predicate;
* **labelled nulls** — every existential rule gets one Skolem null per
  (existential variable, frontier binding over the pool), shared between
  the two programs (after normalisation both sides fire the *same* linear
  existential rules, so their witnesses coincide by construction);
* **rule firing** — the chase is unrolled per recursive stratum: each round
  asserts ``head-membership ← AND(body memberships)`` for every grounding,
  with body comparisons evaluated statically per grounding (they only ever
  see pool constants and nulls, exactly like the engine's
  :meth:`~repro.core.conditions.Comparison.holds`);
* **convergence** — each recursive stratum carries the constraint that its
  last unrolled round derived nothing new, so a model is a genuine chase
  fixpoint, never an artefact of one side needing more rounds;
* **divergence goal** — OR over the ground (null-free) tuples matching the
  query of XOR(original derives it, rewrite derives it): SAT means some
  certain answer differs on the selected database, UNSAT means equivalence
  *up to the bounds* (pool size, facts per predicate, unrolled rounds,
  null depth).

The encoding is a plain Python formula tree — no solver is needed to build
it, so it is testable (and exhaustively solvable for small bounds) without
z3; :func:`to_z3` converts the tree for the real solver when available.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom, Fact
from ..core.rules import Program, Rule
from ..core.terms import Constant, Null, Term, Variable

__all__ = [
    "Bounds",
    "EncodingUnsupported",
    "TaskEncoding",
    "encode_task",
    "f_var",
    "f_not",
    "f_and",
    "f_or",
    "f_xor",
    "f_at_most",
    "py_eval",
    "to_z3",
]


class EncodingUnsupported(Exception):
    """The program or bounds fall outside what the encoder can handle.

    Raised for features the bounded encoding does not model (aggregates,
    assignments, ``Dom`` guards, EGDs/constraints) and for bound blow-ups
    (null pool or grounding count over budget).  Callers fall back to
    concrete differential sampling.
    """


@dataclass(frozen=True)
class Bounds:
    """Finite bounds of the symbolic instance.

    ``k_facts`` symbolic facts per extensional predicate over a pool of the
    task's constants plus ``extra_constants`` fresh ones; recursive strata
    unrolled ``rounds`` times; at most ``max_nulls`` Skolem nulls (one per
    existential variable and frontier binding, depth 1 — deeper chains are
    dropped and flagged as truncation); at most ``max_firings`` rule
    groundings in the whole encoding (the tractability valve).
    """

    k_facts: int = 3
    extra_constants: int = 2
    rounds: int = 6
    max_nulls: int = 64
    max_firings: int = 60_000


# --------------------------------------------------------------------------
# Formula trees
# --------------------------------------------------------------------------
#
# Nodes are Python ``True``/``False`` or tuples: ("v", name), ("!", x),
# ("&", (xs…)), ("|", (xs…)), ("^", a, b), ("≤", k, (xs…)).  Constructors
# simplify statically — crucial for keeping round-0 firings (empty IDB)
# from materialising at all.


def f_var(name: str):
    return ("v", name)


def f_not(x):
    if x is True:
        return False
    if x is False:
        return True
    if isinstance(x, tuple) and x[0] == "!":
        return x[1]
    return ("!", x)


def f_and(items: Iterable):
    out = []
    for item in items:
        if item is False:
            return False
        if item is True:
            continue
        out.append(item)
    if not out:
        return True
    if len(out) == 1:
        return out[0]
    return ("&", tuple(out))


def f_or(items: Iterable):
    out = []
    for item in items:
        if item is True:
            return True
        if item is False:
            continue
        out.append(item)
    if not out:
        return False
    if len(out) == 1:
        return out[0]
    return ("|", tuple(out))


def f_xor(a, b):
    if a is False:
        return b
    if b is False:
        return a
    if a is True:
        return f_not(b)
    if b is True:
        return f_not(a)
    if a is b:
        return False
    return ("^", a, b)


def f_at_most(items: Sequence, k: int):
    items = [i for i in items if i is not False]
    if len(items) <= k:
        return True
    return ("≤", k, tuple(items))


def py_eval(node, assignment: Mapping[str, bool], _cache: Optional[dict] = None) -> bool:
    """Evaluate a formula tree under a selector assignment (pure Python).

    ``assignment`` maps variable names to booleans; missing names default to
    ``False`` (fact absent).  Shared sub-trees are evaluated once per call.
    """
    if _cache is None:
        _cache = {}

    def walk(n) -> bool:
        if n is True or n is False:
            return n
        key = id(n)
        hit = _cache.get(key)
        if hit is not None:
            return hit
        tag = n[0]
        if tag == "v":
            value = bool(assignment.get(n[1], False))
        elif tag == "!":
            value = not walk(n[1])
        elif tag == "&":
            value = all(walk(c) for c in n[1])
        elif tag == "|":
            value = any(walk(c) for c in n[1])
        elif tag == "^":
            value = walk(n[1]) != walk(n[2])
        else:  # "≤"
            value = sum(1 for c in n[2] if walk(c)) <= n[1]
        _cache[key] = value
        return value

    return walk(node)


def formula_size(node, _seen: Optional[set] = None) -> int:
    """Number of distinct nodes in a formula tree (diagnostics)."""
    if _seen is None:
        _seen = set()
    if node is True or node is False or id(node) in _seen:
        return 0
    _seen.add(id(node))
    tag = node[0]
    if tag == "v":
        return 1
    if tag == "!":
        return 1 + formula_size(node[1], _seen)
    if tag == "^":
        return 1 + formula_size(node[1], _seen) + formula_size(node[2], _seen)
    children = node[1] if tag == "&" or tag == "|" else node[2]
    return 1 + sum(formula_size(c, _seen) for c in children)


def to_z3(node, z3_module, cache: Optional[dict] = None):  # pragma: no cover
    """Convert a formula tree into a z3 Boolean expression (z3 installed only)."""
    z3 = z3_module
    if cache is None:
        cache = {}

    def walk(n):
        if n is True:
            return z3.BoolVal(True)
        if n is False:
            return z3.BoolVal(False)
        key = id(n)
        hit = cache.get(key)
        if hit is not None:
            return hit
        tag = n[0]
        if tag == "v":
            expr = z3.Bool(n[1])
        elif tag == "!":
            expr = z3.Not(walk(n[1]))
        elif tag == "&":
            expr = z3.And(*[walk(c) for c in n[1]])
        elif tag == "|":
            expr = z3.Or(*[walk(c) for c in n[1]])
        elif tag == "^":
            expr = z3.Xor(walk(n[1]), walk(n[2]))
        else:  # "≤"
            expr = z3.AtMost(*[walk(c) for c in n[2]], n[1])
        cache[key] = expr
        return expr

    return walk(node)


# --------------------------------------------------------------------------
# The task encoding
# --------------------------------------------------------------------------


@dataclass
class TaskEncoding:
    """The compiled formula system of one equivalence task.

    A model of ``AND(constraints) ∧ goal`` assigns the EDB ``selectors`` a
    database on which the two programs disagree about some certain answer
    matching the query; unsatisfiability means equivalence up to
    :attr:`bounds` (and up to :attr:`truncated` — when true, some null
    chain exceeded the depth bound and its derivations were dropped on
    *both* sides, so UNSAT no longer covers the full bounded space).
    """

    bounds: Bounds
    pool: Tuple[Constant, ...]
    #: (predicate, value tuple) → selector variable name.
    selectors: Dict[Tuple[str, Tuple[object, ...]], str]
    constraints: List[object]
    goal: object
    truncated: bool = False
    stats: Dict[str, int] = field(default_factory=dict)
    #: (answer value tuple, divergence formula) per candidate certain answer.
    witnesses: List[Tuple[Tuple[object, ...], object]] = field(default_factory=list)

    def selector_names(self) -> List[str]:
        return sorted(self.selectors.values())

    def database_from_assignment(
        self, assignment: Mapping[str, bool]
    ) -> Dict[str, List[Tuple[object, ...]]]:
        """Decode a satisfying selector assignment into a concrete database."""
        database: Dict[str, List[Tuple[object, ...]]] = {}
        for (predicate, values), name in sorted(self.selectors.items(), key=repr):
            if assignment.get(name, False):
                database.setdefault(predicate, []).append(values)
        return database


def _pool_constants(programs: Sequence[Program], query: Atom, extra: int) -> Tuple[Constant, ...]:
    """The constant pool: program + query constants plus ``extra`` fresh ones."""
    values: List[object] = []
    seen: Set[object] = set()

    def add(value: object) -> None:
        key = (type(value).__name__, value)
        if key not in seen:
            seen.add(key)
            values.append(value)

    for program in programs:
        for rule in program.rules:
            for atom in list(rule.head) + list(rule.relational_body):
                for term in atom.terms:
                    if isinstance(term, Constant):
                        add(term.value)
            for condition in rule.conditions:
                for literal in _condition_literals(condition):
                    add(literal)
        for program_fact in program.facts:
            for term in program_fact.terms:
                if isinstance(term, Constant):
                    add(term.value)
    for term in query.terms:
        if isinstance(term, Constant):
            add(term.value)
    index = 0
    for _ in range(extra):
        while f"_c{index}" in seen or ("str", f"_c{index}") in seen:
            index += 1
        add(f"_c{index}")
        index += 1
    return tuple(Constant(v) for v in values)


def _condition_literals(condition) -> List[object]:
    from ..core.expressions import BinaryOp, Literal, UnaryOp

    literals: List[object] = []

    def walk(expr) -> None:
        if isinstance(expr, Literal):
            literals.append(expr.value)
        elif isinstance(expr, BinaryOp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, UnaryOp):
            walk(expr.operand)

    walk(condition.left)
    walk(condition.right)
    return literals


def _check_supported(program: Program, side: str) -> None:
    if program.constraints or program.egds:
        raise EncodingUnsupported(f"{side}: EGDs/denial constraints are not encoded")
    for rule in program.rules:
        if len(rule.head) > 1:
            raise EncodingUnsupported(
                f"{side}: multi-head rule {rule.label!r} (normalise the program first)"
            )
        if rule.aggregate is not None:
            raise EncodingUnsupported(f"{side}: aggregates are not encoded ({rule.label})")
        if rule.assignments:
            raise EncodingUnsupported(f"{side}: assignments are not encoded ({rule.label})")
        if rule.dom_guards:
            raise EncodingUnsupported(f"{side}: Dom guards are not encoded ({rule.label})")
        body_vars = set()
        for atom in rule.relational_body:
            body_vars.update(atom.variables())
        for condition in rule.conditions:
            if any(v not in body_vars for v in condition.variables()):
                raise EncodingUnsupported(
                    f"{side}: condition over non-body variable ({rule.label})"
                )


def _existential_signature(rule: Rule) -> Tuple[Tuple[Variable, ...], Tuple[Variable, ...]]:
    """(frontier variables, existential variables) in deterministic order."""
    existentials = tuple(rule.existential_variables())
    existential_set = set(existentials)
    frontier: List[Variable] = []
    for atom in rule.head:
        for variable in atom.variables():
            if variable not in existential_set and variable not in frontier:
                frontier.append(variable)
    return tuple(frontier), existentials


def _build_skolem_table(
    programs: Sequence[Program], pool: Tuple[Constant, ...], bounds: Bounds
) -> Dict[Tuple[str, str, Tuple[Term, ...]], Null]:
    """One shared Skolem null per (rule label, existential var, frontier binding).

    Frontier bindings range over the constant pool only (null depth 1);
    groundings whose frontier carries a null find no table entry and are
    dropped with ``truncated=True`` by the side encoders.
    """
    table: Dict[Tuple[str, str, Tuple[Term, ...]], Null] = {}
    signatures: Dict[str, Tuple[Tuple[Variable, ...], Tuple[Variable, ...]]] = {}
    for program in programs:
        for rule in program.rules:
            existentials = rule.existential_variables()
            if not existentials:
                continue
            signatures.setdefault(rule.label or repr(rule), _existential_signature(rule))
    count = 0
    for label in sorted(signatures):
        frontier, existentials = signatures[label]
        bindings = itertools.product(pool, repeat=len(frontier))
        for binding in bindings:
            for z in existentials:
                count += 1
                if count > bounds.max_nulls:
                    raise EncodingUnsupported(
                        f"null pool exceeds bound ({count} > {bounds.max_nulls})"
                    )
                ident = f"v_{label}_{z.name}_{len(table)}"
                table[(label, z.name, tuple(binding))] = Null(ident)
    return table


def _predicate_sccs(rules: Sequence[Rule]) -> List[List[str]]:
    """SCCs of the head←body predicate dependency graph, topologically ordered.

    Returned bottom-up: every SCC appears after all SCCs it depends on.
    """
    dependencies: Dict[str, Set[str]] = {}
    for rule in rules:
        for head in rule.head_predicate_names():
            deps = dependencies.setdefault(head, set())
            for atom in rule.relational_body:
                deps.add(atom.predicate)
                dependencies.setdefault(atom.predicate, set())
    order: List[str] = []
    visited: Set[str] = set()

    def visit(node: str) -> None:
        stack = [(node, iter(sorted(dependencies.get(node, ()))))]
        visited.add(node)
        while stack:
            current, iterator = stack[-1]
            advanced = False
            for successor in iterator:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(sorted(dependencies.get(successor, ())))))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    for node in sorted(dependencies):
        if node not in visited:
            visit(node)

    # Kosaraju second pass over the reversed graph (body → head).
    reverse: Dict[str, Set[str]] = {node: set() for node in dependencies}
    for head, deps in dependencies.items():
        for dep in deps:
            reverse.setdefault(dep, set()).add(head)
    assigned: Set[str] = set()
    components: List[List[str]] = []
    for node in reversed(order):
        if node in assigned:
            continue
        component = []
        stack = [node]
        assigned.add(node)
        while stack:
            current = stack.pop()
            component.append(current)
            for successor in sorted(reverse.get(current, ())):
                if successor not in assigned:
                    assigned.add(successor)
                    stack.append(successor)
        components.append(sorted(component))
    # Kosaraju emits components in reverse topological order of the
    # dependency graph (consumers first); flip to process producers first.
    components.reverse()
    return components


class _SideEncoder:
    """Unrolls one program's chase over the shared symbolic instance."""

    def __init__(
        self,
        side: str,
        program: Program,
        base: Dict[str, Dict[Tuple[Term, ...], object]],
        skolem: Mapping[Tuple[str, str, Tuple[Term, ...]], Null],
        bounds: Bounds,
        budget: List[int],
    ) -> None:
        self.side = side
        self.program = program
        self.membership: Dict[str, Dict[Tuple[Term, ...], object]] = {
            predicate: dict(entries) for predicate, entries in base.items()
        }
        self.skolem = skolem
        self.bounds = bounds
        self.budget = budget  # single-element mutable: groundings left
        self.truncated = False
        self.convergence: List[object] = []
        self.groundings = 0

    def run(self) -> None:
        rules_by_head: Dict[str, List[Rule]] = {}
        for rule in self.program.rules:
            for head in rule.head_predicate_names():
                rules_by_head.setdefault(head, []).append(rule)
        for component in _predicate_sccs(self.program.rules):
            in_component = set(component)
            rules = [
                rule
                for predicate in component
                for rule in rules_by_head.get(predicate, ())
            ]
            deduped: List[Rule] = []
            seen_ids: Set[int] = set()
            for candidate in rules:
                if id(candidate) not in seen_ids:
                    seen_ids.add(id(candidate))
                    deduped.append(candidate)
            rules = deduped
            if not rules:
                continue
            recursive = len(component) > 1 or any(
                atom.predicate in in_component
                for rule in rules
                for atom in rule.relational_body
            )
            if not recursive:
                self._apply_round(rules)
                continue
            previous: Dict[str, Dict[Tuple[Term, ...], object]] = {}
            for _ in range(self.bounds.rounds):
                previous = {
                    predicate: dict(self.membership.get(predicate, {}))
                    for predicate in component
                }
                self._apply_round(rules, snapshot=previous)
            # Fixpoint: the last round must not have derived anything new.
            for predicate in component:
                before = previous.get(predicate, {})
                for values, formula in self.membership.get(predicate, {}).items():
                    prior = before.get(values, False)
                    if formula is prior:
                        continue
                    self.convergence.append(f_or([f_not(formula), prior]))

    # -- one synchronous round over a rule set -----------------------------
    def _apply_round(
        self,
        rules: Sequence[Rule],
        snapshot: Optional[Dict[str, Dict[Tuple[Term, ...], object]]] = None,
    ) -> None:
        derived: List[Tuple[str, Tuple[Term, ...], object]] = []
        for rule in rules:
            derived.extend(self._fire(rule, snapshot))
        merged: Dict[Tuple[str, Tuple[Term, ...]], List[object]] = {}
        for predicate, values, formula in derived:
            merged.setdefault((predicate, values), []).append(formula)
        for (predicate, values), formulas in merged.items():
            entries = self.membership.setdefault(predicate, {})
            existing = entries.get(values, False)
            entries[values] = f_or([existing] + formulas)

    def _lookup(
        self,
        predicate: str,
        snapshot: Optional[Dict[str, Dict[Tuple[Term, ...], object]]],
    ) -> Dict[Tuple[Term, ...], object]:
        if snapshot is not None and predicate in snapshot:
            return snapshot[predicate]
        return self.membership.get(predicate, {})

    def _fire(
        self,
        rule: Rule,
        snapshot: Optional[Dict[str, Dict[Tuple[Term, ...], object]]],
    ) -> List[Tuple[str, Tuple[Term, ...], object]]:
        """All groundings of one rule against the current memberships."""
        body = list(rule.relational_body)
        existentials = set(rule.existential_variables())
        frontier = _existential_signature(rule)[0] if existentials else ()
        label = rule.label or repr(rule)
        if not body:
            # Factual rule: heads are ground by construction.
            return [
                (atom.predicate, tuple(atom.terms), True)
                for atom in rule.head
            ]
        relations = [self._lookup(atom.predicate, snapshot) for atom in body]
        # Scan-join, smallest relation first (deterministic tie-break).
        atom_order = sorted(
            range(len(body)), key=lambda i: (len(relations[i]), i)
        )
        results: List[Tuple[str, Tuple[Term, ...], object]] = []

        def extend(position: int, binding: Dict[Variable, Term], parts: List[object]) -> None:
            if position == len(atom_order):
                self._emit(rule, label, existentials, frontier, binding, parts, results)
                return
            atom = body[atom_order[position]]
            relation = relations[atom_order[position]]
            for values, formula in relation.items():
                local = dict(binding)
                if not _bind_atom(atom, values, local):
                    continue
                extend(position + 1, local, parts + [formula])

        extend(0, {}, [])
        return results

    def _emit(
        self,
        rule: Rule,
        label: str,
        existentials: Set[Variable],
        frontier: Tuple[Variable, ...],
        binding: Dict[Variable, Term],
        parts: List[object],
        results: List[Tuple[str, Tuple[Term, ...], object]],
    ) -> None:
        self.groundings += 1
        self.budget[0] -= 1
        if self.budget[0] < 0:
            raise EncodingUnsupported(
                f"grounding budget exhausted (> {self.bounds.max_firings} firings)"
            )
        for condition in rule.conditions:
            if not condition.holds(binding):
                return
        firing = f_and(parts)
        if firing is False:
            return
        frontier_values: Optional[Tuple[Term, ...]] = None
        if existentials:
            values = tuple(binding[v] for v in frontier)
            if any(isinstance(v, Null) for v in values):
                # Null chain deeper than the Skolem table: drop (both sides
                # share the table, so the truncation is symmetric).
                self.truncated = True
                return
            frontier_values = values
        for atom in rule.head:
            head_values: List[Term] = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    if term in existentials:
                        head_values.append(self.skolem[(label, term.name, frontier_values)])
                    else:
                        head_values.append(binding[term])
                else:
                    head_values.append(term)
            results.append((atom.predicate, tuple(head_values), firing))


def _bind_atom(atom: Atom, values: Tuple[Term, ...], binding: Dict[Variable, Term]) -> bool:
    if len(values) != atom.arity:
        return False
    for term, value in zip(atom.terms, values):
        if isinstance(term, Variable):
            bound = binding.get(term)
            if bound is None:
                binding[term] = value
            elif bound != value:
                return False
        elif term != value:
            return False
    return True


def _row_passes(constraints: Sequence[Tuple[int, str, object]], values: Tuple[object, ...]) -> bool:
    """Static evaluation of a serialised pushdown over one candidate row."""
    from ..storage.datasources import Pushdown

    return Pushdown(tuple(constraints)).matches(values)


def encode_task(task, bounds: Optional[Bounds] = None) -> TaskEncoding:
    """Encode one :class:`~repro.verify.equiv.EquivalenceTask` into formulas.

    Raises :class:`EncodingUnsupported` when the programs use features the
    encoding does not model or when the bounds blow past the budget.
    """
    bounds = bounds or Bounds()
    original: Program = task.original
    transformed: Program = task.transformed
    _check_supported(original, "original")
    _check_supported(transformed, "transformed")

    pool = _pool_constants((original, transformed), task.query, bounds.extra_constants)
    skolem = _build_skolem_table((original, transformed), pool, bounds)

    # -- shared symbolic EDB ------------------------------------------------
    selectors: Dict[Tuple[str, Tuple[object, ...]], str] = {}
    selector_nodes: Dict[Tuple[str, Tuple[object, ...]], object] = {}
    constraints: List[object] = []
    edb_base: Dict[str, Dict[Tuple[Term, ...], object]] = {}
    for predicate in sorted(task.edb):
        arity = task.edb[predicate]
        entries: Dict[Tuple[Term, ...], object] = {}
        per_predicate: List[object] = []
        for index, row in enumerate(itertools.product(pool, repeat=arity)):
            name = f"sel|{predicate}|{index}"
            key = (predicate, tuple(term.value for term in row))
            selectors[key] = name
            node = f_var(name)
            selector_nodes[key] = node
            entries[tuple(row)] = node
            per_predicate.append(node)
        constraints.append(f_at_most(per_predicate, bounds.k_facts))
        edb_base[predicate] = entries

    def base_for(program: Program, seeds: Sequence[Fact], filters) -> Dict[str, Dict[Tuple[Term, ...], object]]:
        base = {
            predicate: dict(entries) for predicate, entries in edb_base.items()
        }
        if filters:
            for predicate, constraint_spec in sorted(filters.items()):
                entries = base.get(predicate)
                if entries is None:
                    continue
                base[predicate] = {
                    row: node
                    for row, node in entries.items()
                    if _row_passes(constraint_spec, tuple(t.value for t in row))
                }
        for program_fact in list(program.facts) + list(seeds):
            entries = base.setdefault(program_fact.predicate, {})
            entries[tuple(program_fact.terms)] = True
        return base

    budget = [bounds.max_firings]
    original_side = _SideEncoder(
        "original", original, base_for(original, (), None), skolem, bounds, budget
    )
    original_side.run()
    transformed_side = _SideEncoder(
        "transformed",
        transformed,
        base_for(transformed, task.seeds, task.edb_filters),
        skolem,
        bounds,
        budget,
    )
    transformed_side.run()

    constraints.extend(original_side.convergence)
    constraints.extend(transformed_side.convergence)

    # -- divergence goal ----------------------------------------------------
    predicate = task.query.predicate
    left = original_side.membership.get(predicate, {})
    right = transformed_side.membership.get(predicate, {})
    differences: List[object] = []
    witnesses: List[Tuple[Tuple[object, ...], object]] = []
    for values in sorted(set(left) | set(right), key=repr):
        if any(isinstance(term, Null) for term in values):
            continue  # certain answers are the ground tuples
        if task.query.match(Fact.from_ground(predicate, values)) is None:
            continue
        delta = f_xor(left.get(values, False), right.get(values, False))
        if delta is not False:
            differences.append(delta)
            witnesses.append((tuple(t.value for t in values), delta))
    goal = f_or(differences)

    encoding = TaskEncoding(
        bounds=bounds,
        pool=pool,
        selectors=selectors,
        constraints=constraints,
        goal=goal,
        truncated=original_side.truncated or transformed_side.truncated,
        stats={
            "pool": len(pool),
            "nulls": len(skolem),
            "selectors": len(selectors),
            "groundings": original_side.groundings + transformed_side.groundings,
            "candidate_answers": len(differences),
        },
        witnesses=witnesses,
    )
    return encoding
