"""Translation validation for the logic-optimizer rewritings (Section 4).

The paper's optimizer rewritings (magic sets, source pushdown, backward
slicing) must preserve *certain answers over every database*, not just the
databases the differential suites happen to test.  This package checks that
claim symbolically, VeriEQL-style: :mod:`repro.verify.encode` unrolls the
chase of a warded program over a bounded symbolic instance into a Boolean
formula, :mod:`repro.verify.equiv` asks a solver whether some certain answer
of the original program can diverge from the rewritten one (SAT ⇒ a concrete
counterexample database, UNSAT ⇒ equivalence up to the bound), and
:mod:`repro.verify.oracle` wires the check into the fuzz corpus as a second
oracle next to the concrete differential runs, auto-minimising any
divergence (:mod:`repro.verify.minimize`) into a regression test.

Z3 is optional (``pip install -e .[verify]``): the encoding itself is pure
Python, solvable exhaustively for small bounds or falling back to concrete
differential sampling when z3 is absent.
"""

from .encode import Bounds, EncodingUnsupported, encode_task
from .equiv import (
    EquivalenceReport,
    EquivalenceTask,
    check_equivalence,
    magic_task,
    pushdown_task,
    slice_task,
)

__all__ = [
    "Bounds",
    "EncodingUnsupported",
    "encode_task",
    "EquivalenceReport",
    "EquivalenceTask",
    "check_equivalence",
    "magic_task",
    "pushdown_task",
    "slice_task",
]
