"""Deterministic shrinking of divergence witnesses.

When the concrete differential harness or the symbolic oracle finds a
program/database/query triple on which two pipelines disagree, the raw case
is usually noise: a dozen rules, twenty facts, most of them irrelevant.
:func:`minimise_divergence` greedily reduces the triple while preserving
the divergence — drop rules (last first), drop database facts, then narrow
the query by binding free positions to the diverging witness — using a
caller-supplied ``diverges`` callback as the oracle, so the same shrinker
serves executor differentials, magic-vs-plain differentials and symbolic
counterexamples alike.

Everything is deterministic: candidates are tried in a fixed order and the
first success is adopted (greedy, restart-on-change), so the same failure
always shrinks to the same minimal repro.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.parser import unparse_atom, unparse_program
from ..core.rules import Program
from ..core.terms import Constant, Variable

__all__ = ["MinimisationResult", "minimise_divergence", "repro_snippet"]

#: ``diverges(program, database, query)`` returns a witness (any truthy
#: value; ideally the diverging answer tuple) or ``None``/falsy.
DivergenceOracle = Callable[
    [Program, Dict[str, Sequence[Tuple[object, ...]]], Atom], Optional[object]
]


@dataclass
class MinimisationResult:
    """The shrunken failing triple plus bookkeeping."""

    program: Program
    database: Dict[str, List[Tuple[object, ...]]]
    query: Atom
    witness: object
    checks: int
    #: (rules, facts) before → after.
    reduction: Tuple[Tuple[int, int], Tuple[int, int]]

    @property
    def program_text(self) -> str:
        return unparse_program(self.program)

    @property
    def query_text(self) -> str:
        return unparse_atom(self.query)


def _db_size(database: Dict[str, Sequence]) -> int:
    return sum(len(rows) for rows in database.values())


def minimise_divergence(
    program: Program,
    database: Dict[str, Sequence[Tuple[object, ...]]],
    query: Atom,
    diverges: DivergenceOracle,
    max_checks: int = 400,
) -> MinimisationResult:
    """Greedily shrink a diverging (program, database, query) triple.

    The input triple must itself diverge — the first oracle call asserts it
    (a shrinker that silently "minimises" a passing case would hide the
    original failure).  Candidate reductions that make the oracle *raise*
    (e.g. a candidate program that loses wardedness) count as non-diverging
    and are skipped.
    """
    database = {p: list(rows) for p, rows in database.items() if rows}
    checks = [0]

    def attempt(candidate_program, candidate_db, candidate_query):
        if checks[0] >= max_checks:
            return None
        checks[0] += 1
        try:
            return diverges(candidate_program, candidate_db, candidate_query)
        except Exception:
            return None

    witness = attempt(program, database, query)
    if not witness:
        raise ValueError("minimise_divergence called on a non-diverging case")
    before = (len(program.rules), _db_size(database))

    # -- drop rules, last first, restarting after each success -------------
    changed = True
    while changed:
        changed = False
        for index in range(len(program.rules) - 1, -1, -1):
            candidate = program.copy()
            candidate.rules = [r for i, r in enumerate(program.rules) if i != index]
            found = attempt(candidate, database, query)
            if found:
                program, witness, changed = candidate, found, True
                break

    # -- drop facts --------------------------------------------------------
    changed = True
    while changed:
        changed = False
        for predicate in sorted(database):
            rows = database[predicate]
            for index in range(len(rows) - 1, -1, -1):
                candidate_db = {
                    p: (rows[:index] + rows[index + 1 :] if p == predicate else list(r))
                    for p, r in database.items()
                }
                candidate_db = {p: r for p, r in candidate_db.items() if r}
                found = attempt(program, candidate_db, query)
                if found:
                    database, witness, changed = candidate_db, found, True
                    break
            if changed:
                break

    # -- narrow the query: bind free positions to the witness --------------
    if (
        isinstance(witness, tuple)
        and len(witness) == query.arity
        and not any(isinstance(v, Variable) for v in witness)
    ):
        for position, term in enumerate(query.terms):
            if not isinstance(term, Variable):
                continue
            value = witness[position]
            if isinstance(value, (Constant,)):
                value = value.value
            if not isinstance(value, (str, int, float, bool)):
                continue  # labelled nulls cannot be bound in a query
            terms = list(query.terms)
            terms[position] = Constant(value)
            candidate_query = Atom(query.predicate, terms)
            found = attempt(program, database, candidate_query)
            if found:
                query, witness = candidate_query, found

    return MinimisationResult(
        program=program,
        database=database,
        query=query,
        witness=witness,
        checks=checks[0],
        reduction=(before, (len(program.rules), _db_size(database))),
    )


def repro_snippet(
    label: str,
    seed: Optional[int],
    program_text: str,
    database: Dict[str, Sequence[Tuple[object, ...]]],
    query: Atom,
    transform: str = "magic",
) -> str:
    """A copy-pasteable script reproducing one shrunk divergence.

    Printed by the fuzz harness on failure (naming the case seed, so the
    repro is traceable back to the corpus) and embedded in generated
    regression tests.  ``transform="magic"`` renders the magic-vs-plain
    comparison; an executor name (``"naive"``, ``"streaming"``,
    ``"parallel"``) renders that executor against the compiled reference.
    """
    database_repr = "{\n" + "".join(
        f"    {predicate!r}: {sorted(rows, key=repr)!r},\n"
        for predicate, rows in sorted(database.items())
    ) + "}"
    query_text = unparse_atom(query)
    seed_line = f" (seed {seed})" if seed is not None else ""
    header = f"# repro for {label}{seed_line} — "
    prelude = f'''from repro.engine.reasoner import VadalogReasoner

PROGRAM = """\\
{program_text}
"""
DATABASE = {database_repr}
'''
    if transform == "magic":
        return f'''{header}magic vs unrewritten
{prelude}QUERY = {query_text!r}

reasoner = VadalogReasoner(PROGRAM)
plain = reasoner.reason(database=DATABASE, query=QUERY, rewrite="none")
magic = reasoner.reason(database=DATABASE, query=QUERY, rewrite="magic")
predicate = {query.predicate!r}
assert set(magic.ground_tuples(predicate)) == set(plain.ground_tuples(predicate)), (
    set(plain.ground_tuples(predicate)), set(magic.ground_tuples(predicate)))
'''
    extra = ", parallelism=2" if transform == "parallel" else ""
    return f'''{header}executor {transform} vs compiled
{prelude}
reference = VadalogReasoner(PROGRAM, executor="compiled").reason(database=DATABASE)
candidate = VadalogReasoner(
    PROGRAM, executor={transform!r}{extra}
).reason(database=DATABASE)
predicate = {query.predicate!r}
assert set(candidate.ground_tuples(predicate)) == set(reference.ground_tuples(predicate)), (
    set(reference.ground_tuples(predicate)), set(candidate.ground_tuples(predicate)))
'''
