"""Parser for the Vadalog surface syntax.

The textual syntax accepted here follows the paper's examples with the usual
Datalog conventions:

* a **rule** is written ``Head1(...), Head2(...) :- Body1(...), W > 0.5.``;
  identifiers starting with an upper-case letter are variables, everything
  else (lower-case identifiers, numbers, quoted strings) is a constant;
* head variables that do not occur in the body are **existentially
  quantified** (``Owns(P, S, X) :- Company(X).``);
* a **fact** is a rule without body: ``Company("HSBC").``;
* a **negative constraint** has an empty head: ``:- Own(X, X, W).``;
* an **EGD** equates two variables in the head: ``X1 = X2 :- Own(X1,Y,W), Own(X2,Y,W).``;
* **conditions** (``W > 0.5``), **assignments** (``V = W * 2``) and
  **monotonic aggregations** (``V = msum(W, <Y>)``) appear in the body;
* **annotations** are ``@input("Own").``, ``@output("Control").``,
  ``@bind("Own", "csv", "own.csv").`` and friends.
* comments run from ``%`` or ``#`` to the end of the line.

The parser is a hand-written recursive-descent parser over a small tokenizer;
it reports errors with line/column information.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .atoms import Atom, Fact
from .conditions import AggregateSpec, Assignment, Comparison
from .expressions import BinaryOp, Expression, Literal, UnaryOp, VariableRef
from .rules import Annotation, EqualityConstraint, NegativeConstraint, Program, Rule
from .terms import Constant, Term, Variable


class VadalogSyntaxError(Exception):
    """Raised on malformed program text, with position information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    line: int
    column: int


_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"(%|#)[^\n]*"),
    ("IMPLIES", r":-"),
    ("NUMBER", r"-?\d+\.\d+|-?\d+"),
    ("STRING", r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\''),
    ("ANNOT", r"@[A-Za-z_][A-Za-z0-9_]*"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("OP", r"\*\*|<=|>=|==|!=|<>|=|<|>|\+|-|\*|/|%"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LANGLE", r"⟨"),
    ("RANGLE", r"⟩"),
    ("COMMA", r","),
    ("DOT", r"\."),
]

_MASTER_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_ESCAPES = {"\\": "\\", '"': '"', "'": "'", "n": "\n", "t": "\t", "r": "\r"}
_UNESCAPE_RE = re.compile(r"\\(.)")


def _unescape_string(token_value: str) -> str:
    """Decode a STRING token (quotes included) into its value.

    ``\\\\``, ``\\"``, ``\\'``, ``\\n``, ``\\t`` and ``\\r`` are decoded;
    any other escaped character stands for itself (``\\x`` → ``x``).
    """
    body = token_value[1:-1]
    return _UNESCAPE_RE.sub(lambda m: _ESCAPES.get(m.group(1), m.group(1)), body)


def escape_string_literal(value: str) -> str:
    """Render a string as a double-quoted literal that re-parses to ``value``."""
    escaped = (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
        .replace("\r", "\\r")
    )
    return f'"{escaped}"'


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _MASTER_RE.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise VadalogSyntaxError(f"unexpected character {text[position]!r}", line, column)
        kind = match.lastgroup or ""
        value = match.group()
        column = position - line_start + 1
        if kind == "WS":
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = position + value.rfind("\n") + 1
        elif kind != "COMMENT":
            tokens.append(_Token(kind, value, line, column))
        position = match.end()
    tokens.append(_Token("EOF", "", line, position - line_start + 1))
    return tokens


_AGGREGATE_FUNCTIONS = set(AggregateSpec.SUPPORTED)
_COMPARISON_OPS = {"<", ">", "<=", ">=", "==", "!=", "<>"}


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value or kind
            raise VadalogSyntaxError(
                f"expected {expected!r}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _error(self, message: str) -> VadalogSyntaxError:
        token = self._peek()
        return VadalogSyntaxError(message, token.line, token.column)

    # -- grammar ---------------------------------------------------------------
    def parse_program(self) -> Program:
        program = Program()
        while self._peek().kind != "EOF":
            self._parse_statement(program)
        return program

    def _parse_statement(self, program: Program) -> None:
        token = self._peek()
        if token.kind == "ANNOT":
            program.annotations.append(self._parse_annotation(program))
            return
        head_items, is_constraint, egd_pair = self._parse_head()
        if self._peek().kind == "IMPLIES":
            self._advance()
            body_atoms, conditions, assignments, aggregate = self._parse_body()
            self._expect("DOT")
            if is_constraint:
                program.constraints.append(
                    NegativeConstraint(body=tuple(body_atoms), conditions=tuple(conditions))
                )
            elif egd_pair is not None:
                left, right = egd_pair
                program.egds.append(
                    EqualityConstraint(
                        body=tuple(body_atoms),
                        left=left,
                        right=right,
                        conditions=tuple(conditions),
                    )
                )
            else:
                program.add_rule(
                    Rule(
                        body=tuple(body_atoms),
                        head=tuple(head_items),
                        conditions=tuple(conditions),
                        assignments=tuple(assignments),
                        aggregate=aggregate,
                    )
                )
            return
        # No ":-": the statement is a fact (or a list of facts).
        self._expect("DOT")
        if is_constraint or egd_pair is not None:
            raise self._error("constraints and EGDs require a body")
        for atom in head_items:
            if not atom.is_ground():
                raise self._error(f"fact {atom!r} contains variables")
            program.add_fact(Fact(atom.predicate, atom.terms))

    def _parse_annotation(self, program: Program) -> Annotation:
        token = self._expect("ANNOT")
        name = token.value[1:]
        arguments: List[object] = []
        if self._peek().kind == "LPAREN":
            self._advance()
            while self._peek().kind != "RPAREN":
                arguments.append(self._parse_literal_value())
                if self._peek().kind == "COMMA":
                    self._advance()
            self._expect("RPAREN")
        self._expect("DOT")
        annotation = Annotation(name=name, arguments=tuple(arguments))
        if name == "input" and arguments:
            program.inputs.add(str(arguments[0]))
        if name == "output" and arguments:
            program.outputs.add(str(arguments[0]))
        return annotation

    def _parse_literal_value(self) -> object:
        token = self._peek()
        if token.kind == "STRING":
            self._advance()
            return _unescape_string(token.value)
        if token.kind == "NUMBER":
            self._advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "IDENT":
            self._advance()
            return token.value
        raise self._error(f"invalid annotation argument {token.value!r}")

    def _parse_head(self) -> Tuple[List[Atom], bool, Optional[Tuple[Variable, Variable]]]:
        """Parse the head: atoms, an empty head (constraint) or an equality (EGD)."""
        if self._peek().kind == "IMPLIES":
            return [], True, None
        # EGD heads look like ``X = Y :- ...``.
        if (
            self._peek().kind == "IDENT"
            and self._is_variable_name(self._peek().value)
            and self._peek(1).kind == "OP"
            and self._peek(1).value == "="
            and self._peek(2).kind == "IDENT"
            and self._is_variable_name(self._peek(2).value)
            and self._peek(3).kind == "IMPLIES"
        ):
            left = Variable(self._advance().value)
            self._advance()  # '='
            right = Variable(self._advance().value)
            return [], False, (left, right)
        atoms = [self._parse_atom()]
        while self._peek().kind == "COMMA":
            self._advance()
            atoms.append(self._parse_atom())
        return atoms, False, None

    def _parse_body(
        self,
    ) -> Tuple[List[Atom], List[Comparison], List[Assignment], Optional[AggregateSpec]]:
        atoms: List[Atom] = []
        conditions: List[Comparison] = []
        assignments: List[Assignment] = []
        aggregate: Optional[AggregateSpec] = None
        while True:
            item = self._parse_body_item()
            if isinstance(item, Atom):
                atoms.append(item)
            elif isinstance(item, Comparison):
                conditions.append(item)
            elif isinstance(item, AggregateSpec):
                if aggregate is not None:
                    raise self._error("at most one aggregation per rule is supported")
                aggregate = item
            elif isinstance(item, Assignment):
                assignments.append(item)
            if self._peek().kind == "COMMA":
                self._advance()
                continue
            break
        return atoms, conditions, assignments, aggregate

    def _parse_body_item(self):
        token = self._peek()
        if token.kind == "IDENT" and self._peek(1).kind == "LPAREN":
            return self._parse_atom()
        # Assignment or aggregation: ``Var = ...``
        if (
            token.kind == "IDENT"
            and self._is_variable_name(token.value)
            and self._peek(1).kind == "OP"
            and self._peek(1).value == "="
        ):
            variable = Variable(self._advance().value)
            self._advance()  # '='
            if (
                self._peek().kind == "IDENT"
                and self._peek().value in _AGGREGATE_FUNCTIONS
                and self._peek(1).kind == "LPAREN"
            ):
                return self._parse_aggregate(variable)
            expression = self._parse_expression()
            return Assignment(variable, expression)
        # Otherwise it must be a comparison between expressions.
        left = self._parse_expression()
        op_token = self._peek()
        if op_token.kind != "OP" or op_token.value not in _COMPARISON_OPS | {"="}:
            raise self._error(f"expected a comparison operator, found {op_token.value!r}")
        self._advance()
        op = "==" if op_token.value == "=" else op_token.value
        right = self._parse_expression()
        return Comparison(op, left, right)

    def _parse_aggregate(self, variable: Variable) -> AggregateSpec:
        function = self._advance().value
        self._expect("LPAREN")
        argument = self._parse_expression()
        contributors: List[Variable] = []
        if self._peek().kind == "COMMA":
            self._advance()
            if self._peek().kind == "OP" and self._peek().value == "<":
                self._advance()
                close = ">"
            elif self._peek().kind == "LANGLE":
                self._advance()
                close = "⟩"
            else:
                raise self._error("expected '<' opening the contributor list")
            while True:
                name_token = self._expect("IDENT")
                if not self._is_variable_name(name_token.value):
                    raise self._error("contributors must be variables")
                contributors.append(Variable(name_token.value))
                if self._peek().kind == "COMMA":
                    self._advance()
                    continue
                break
            if close == ">":
                token = self._peek()
                if token.kind != "OP" or token.value != ">":
                    raise self._error("expected '>' closing the contributor list")
                self._advance()
            else:
                self._expect("RANGLE")
        self._expect("RPAREN")
        return AggregateSpec(
            variable=variable,
            function=function,
            argument=argument,
            contributors=tuple(contributors),
        )

    def _parse_atom(self) -> Atom:
        name_token = self._expect("IDENT")
        self._expect("LPAREN")
        terms: List[Term] = []
        if self._peek().kind != "RPAREN":
            while True:
                terms.append(self._parse_term())
                if self._peek().kind == "COMMA":
                    self._advance()
                    continue
                break
        self._expect("RPAREN")
        return Atom(name_token.value, terms)

    def _parse_term(self) -> Term:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Constant(value)
        if token.kind == "STRING":
            self._advance()
            return Constant(_unescape_string(token.value))
        if token.kind == "OP" and token.value == "*":
            self._advance()
            return Variable("_STAR")
        if token.kind == "IDENT":
            self._advance()
            if self._is_variable_name(token.value):
                return Variable(token.value)
            return Constant(token.value)
        raise self._error(f"invalid term {token.value!r}")

    @staticmethod
    def _is_variable_name(name: str) -> bool:
        return bool(name) and (name[0].isupper() or name[0] == "_") and not name.startswith("_STAR")

    # -- expressions (precedence climbing) -------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_additive()

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._peek().kind == "OP" and self._peek().value in {"+", "-"}:
            op = self._advance().value
            right = self._parse_multiplicative()
            left = BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._peek().kind == "OP" and self._peek().value in {"*", "/", "%", "**"}:
            op = self._advance().value
            right = self._parse_unary()
            left = BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.kind == "OP" and token.value == "-":
            self._advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            self._advance()
            return Literal(_unescape_string(token.value))
        if token.kind == "LPAREN":
            self._advance()
            inner = self._parse_expression()
            self._expect("RPAREN")
            return inner
        if token.kind == "IDENT":
            # Function call or variable/constant reference.
            if self._peek(1).kind == "LPAREN":
                name = self._advance().value
                self._advance()
                arguments: List[Expression] = []
                if self._peek().kind != "RPAREN":
                    while True:
                        arguments.append(self._parse_expression())
                        if self._peek().kind == "COMMA":
                            self._advance()
                            continue
                        break
                self._expect("RPAREN")
                if len(arguments) == 1:
                    return UnaryOp(name, arguments[0])
                if len(arguments) == 2:
                    return BinaryOp(name, arguments[0], arguments[1])
                raise self._error(f"unsupported function arity for {name}")
            self._advance()
            if self._is_variable_name(token.value):
                return VariableRef(Variable(token.value))
            return Literal(token.value)
        raise self._error(f"invalid expression near {token.value!r}")


def parse_program(text: str) -> Program:
    """Parse a Vadalog program from text."""
    return _Parser(text).parse_program()


def parse_atom(text: str) -> Atom:
    """Parse a single, possibly non-ground atom, e.g. ``Control("f0", Y)``.

    Used for query atoms (``VadalogReasoner.reason(query=...)``): constant
    arguments are the bound positions of the query, variables the free
    ones.  A trailing dot is accepted.
    """
    parser = _Parser(text)
    atom = parser._parse_atom()
    if parser._peek().kind == "DOT":
        parser._advance()
    if parser._peek().kind != "EOF":
        raise parser._error("unexpected input after the atom")
    return atom


# ---------------------------------------------------------------------------
# Unparsing (program -> surface syntax).  ``unparse_program(parse_program(t))``
# re-parses to an equivalent program; the fuzz suite pins the round-trip.
# ---------------------------------------------------------------------------


def unparse_term(term: Term) -> str:
    """Render a term in the surface syntax (inverse of ``_parse_term``)."""
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, bool):
            raise ValueError("booleans have no literal form in the surface syntax")
        if isinstance(value, str):
            return escape_string_literal(value)
        if isinstance(value, (int, float)):
            rendered = repr(value)
            if "e" in rendered or "E" in rendered:
                raise ValueError(f"exponent floats are not parseable: {value!r}")
            return rendered
        raise ValueError(f"constant {value!r} has no literal form")
    raise ValueError("labelled nulls cannot appear in program text")


def unparse_atom(atom: Atom) -> str:
    """Render an atom (or fact) in the surface syntax."""
    inner = ", ".join(unparse_term(t) for t in atom.terms)
    return f"{atom.predicate}({inner})"


def unparse_expression(expression: Expression) -> str:
    """Render an expression so that re-parsing yields an equal expression.

    Unlike ``str(expression)`` (which leans on Python's ``repr`` for string
    literals), quoted strings go through :func:`escape_string_literal`, so
    embedded quotes and backslashes survive the round-trip.
    """
    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, str):
            return escape_string_literal(value)
        return str(expression)
    if isinstance(expression, VariableRef):
        return expression.variable.name
    if isinstance(expression, UnaryOp):
        return f"{expression.op}({unparse_expression(expression.operand)})"
    if isinstance(expression, BinaryOp):
        left = unparse_expression(expression.left)
        right = unparse_expression(expression.right)
        return f"({left} {expression.op} {right})"
    return str(expression)


def _unparse_condition(condition: Comparison) -> str:
    left = unparse_expression(condition.left)
    right = unparse_expression(condition.right)
    return f"{left} {condition.op} {right}"


def _unparse_assignment(assignment: Assignment) -> str:
    return f"{assignment.variable.name} = {unparse_expression(assignment.expression)}"


def _unparse_aggregate(aggregate: AggregateSpec) -> str:
    inner = unparse_expression(aggregate.argument)
    if aggregate.contributors:
        contributors = ", ".join(v.name for v in aggregate.contributors)
        inner += f", <{contributors}>"
    return f"{aggregate.variable.name} = {aggregate.function}({inner})"


def _unparse_annotation_argument(argument: object) -> str:
    if isinstance(argument, str):
        return escape_string_literal(argument)
    return repr(argument)


def unparse_rule(rule: Rule) -> str:
    """Render a rule in the surface syntax (labels are not part of it)."""
    parts = [unparse_atom(a) for a in rule.body]
    parts.extend(_unparse_condition(c) for c in rule.conditions)
    parts.extend(_unparse_assignment(a) for a in rule.assignments)
    if rule.aggregate is not None:
        parts.append(_unparse_aggregate(rule.aggregate))
    head = ", ".join(unparse_atom(a) for a in rule.head)
    return f"{head} :- {', '.join(parts)}."


def unparse_program(program: Program) -> str:
    """Render a whole program: annotations, facts, rules, constraints, EGDs."""
    lines: List[str] = []
    for name in sorted(program.inputs):
        lines.append(f'@input("{name}").')
    for name in sorted(program.outputs):
        lines.append(f'@output("{name}").')
    for annotation in program.annotations:
        if annotation.name in ("input", "output"):
            continue  # already rendered from the input/output sets
        inner = ", ".join(_unparse_annotation_argument(a) for a in annotation.arguments)
        lines.append(f"@{annotation.name}({inner}).")
    for fact in program.facts:
        lines.append(f"{unparse_atom(fact)}.")
    for rule in program.rules:
        lines.append(unparse_rule(rule))
    for constraint in program.constraints:
        parts = [unparse_atom(a) for a in constraint.body]
        parts.extend(_unparse_condition(c) for c in constraint.conditions)
        lines.append(f":- {', '.join(parts)}.")
    for egd in program.egds:
        parts = [unparse_atom(a) for a in egd.body]
        parts.extend(_unparse_condition(c) for c in egd.conditions)
        lines.append(f"{egd.left.name} = {egd.right.name} :- {', '.join(parts)}.")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_rule(text: str) -> Rule:
    """Parse a single rule (must end with a dot)."""
    program = parse_program(text)
    if len(program.rules) != 1:
        raise ValueError("expected exactly one rule")
    return program.rules[0]


def parse_fact(text: str) -> Fact:
    """Parse a single fact (must end with a dot)."""
    program = parse_program(text)
    if len(program.facts) != 1:
        raise ValueError("expected exactly one fact")
    return program.facts[0]


def parse_facts(lines: Sequence[str]) -> List[Fact]:
    """Parse many facts, one statement per entry."""
    return [parse_fact(line) for line in lines]
