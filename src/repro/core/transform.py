"""Logic-optimizer rewritings applied before compiling a program (Section 4).

The paper's logic optimizer performs *elementary* rewritings (multiple-head
elimination, redundancy elimination) and *complex* ones (harmful-join
elimination, in :mod:`repro.core.harmful_joins`).  This module implements the
elementary rewritings plus the normalisation assumed by Algorithm 1, namely
that **existential quantification appears only in linear rules** (Section
3.4: "the second [condition is achieved] with an elementary logic
transformation").

All rewritings preserve the reasoning task: the rewritten program computes
the same facts for the original predicates (auxiliary predicates introduced
by the rewriting use a reserved ``_aux`` prefix and are excluded from
outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .atoms import Atom, Fact
from .isomorphism import atom_structure_key
from .rules import Program, Rule
from .terms import Variable

AUX_PREFIX = "_aux_"
"""Prefix of auxiliary predicates introduced by rewritings."""


def is_auxiliary_predicate(name: str) -> bool:
    """True for predicates introduced by the logic optimizer."""
    return name.startswith(AUX_PREFIX)


def _fresh_aux_name(base: str, used: set) -> str:
    candidate = f"{AUX_PREFIX}{base}"
    counter = 0
    while candidate in used:
        counter += 1
        candidate = f"{AUX_PREFIX}{base}_{counter}"
    used.add(candidate)
    return candidate


def split_multiple_heads(program: Program) -> Program:
    """Rewrite rules with several head atoms into single-head rules.

    When the head atoms share existentially quantified variables the split
    must preserve the *joint* witnesses: an auxiliary atom collecting every
    head variable is produced by the original body, and each original head
    atom is derived from the auxiliary atom by a linear rule.  Without shared
    existentials the rule is simply split into one rule per head atom.
    """
    rewritten = program.copy()
    rewritten.rules = []
    used_predicates = {p.name for p in program.predicates()}
    for rule in program.rules:
        if len(rule.head) == 1:
            rewritten.add_rule(rule)
            continue
        existentials = set(rule.existential_variables())
        shared = _existentials_shared_between_heads(rule, existentials)
        if not shared:
            for index, head_atom in enumerate(rule.head):
                rewritten.add_rule(
                    Rule(
                        body=rule.body,
                        head=(head_atom,),
                        conditions=rule.conditions,
                        assignments=rule.assignments,
                        aggregate=rule.aggregate,
                        label=f"{rule.label or 'rule'}_h{index + 1}",
                    )
                )
            continue
        aux_name = _fresh_aux_name(f"{rule.label or 'rule'}_head", used_predicates)
        head_variables = tuple(rule.head_variables())
        aux_atom = Atom(aux_name, head_variables)
        rewritten.add_rule(
            Rule(
                body=rule.body,
                head=(aux_atom,),
                conditions=rule.conditions,
                assignments=rule.assignments,
                aggregate=rule.aggregate,
                label=f"{rule.label or 'rule'}_aux",
            )
        )
        for index, head_atom in enumerate(rule.head):
            rewritten.add_rule(
                Rule(
                    body=(aux_atom,),
                    head=(head_atom,),
                    label=f"{rule.label or 'rule'}_h{index + 1}",
                )
            )
    return rewritten


def _existentials_shared_between_heads(rule: Rule, existentials: set) -> set:
    """Existential variables occurring in more than one head atom."""
    counts: Dict[Variable, int] = {}
    for atom in rule.head:
        for variable in set(atom.variables()):
            if variable in existentials:
                counts[variable] = counts.get(variable, 0) + 1
    return {v for v, count in counts.items() if count > 1}


def isolate_existentials(program: Program) -> Program:
    """Ensure existential quantification appears only in linear rules.

    Every non-linear rule with existentials ``φ(x̄, ȳ) → ∃z̄ H(x̄, z̄)`` is
    split into ``φ(x̄, ȳ) → Aux(x̄)`` (no existentials, same body) followed by
    the linear rule ``Aux(x̄) → ∃z̄ H(x̄, z̄)``.  Rules that are already linear
    or existential-free pass through unchanged.
    """
    rewritten = program.copy()
    rewritten.rules = []
    used_predicates = {p.name for p in program.predicates()}
    for rule in program.rules:
        if rule.is_linear() or not rule.has_existentials():
            rewritten.add_rule(rule)
            continue
        frontier = tuple(
            v
            for v in rule.head_variables()
            if v not in set(rule.existential_variables())
        )
        aux_name = _fresh_aux_name(f"{rule.label or 'rule'}_exist", used_predicates)
        aux_atom = Atom(aux_name, frontier)
        rewritten.add_rule(
            Rule(
                body=rule.body,
                head=(aux_atom,),
                conditions=rule.conditions,
                assignments=rule.assignments,
                aggregate=rule.aggregate,
                label=f"{rule.label or 'rule'}_body",
            )
        )
        rewritten.add_rule(
            Rule(
                body=(aux_atom,),
                head=rule.head,
                label=f"{rule.label or 'rule'}_exists",
            )
        )
    return rewritten


def _rule_structure_key(rule: Rule) -> Tuple:
    """Canonical key of a rule up to variable renaming (for redundancy removal)."""
    renaming: Dict[Variable, Variable] = {}

    def canon(atom: Atom) -> Atom:
        terms = []
        for term in atom.terms:
            if isinstance(term, Variable):
                terms.append(renaming.setdefault(term, Variable(f"_c{len(renaming)}")))
            else:
                terms.append(term)
        return Atom(atom.predicate, terms)

    body_key = tuple(atom_structure_key(a.predicate, canon(a).terms) for a in rule.body)
    head_key = tuple(atom_structure_key(a.predicate, canon(a).terms) for a in rule.head)
    condition_key = tuple(str(c) for c in rule.conditions)
    assignment_key = tuple(str(a) for a in rule.assignments)
    aggregate_key = str(rule.aggregate) if rule.aggregate else ""
    return (body_key, head_key, condition_key, assignment_key, aggregate_key)


def remove_duplicate_rules(program: Program) -> Program:
    """Drop rules that are structurally identical up to variable renaming."""
    rewritten = program.copy()
    rewritten.rules = []
    seen: set = set()
    for rule in program.rules:
        key = _rule_structure_key(rule)
        if key in seen:
            continue
        seen.add(key)
        rewritten.rules.append(rule)
    return rewritten


def normalize_for_chase(program: Program) -> Program:
    """Full elementary normalisation pipeline used by the reasoner.

    1. remove duplicate rules;
    2. split multiple heads;
    3. isolate existential quantification into linear rules.
    """
    return isolate_existentials(split_multiple_heads(remove_duplicate_rules(program)))


def optimize_for_query(program: Program, query, analysis=None):
    """Query-driven entry point of the logic optimizer (magic sets).

    Applied *after* :func:`normalize_for_chase` (the rewriting assumes
    single-head rules for guarding; multi-head rules simply fall back).
    ``query`` is an :class:`~repro.core.atoms.Atom` whose constant
    arguments are the bound positions.  Returns a
    :class:`~repro.core.magic.MagicRewriteResult`; see
    :func:`repro.core.magic.rewrite_with_magic` for the soundness
    conditions (existential safety, constraint handling, ``Dom`` veto).
    """
    from .magic import rewrite_with_magic

    return rewrite_with_magic(program, query, analysis)


# --------------------------------------------------------------------------
# Uniform view of the answer-preserving transforms (translation validation)
# --------------------------------------------------------------------------


@dataclass
class TransformApplication:
    """One optimizer pass applied to a (normalised) program, in plain data.

    The translation-validation oracle (:mod:`repro.verify`) compares
    ``program`` + ``seeds`` + ``edb_filters`` against the input program over
    all bounded databases, so every transform must express its effect in
    these three fields: a rewritten rule set, extra ground facts added to
    each run's database (magic seeds), and per-source row filters in the
    serialisable ``(position, op, value)`` triple form of
    :func:`repro.engine.plan.pushdown_constraint_spec`.
    """

    name: str
    program: Program
    seeds: Tuple[Fact, ...] = ()
    edb_filters: Dict[str, Tuple[Tuple[int, str, object], ...]] = field(
        default_factory=dict
    )
    changed: bool = False
    detail: str = ""


#: Transform names accepted by :func:`apply_transform` (the ``-unsound``
#: variant is a deliberately broken magic rewriting for oracle self-tests).
TRANSFORMS = ("magic", "slice", "pushdown", "magic-unsound")


def apply_transform(
    program: Program, query: Atom, name: str, analysis=None
) -> TransformApplication:
    """Apply one answer-preserving transform and describe it in plain data.

    ``program`` must already be normalised (:func:`normalize_for_chase`);
    ``query`` is the point query driving magic/slicing and naming the
    answer predicate for pushdown.  Engine-layer passes are imported lazily
    to keep :mod:`repro.core` import-light.
    """
    if name == "magic" or name == "magic-unsound":
        result = optimize_for_query(program, query, analysis)
        if name == "magic-unsound":
            from .magic import unsound_variant

            result = unsound_variant(result)
        return TransformApplication(
            name=name,
            program=result.program,
            seeds=tuple(result.seeds),
            changed=result.changed,
            detail=result.reason or f"{result.magic_rules} demand rules",
        )
    if name == "slice":
        from ..engine.plan import backward_slice

        _, rules = backward_slice(program, [query.predicate])
        sliced = program.copy()
        sliced.rules = list(rules)
        return TransformApplication(
            name=name,
            program=sliced,
            changed=len(rules) != len(program.rules),
            detail=f"kept {len(rules)}/{len(program.rules)} rules",
        )
    if name == "pushdown":
        from ..engine.plan import pushdown_constraint_spec

        spec = pushdown_constraint_spec(
            program, sorted(program.edb_predicates()), [query.predicate]
        )
        return TransformApplication(
            name=name,
            program=program,
            edb_filters=dict(spec),
            changed=bool(spec),
            detail=f"pushdown on {sorted(spec)}" if spec else "no pushdown applies",
        )
    raise ValueError(f"unknown transform {name!r}; use one of {', '.join(TRANSFORMS)}")
