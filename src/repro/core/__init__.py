"""Core of the reproduction: the Vadalog language and the warded chase.

The sub-modules follow the structure of the paper:

* language model — :mod:`terms`, :mod:`atoms`, :mod:`rules`,
  :mod:`conditions`, :mod:`expressions`, :mod:`parser`;
* wardedness and rewritings — :mod:`wardedness`, :mod:`transform`,
  :mod:`harmful_joins`, :mod:`skolem`;
* chase and termination — :mod:`chase`, :mod:`termination`, :mod:`forests`,
  :mod:`provenance`, :mod:`isomorphism`, :mod:`fact_store`;
* features — :mod:`aggregates`, :mod:`query`.
"""

from .atoms import Atom, Fact, Position, Predicate, atom, fact
from .chase import ChaseConfig, ChaseEngine, ChaseResult, InconsistencyError, run_chase
from .conditions import AggregateSpec, Assignment, Comparison
from .limits import (
    RUN_STATUSES,
    STATUS_BUDGET,
    STATUS_CANCELLED,
    STATUS_COMPLETE,
    STATUS_DEADLINE,
    CancellationToken,
    ExecutionBudget,
)
from .parser import (
    parse_program,
    parse_rule,
    parse_fact,
    parse_atom,
    unparse_program,
    VadalogSyntaxError,
)
from .magic import MagicRewriteResult, rewrite_with_magic
from .query import AnswerSet, Query, certain_answer, extract_answers, universal_answer
from .rules import (
    Annotation,
    EqualityConstraint,
    NegativeConstraint,
    Program,
    Rule,
    make_rule,
    program_from_rules,
)
from .terms import Constant, Null, NullFactory, Term, Variable
from .termination import (
    DepthBoundedStrategy,
    TerminationStrategy,
    TrivialIsomorphismStrategy,
    UnboundedStrategy,
    WardedTerminationStrategy,
    strategy_by_name,
)
from .wardedness import (
    ProgramAnalysis,
    RuleKind,
    VariableRole,
    analyse_program,
    is_harmless_warded,
    is_warded,
)

__all__ = [
    "Atom",
    "Fact",
    "Position",
    "Predicate",
    "atom",
    "fact",
    "ChaseConfig",
    "ChaseEngine",
    "ChaseResult",
    "InconsistencyError",
    "run_chase",
    "AggregateSpec",
    "Assignment",
    "Comparison",
    "RUN_STATUSES",
    "STATUS_BUDGET",
    "STATUS_CANCELLED",
    "STATUS_COMPLETE",
    "STATUS_DEADLINE",
    "CancellationToken",
    "ExecutionBudget",
    "parse_program",
    "parse_rule",
    "parse_fact",
    "parse_atom",
    "unparse_program",
    "VadalogSyntaxError",
    "MagicRewriteResult",
    "rewrite_with_magic",
    "AnswerSet",
    "Query",
    "certain_answer",
    "extract_answers",
    "universal_answer",
    "Annotation",
    "EqualityConstraint",
    "NegativeConstraint",
    "Program",
    "Rule",
    "make_rule",
    "program_from_rules",
    "Constant",
    "Null",
    "NullFactory",
    "Term",
    "Variable",
    "DepthBoundedStrategy",
    "TerminationStrategy",
    "TrivialIsomorphismStrategy",
    "UnboundedStrategy",
    "WardedTerminationStrategy",
    "strategy_by_name",
    "ProgramAnalysis",
    "RuleKind",
    "VariableRole",
    "analyse_program",
    "is_harmless_warded",
    "is_warded",
]
