"""Monotonic aggregations (Section 5, "Monotonic Aggregation").

A rule with an aggregation has the form::

    φ(x̄), z = maggr(x, <c̄>)  →  ψ(ḡ, z)

where ``ḡ`` are the group-by arguments (the head variables bound by the
body), ``c̄`` the *contributor* variables and ``z`` the monotonic aggregate.
Aggregate operators are **stateful record-level operators**: every rule
application updates the state of the group and yields the *current*
aggregate value, which may be an intermediate value.  Monotonicity (w.r.t.
set containment of the underlying multiset of contributions) guarantees that
the final value — the maximum for increasing aggregates, the minimum for
decreasing ones — is well defined regardless of the chase order.

Contributor semantics (Example 10 of the paper): contributions are keyed by
the contributor tuple; for each contributor only the *maximum* (for
increasing aggregations; minimum for decreasing ones) argument value is
retained, and retained values are combined across contributors.  With an
empty contributor list every distinct rule match contributes, which recovers
the usual SQL aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, Optional, Tuple

from .conditions import AggregateSpec

#: Aggregation functions that are monotonically increasing (final value = max).
INCREASING_FUNCTIONS = frozenset({"msum", "mprod", "mcount", "mmax", "munion"})
#: Aggregation functions that are monotonically decreasing (final value = min).
DECREASING_FUNCTIONS = frozenset({"mmin"})


def is_increasing(function: str) -> bool:
    """True for monotonically increasing aggregations (msum, mcount, ...)."""
    if function in INCREASING_FUNCTIONS:
        return True
    if function in DECREASING_FUNCTIONS:
        return False
    raise ValueError(f"unknown monotonic aggregation {function!r}")


class AggregateError(Exception):
    """Raised on invalid aggregate usage (e.g. null group-by values)."""


@dataclass
class _GroupState:
    """Aggregation state of a single group-by key."""

    contributions: Dict[Hashable, Any] = field(default_factory=dict)
    union_value: FrozenSet[Any] = frozenset()

    def retained_values(self) -> Tuple[Any, ...]:
        return tuple(self.contributions.values())


class MonotonicAggregate:
    """Stateful evaluator of one aggregation (one rule, all groups)."""

    def __init__(self, spec: AggregateSpec) -> None:
        self.spec = spec
        self.function = spec.function
        self._groups: Dict[Hashable, _GroupState] = {}

    def __len__(self) -> int:
        return len(self._groups)

    # -- update --------------------------------------------------------------
    def update(self, group_key: Hashable, contributor_key: Hashable, value: Any) -> Any:
        """Record one contribution and return the current aggregate value.

        ``group_key`` identifies the group-by tuple, ``contributor_key`` the
        contributor tuple (or the whole-match key when the rule declares no
        contributors), ``value`` the evaluated aggregation argument.
        """
        state = self._groups.setdefault(group_key, _GroupState())
        if self.function == "munion":
            addition = frozenset(value) if isinstance(value, (set, frozenset)) else frozenset({value})
            state.union_value = state.union_value | addition
            return state.union_value
        if self.function == "mcount":
            state.contributions.setdefault(contributor_key, 1)
            return len(state.contributions)
        previous = state.contributions.get(contributor_key)
        if previous is None:
            state.contributions[contributor_key] = value
        elif is_increasing(self.function):
            state.contributions[contributor_key] = max(previous, value)
        else:
            state.contributions[contributor_key] = min(previous, value)
        return self.current(group_key)

    # -- read ----------------------------------------------------------------
    def current(self, group_key: Hashable) -> Optional[Any]:
        """Current aggregate value of a group, or ``None`` for unseen groups."""
        state = self._groups.get(group_key)
        if state is None:
            return None
        if self.function == "munion":
            return state.union_value
        if self.function == "mcount":
            return len(state.contributions)
        values = state.retained_values()
        if not values:
            return None
        if self.function == "msum":
            return sum(values)
        if self.function == "mprod":
            result = 1
            for value in values:
                result *= value
            return result
        if self.function == "mmax":
            return max(values)
        if self.function == "mmin":
            return min(values)
        raise AggregateError(f"unknown aggregation {self.function!r}")

    def groups(self) -> Tuple[Hashable, ...]:
        return tuple(self._groups)

    def final_values(self) -> Dict[Hashable, Any]:
        """Final (maximal/minimal) value per group."""
        return {key: self.current(key) for key in self._groups}


class AggregateRegistry:
    """Aggregation state for a whole program: one evaluator per aggregate rule.

    The registry enforces the constraint of Section 5 that a predicate
    position computed by an aggregation is always computed by the *same*
    aggregation function.
    """

    def __init__(self) -> None:
        self._evaluators: Dict[str, MonotonicAggregate] = {}
        self._position_functions: Dict[Tuple[str, int], str] = {}

    def evaluator_for(self, rule_label: str, spec: AggregateSpec) -> MonotonicAggregate:
        evaluator = self._evaluators.get(rule_label)
        if evaluator is None:
            evaluator = MonotonicAggregate(spec)
            self._evaluators[rule_label] = evaluator
        return evaluator

    def register_position(self, predicate: str, index: int, function: str) -> None:
        """Check and record that ``predicate[index]`` is computed by ``function``."""
        key = (predicate, index)
        existing = self._position_functions.get(key)
        if existing is None:
            self._position_functions[key] = function
        elif existing != function:
            raise AggregateError(
                f"position {predicate}[{index}] is computed both by {existing} and "
                f"{function}; a position must always use the same aggregation"
            )

    def position_function(self, predicate: str, index: int) -> Optional[str]:
        return self._position_functions.get((predicate, index))

    def aggregated_positions(self) -> Dict[Tuple[str, int], str]:
        return dict(self._position_functions)

    def evaluators(self) -> Dict[str, MonotonicAggregate]:
        return dict(self._evaluators)


def select_final_facts(values: Dict[Hashable, Any]) -> Dict[Hashable, Any]:
    """Identity helper documenting that final per-group values are already reduced."""
    return values
