"""Wardedness analysis (Section 2.1 of the paper).

The analysis computes, for a program Σ:

* the set of **affected positions** ``affected(Σ)`` — positions that may
  host labelled nulls during the chase;
* the per-rule classification of variables into **harmless**, **harmful**
  and **dangerous**;
* the **ward** of each rule (the unique body atom containing all dangerous
  variables), when it exists;
* whether the program is **warded**, **harmless warded** (warded and free of
  harmful joins), plain **Datalog**, **linear** or **guarded**;
* the list of **harmful joins**, needed by the harmful-join elimination
  algorithm of Section 3.2.

The affected-position computation is the standard inductive definition:
a position is affected if some rule has an existentially quantified variable
there, or if a rule propagates a variable that occurs *only* in affected
body positions into that head position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .atoms import Atom, Position
from .rules import DOM_PREDICATE, Program, Rule
from .terms import Variable


class VariableRole(Enum):
    """Classification of a body variable within one rule."""

    HARMLESS = "harmless"
    HARMFUL = "harmful"
    DANGEROUS = "dangerous"


class RuleKind(Enum):
    """Rule classification used by the termination strategy (Section 3.4)."""

    LINEAR = "linear"
    WARDED = "warded"
    NON_LINEAR = "non-linear"


@dataclass(frozen=True)
class RuleAnalysis:
    """Per-rule result of the wardedness analysis."""

    rule: Rule
    roles: Dict[Variable, VariableRole]
    dangerous: Tuple[Variable, ...]
    harmful: Tuple[Variable, ...]
    harmless: Tuple[Variable, ...]
    ward: Optional[Atom]
    kind: RuleKind
    is_warded: bool
    harmful_join_variables: Tuple[Variable, ...]

    @property
    def has_harmful_join(self) -> bool:
        return bool(self.harmful_join_variables)


@dataclass
class ProgramAnalysis:
    """Whole-program result of the wardedness analysis."""

    program: Program
    affected: FrozenSet[Position]
    rule_analyses: List[RuleAnalysis] = field(default_factory=list)

    @property
    def is_warded(self) -> bool:
        return all(a.is_warded for a in self.rule_analyses)

    @property
    def has_harmful_joins(self) -> bool:
        return any(a.has_harmful_join for a in self.rule_analyses)

    @property
    def is_harmless_warded(self) -> bool:
        return self.is_warded and not self.has_harmful_joins

    @property
    def is_datalog(self) -> bool:
        """True when no rule has existential quantification (plain Datalog)."""
        return not any(r.has_existentials() for r in self.program.rules)

    @property
    def is_linear(self) -> bool:
        """True when every rule has a single body atom (Linear Datalog±)."""
        return all(r.is_linear() for r in self.program.rules)

    @property
    def is_guarded(self) -> bool:
        """True when every rule has a body atom containing all body variables."""
        return all(_has_guard(r) for r in self.program.rules)

    def analysis_for(self, rule: Rule) -> RuleAnalysis:
        # Identity lookup first: the chase engine asks once per rule at
        # construction, and a linear scan with structural rule equality made
        # engine setup quadratic in the number of rules.
        by_identity = getattr(self, "_analysis_by_identity", None)
        if by_identity is None:
            by_identity = {id(a.rule): a for a in self.rule_analyses}
            self._analysis_by_identity = by_identity
        found = by_identity.get(id(rule))
        if found is not None:
            return found
        for analysis in self.rule_analyses:
            if analysis.rule == rule:
                return analysis
        raise KeyError(f"rule {rule.label or rule} not part of the analysed program")

    def fragment(self) -> str:
        """Name of the most specific Datalog± fragment the program falls in."""
        if self.is_datalog:
            return "datalog"
        if self.is_linear:
            return "linear"
        if self.is_harmless_warded:
            return "harmless-warded"
        if self.is_warded:
            return "warded"
        if self.is_guarded:
            return "guarded"
        return "unrestricted"

    def harmful_rules(self) -> List[RuleAnalysis]:
        return [a for a in self.rule_analyses if a.has_harmful_join]

    def summary(self) -> Dict[str, object]:
        """Aggregate statistics, handy for experiment reporting (Figure 6)."""
        linear = sum(1 for r in self.program.rules if r.is_linear())
        return {
            "rules": len(self.program.rules),
            "linear_rules": linear,
            "join_rules": len(self.program.rules) - linear,
            "existential_rules": sum(
                1 for r in self.program.rules if r.has_existentials()
            ),
            "harmful_joins": sum(
                1 for a in self.rule_analyses if a.has_harmful_join
            ),
            "warded": self.is_warded,
            "harmless_warded": self.is_harmless_warded,
            "fragment": self.fragment(),
        }


def _has_guard(rule: Rule) -> bool:
    body_vars = set(rule.body_variables())
    for atom in rule.relational_body:
        if set(atom.variables()) >= body_vars:
            return True
    return False


def affected_positions(program: Program) -> FrozenSet[Position]:
    """Compute ``affected(Σ)`` by the standard least-fixpoint construction.

    ``Dom`` guard positions are never affected: the active-domain relation
    contains ground constants only (Section 2, "Modeling Features").
    """
    affected: Set[Position] = set()
    # Base case: positions of existentially quantified head variables.
    for rule in program.rules:
        existentials = set(rule.existential_variables())
        for atom in rule.head:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable) and term in existentials:
                    affected.add(Position(atom.predicate, index))

    # Inductive case: propagation of all-affected body variables to the head.
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            body_positions = _body_positions_by_variable(rule)
            for variable, positions in body_positions.items():
                if not positions:
                    continue
                if not all(p in affected for p in positions):
                    continue
                for atom in rule.head:
                    for index, term in enumerate(atom.terms):
                        if term == variable:
                            position = Position(atom.predicate, index)
                            if position not in affected:
                                affected.add(position)
                                changed = True
    return frozenset(affected)


def _body_positions_by_variable(rule: Rule) -> Dict[Variable, List[Position]]:
    """Positions at which each body variable occurs, ignoring ``Dom`` guards."""
    positions: Dict[Variable, List[Position]] = {}
    for atom in rule.body:
        if atom.predicate == DOM_PREDICATE:
            continue
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                positions.setdefault(term, []).append(Position(atom.predicate, index))
    # Variables occurring only in Dom guards are trivially harmless: record
    # them with an empty position list so classification treats them as bound
    # to ground values.
    for atom in rule.dom_guards:
        for term in atom.terms:
            if isinstance(term, Variable):
                positions.setdefault(term, [])
    return positions


def classify_variables(
    rule: Rule, affected: FrozenSet[Position]
) -> Dict[Variable, VariableRole]:
    """Classify each body variable of ``rule`` as harmless/harmful/dangerous."""
    roles: Dict[Variable, VariableRole] = {}
    head_vars = set(rule.head_variables())
    dom_vars = {v for atom in rule.dom_guards for v in atom.variables()}
    for variable, positions in _body_positions_by_variable(rule).items():
        occurs_non_affected = (
            not positions  # Dom-only variables bind to constants
            or any(p not in affected for p in positions)
            or variable in dom_vars
        )
        if occurs_non_affected:
            roles[variable] = VariableRole.HARMLESS
        elif variable in head_vars:
            roles[variable] = VariableRole.DANGEROUS
        else:
            roles[variable] = VariableRole.HARMFUL
    return roles


def find_ward(rule: Rule, roles: Dict[Variable, VariableRole]) -> Optional[Atom]:
    """Return the ward of ``rule`` if the rule satisfies the warded conditions.

    The ward is a body atom that (1) contains *all* dangerous variables of the
    rule and (2) shares only harmless variables with the other body atoms.
    Rules without dangerous variables are trivially warded (``None`` ward).
    """
    dangerous = {v for v, role in roles.items() if role is VariableRole.DANGEROUS}
    if not dangerous:
        return None
    for candidate in rule.relational_body:
        candidate_vars = set(candidate.variables())
        if not dangerous <= candidate_vars:
            continue
        shares_only_harmless = True
        for other in rule.relational_body:
            if other is candidate:
                continue
            shared = candidate_vars & set(other.variables())
            if any(roles.get(v) is not VariableRole.HARMLESS for v in shared):
                shares_only_harmless = False
                break
        if shares_only_harmless:
            return candidate
    return None


def harmful_join_variables(
    rule: Rule, roles: Dict[Variable, VariableRole]
) -> Tuple[Variable, ...]:
    """Variables involved in a *harmful join*: harmful/dangerous and shared by ≥2 body atoms."""
    joined: List[Variable] = []
    for variable, role in roles.items():
        if role is VariableRole.HARMLESS:
            continue
        occurrences = sum(
            1 for atom in rule.relational_body if variable in atom.variables()
        )
        if occurrences >= 2:
            joined.append(variable)
    return tuple(joined)


def analyse_rule(rule: Rule, affected: FrozenSet[Position]) -> RuleAnalysis:
    """Run the per-rule part of the wardedness analysis."""
    roles = classify_variables(rule, affected)
    dangerous = tuple(v for v, r in roles.items() if r is VariableRole.DANGEROUS)
    harmful = tuple(v for v, r in roles.items() if r is VariableRole.HARMFUL)
    harmless = tuple(v for v, r in roles.items() if r is VariableRole.HARMLESS)
    ward = find_ward(rule, roles)
    joins = harmful_join_variables(rule, roles)
    if dangerous:
        is_warded = ward is not None
    else:
        is_warded = True
    if rule.is_linear():
        kind = RuleKind.LINEAR
    elif dangerous and ward is not None:
        # A "warded" rule in the sense of Algorithm 1: a join rule where a
        # dangerous variable is propagated to the head through the ward.
        kind = RuleKind.WARDED
    else:
        kind = RuleKind.NON_LINEAR
    return RuleAnalysis(
        rule=rule,
        roles=roles,
        dangerous=dangerous,
        harmful=harmful,
        harmless=harmless,
        ward=ward,
        kind=kind,
        is_warded=is_warded,
        harmful_join_variables=joins,
    )


def analyse_program(program: Program) -> ProgramAnalysis:
    """Run the full wardedness analysis over a program."""
    affected = affected_positions(program)
    analysis = ProgramAnalysis(program=program, affected=affected)
    for rule in program.rules:
        analysis.rule_analyses.append(analyse_rule(rule, affected))
    return analysis


def is_warded(program: Program) -> bool:
    """Convenience wrapper: is the program in Warded Datalog±?"""
    return analyse_program(program).is_warded


def is_harmless_warded(program: Program) -> bool:
    """Convenience wrapper: is the program in Harmless Warded Datalog±?"""
    return analyse_program(program).is_harmless_warded
