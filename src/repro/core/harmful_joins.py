"""Harmful-Join Elimination (Section 3.2 of the paper).

A *harmful join* is a join on a harmful variable — a variable that can only
bind to labelled nulls.  The termination results of Section 3 (Theorem 2)
require the program to be *harmless* warded, so warded programs containing
harmful joins are rewritten first.

The paper's algorithm proceeds by **cause elimination**: for a harmful rule

    α :  A(x̄1, ȳ1, ĥ), B(x̄2, ȳ2, ĥ)  →  ∃z̄ C(x̄, z̄)

it (1) adds a *grounded* copy guarded by ``Dom`` that covers the case where
``h`` binds to a database constant, and (2) replaces the null case by
reasoning over the *causes* of the null: the rules that create it (direct
causes, with existential quantification) and the rules that propagate it
(indirect causes).  Skolem functions introduced in the rewriting are then
simplified away (they are injective and range-disjoint), which in recursive
cases folds the propagation into a transitive closure (Example 9).

This implementation realises the same cause analysis in an explicitly
terminating form which we call **origin tracking**: because Skolem functions
are injective and range-disjoint, two body atoms share the same labelled
null exactly when the null was created by the *same direct cause* (same rule
and same frontier values) and then propagated to both atoms.  We therefore

1. build the *null flow graph* of the program: which rules create nulls at
   which positions and which rules propagate them between positions;
2. introduce, for each direct cause β and each reachable position ``P[i]``,
   a tracking predicate ``_track_β_P_i(frontier(β), other-args-of-P)`` whose
   facts are ground, together with rules mirroring the creation and every
   propagation step;
3. replace the harmful rule α by (a) the ``Dom``-guarded grounded copy and
   (b) one rule per direct cause β joining the two tracking atoms on the
   *origin* (the frontier of β) instead of on the null itself.

The result contains no harmful joins, uses only ground auxiliary facts and
computes the same answers for the original predicates — the transitive
closure of Example 9 is exactly what the tracking predicates unfold to for
the PSC scenario.  Programs outside the supported shape (an aggregation over
the harmful variable, a direct cause whose frontier itself carries nulls, or
a propagation rule where the null occurs in more than one body atom) raise
:class:`UnsupportedHarmfulJoin`; the reasoner then falls back to running the
original program and flags the answer as potentially incomplete on nulls.

The literal Skolem-simplification steps of the paper (virtual joins and
linearization) are exposed as :func:`simplify_skolem_equalities` for
completeness and for the unit tests that mirror the paper's discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .atoms import Atom, Position
from .rules import DOM_PREDICATE, Program, Rule
from .skolem import SkolemTerm
from .terms import Variable
from .wardedness import ProgramAnalysis, VariableRole, analyse_program

TRACK_PREFIX = "_track_"
"""Prefix of the ground tracking predicates introduced by the rewriting."""


class UnsupportedHarmfulJoin(Exception):
    """Raised when a harmful join falls outside the supported rewriting shape."""


@dataclass(frozen=True)
class DirectCause:
    """A rule creating a labelled null at a head position (existential cause)."""

    rule: Rule
    position: Position
    existential: Variable
    frontier: Tuple[Variable, ...]


@dataclass(frozen=True)
class PropagationStep:
    """A rule propagating a null from a body position to a head position."""

    rule: Rule
    source: Position
    target: Position
    variable: Variable


@dataclass
class NullFlowGraph:
    """Creation and propagation of labelled nulls across predicate positions."""

    creators: Dict[Position, List[DirectCause]] = field(default_factory=dict)
    propagations: Dict[Position, List[PropagationStep]] = field(default_factory=dict)

    def positions_flowing_into(self, targets: Set[Position]) -> Set[Position]:
        """Backward-reachable positions from ``targets`` along propagation edges."""
        reached = set(targets)
        frontier = list(targets)
        while frontier:
            position = frontier.pop()
            for step in self.propagations.get(position, []):
                if step.source not in reached:
                    reached.add(step.source)
                    frontier.append(step.source)
        return reached

    def causes_for(self, positions: Set[Position]) -> List[DirectCause]:
        causes: List[DirectCause] = []
        seen: Set[Tuple[str, str]] = set()
        for position in positions:
            for cause in self.creators.get(position, []):
                key = (cause.rule.label, cause.existential.name)
                if key not in seen:
                    seen.add(key)
                    causes.append(cause)
        return causes


def build_null_flow_graph(program: Program, analysis: Optional[ProgramAnalysis] = None) -> NullFlowGraph:
    """Build the null flow graph of a program.

    * A rule with existential variable ``z`` occurring at head position
      ``P[i]`` is a *direct cause* for ``P[i]``.
    * A rule in which a harmful (or dangerous) variable occurs at body
      position ``Q[j]`` and at head position ``P[i]`` is a *propagation step*
      from ``Q[j]`` to ``P[i]``.
    """
    analysis = analysis or analyse_program(program)
    graph = NullFlowGraph()
    for rule_analysis in analysis.rule_analyses:
        rule = rule_analysis.rule
        existentials = set(rule.existential_variables())
        for atom in rule.head:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable) and term in existentials:
                    position = Position(atom.predicate, index)
                    frontier = tuple(
                        v for v in rule.head_variables() if v not in existentials
                    )
                    graph.creators.setdefault(position, []).append(
                        DirectCause(rule, position, term, frontier)
                    )
        for variable, role in rule_analysis.roles.items():
            if role is VariableRole.HARMLESS:
                continue
            body_positions = [
                Position(atom.predicate, index)
                for atom in rule.relational_body
                for index, term in enumerate(atom.terms)
                if term == variable
            ]
            head_positions = [
                Position(atom.predicate, index)
                for atom in rule.head
                for index, term in enumerate(atom.terms)
                if term == variable
            ]
            for target in head_positions:
                for source in body_positions:
                    graph.propagations.setdefault(target, []).append(
                        PropagationStep(rule, source, target, variable)
                    )
    return graph


def _track_predicate_name(cause: DirectCause, position: Position) -> str:
    return (
        f"{TRACK_PREFIX}{cause.rule.label or 'rule'}_{cause.existential.name}"
        f"_{position.predicate}_{position.index}"
    )


def _atom_without_position(atom: Atom, index: int) -> Tuple[Tuple, Tuple]:
    """Split an atom's terms into (terms without ``index``, the dropped term)."""
    kept = tuple(t for i, t in enumerate(atom.terms) if i != index)
    return kept, (atom.terms[index],)


@dataclass
class HarmfulJoinEliminationResult:
    """Outcome of the rewriting: the new program plus bookkeeping."""

    program: Program
    eliminated_rules: List[Rule] = field(default_factory=list)
    tracking_predicates: List[str] = field(default_factory=list)
    grounded_rules: List[Rule] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.eliminated_rules)


class HarmfulJoinEliminator:
    """Rewrites a warded program into an equivalent harmless warded program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.analysis = analyse_program(program)

    def eliminate(self) -> HarmfulJoinEliminationResult:
        """Run the rewriting; raises :class:`UnsupportedHarmfulJoin` if needed."""
        harmful = self.analysis.harmful_rules()
        if not harmful:
            return HarmfulJoinEliminationResult(program=self.program.copy())
        if not self.analysis.is_warded:
            raise UnsupportedHarmfulJoin(
                "harmful-join elimination requires a warded program"
            )
        flow = build_null_flow_graph(self.program, self.analysis)
        rewritten = self.program.copy()
        rewritten.rules = [r for r in self.program.rules]
        result = HarmfulJoinEliminationResult(program=rewritten)

        track_rules: List[Rule] = []
        track_rule_keys: Set[str] = set()
        replacement_rules: List[Rule] = []

        for rule_analysis in harmful:
            rule = rule_analysis.rule
            if rule.aggregate is not None and any(
                v in rule_analysis.harmful_join_variables
                for v in rule.aggregate.variables()
            ):
                raise UnsupportedHarmfulJoin(
                    f"rule {rule.label}: aggregation over a harmfully joined variable"
                )
            for variable in rule_analysis.harmful_join_variables:
                grounded, replacements, new_track_rules, track_names = self._eliminate_one(
                    rule, variable, flow
                )
                result.grounded_rules.append(grounded)
                replacement_rules.append(grounded)
                replacement_rules.extend(replacements)
                for track_rule in new_track_rules:
                    key = str(track_rule)
                    if key not in track_rule_keys:
                        track_rule_keys.add(key)
                        track_rules.append(track_rule)
                result.tracking_predicates.extend(track_names)
            result.eliminated_rules.append(rule)

        eliminated = {id(r) for r in result.eliminated_rules}
        rewritten.rules = [r for r in rewritten.rules if id(r) not in eliminated]
        for new_rule in track_rules + replacement_rules:
            rewritten.add_rule(new_rule)
        result.tracking_predicates = sorted(set(result.tracking_predicates))
        return result

    # ------------------------------------------------------------------ steps
    def _eliminate_one(
        self, rule: Rule, variable: Variable, flow: NullFlowGraph
    ) -> Tuple[Rule, List[Rule], List[Rule], List[str]]:
        join_atoms = [
            (index, atom)
            for index, atom in enumerate(rule.relational_body)
            if variable in atom.variables()
        ]
        if len(join_atoms) < 2:
            raise UnsupportedHarmfulJoin(
                f"rule {rule.label}: variable {variable.name} does not form a binary join"
            )
        if len(join_atoms) > 2:
            raise UnsupportedHarmfulJoin(
                f"rule {rule.label}: harmful joins across more than two atoms are not supported"
            )
        join_positions: Set[Position] = set()
        for _, atom in join_atoms:
            for index, term in enumerate(atom.terms):
                if term == variable:
                    join_positions.add(Position(atom.predicate, index))

        # Step 1 (grounding): the Dom-guarded copy covering ground values of h.
        grounded = Rule(
            body=rule.body + (Atom(DOM_PREDICATE, (variable,)),),
            head=rule.head,
            conditions=rule.conditions,
            assignments=rule.assignments,
            aggregate=rule.aggregate,
            label=f"{rule.label or 'rule'}_ground",
        )

        # Steps 2-3 (direct and indirect causes) via origin tracking.
        reachable = flow.positions_flowing_into(join_positions)
        causes = flow.causes_for(reachable)
        if not causes:
            # The harmful variable can never bind to a null: the grounded copy
            # is already equivalent and nothing else is needed.
            return grounded, [], [], []

        track_rules: List[Rule] = []
        track_names: List[str] = []
        replacements: List[Rule] = []
        for cause in causes:
            if not cause.frontier:
                raise UnsupportedHarmfulJoin(
                    f"rule {cause.rule.label}: a direct cause without frontier variables "
                    "cannot be origin-tracked"
                )
            if any(
                self.analysis.analysis_for(cause.rule).roles.get(v)
                in (VariableRole.HARMFUL, VariableRole.DANGEROUS)
                for v in cause.frontier
            ):
                raise UnsupportedHarmfulJoin(
                    f"rule {cause.rule.label}: the frontier of a direct cause carries nulls"
                )
            cause_track_rules, names = self._tracking_rules_for(cause, reachable, flow)
            track_rules.extend(cause_track_rules)
            track_names.extend(names)
            replacements.extend(
                self._replacement_rules_for(rule, variable, join_atoms, cause)
            )
        return grounded, replacements, track_rules, track_names

    @staticmethod
    def _origin_variables(cause: DirectCause) -> Tuple[Variable, ...]:
        """Fresh variables standing for the origin key in mirrored rules.

        The origin of a null is the frontier of its direct cause; inside the
        mirrored propagation rules and the replacement rules these values are
        carried by reserved ``_ORG`` variables so they can never be captured
        by the local variables of the mirrored rule.
        """
        return tuple(Variable(f"_ORG{i}") for i in range(len(cause.frontier)))

    def _tracking_rules_for(
        self, cause: DirectCause, reachable: Set[Position], flow: NullFlowGraph
    ) -> Tuple[List[Rule], List[str]]:
        """Creation and propagation rules for the tracking predicate of ``cause``."""
        rules: List[Rule] = []
        names: List[str] = []

        # Creation: the body of the cause produces the initial tracking fact,
        # whose origin key is the cause's own frontier.
        creation_atom = self._track_atom(
            cause, cause.position, self._cause_head_atom(cause), cause.frontier
        )
        rules.append(
            Rule(
                body=cause.rule.body,
                head=(creation_atom,),
                conditions=cause.rule.conditions,
                assignments=cause.rule.assignments,
                aggregate=None,
                label=f"{cause.rule.label or 'rule'}_track_{cause.position.predicate}",
            )
        )
        names.append(creation_atom.predicate)

        # Propagation: mirror every propagation step between reachable positions.
        for target in reachable:
            for step in flow.propagations.get(target, []):
                if step.source not in reachable:
                    continue
                mirrored = self._mirror_propagation(cause, step)
                if mirrored is not None:
                    rules.append(mirrored)
                    names.append(self._track_predicate_name_for(cause, step.target))
        return rules, sorted(set(names))

    def _cause_head_atom(self, cause: DirectCause) -> Atom:
        for atom in cause.rule.head:
            if atom.predicate == cause.position.predicate and (
                len(atom.terms) > cause.position.index
                and atom.terms[cause.position.index] == cause.existential
            ):
                return atom
        raise UnsupportedHarmfulJoin(
            f"rule {cause.rule.label}: cannot locate the existential head atom"
        )

    def _track_predicate_name_for(self, cause: DirectCause, position: Position) -> str:
        return _track_predicate_name(cause, position)

    def _track_atom(
        self,
        cause: DirectCause,
        position: Position,
        source_atom: Atom,
        origin_terms: Sequence[Variable],
    ) -> Atom:
        """Tracking atom for ``source_atom``: origin key + non-null arguments."""
        kept_terms = tuple(
            term for index, term in enumerate(source_atom.terms) if index != position.index
        )
        name = _track_predicate_name(cause, position)
        return Atom(name, tuple(origin_terms) + kept_terms)

    def _mirror_propagation(self, cause: DirectCause, step: PropagationStep) -> Optional[Rule]:
        """Mirror a propagation rule onto the tracking predicates of ``cause``."""
        rule = step.rule
        carrying_atoms = [
            atom
            for atom in rule.relational_body
            if atom.predicate == step.source.predicate
            and len(atom.terms) > step.source.index
            and atom.terms[step.source.index] == step.variable
        ]
        if not carrying_atoms:
            return None
        if len([a for a in rule.relational_body if step.variable in a.variables()]) > 1:
            raise UnsupportedHarmfulJoin(
                f"rule {rule.label}: the propagated null occurs in several body atoms"
            )
        carrier = carrying_atoms[0]
        head_atom = None
        for atom in rule.head:
            if atom.predicate == step.target.predicate and (
                len(atom.terms) > step.target.index
                and atom.terms[step.target.index] == step.variable
            ):
                head_atom = atom
                break
        if head_atom is None:
            return None
        origin = self._origin_variables(cause)
        body_track = self._track_atom(cause, step.source, carrier, origin)
        head_track = self._track_atom(cause, step.target, head_atom, origin)
        other_body = tuple(a for a in rule.body if a is not carrier)
        return Rule(
            body=(body_track,) + other_body,
            head=(head_track,),
            conditions=rule.conditions,
            assignments=rule.assignments,
            aggregate=None,
            label=f"{rule.label or 'rule'}_track_{cause.rule.label}_{step.target.predicate}",
        )

    def _replacement_rules_for(
        self,
        rule: Rule,
        variable: Variable,
        join_atoms: Sequence[Tuple[int, Atom]],
        cause: DirectCause,
    ) -> List[Rule]:
        """The harmless replacement of the harmful rule for one direct cause."""
        (first_index, first_atom), (second_index, second_atom) = join_atoms
        first_position = next(
            Position(first_atom.predicate, i)
            for i, t in enumerate(first_atom.terms)
            if t == variable
        )
        second_position = next(
            Position(second_atom.predicate, i)
            for i, t in enumerate(second_atom.terms)
            if t == variable
        )
        origin = self._origin_variables(cause)
        first_track = self._track_atom(cause, first_position, first_atom, origin)
        second_track = self._track_atom(cause, second_position, second_atom, origin)
        other_atoms = tuple(
            atom
            for index, atom in enumerate(rule.relational_body)
            if index not in {first_index, second_index}
        )
        # Keep the Dom guards, except those mentioning the eliminated variable.
        other_atoms = other_atoms + tuple(
            a for a in rule.dom_guards if variable not in a.variables()
        )
        conditions = tuple(c for c in rule.conditions if variable not in c.variables())
        return [
            Rule(
                body=(first_track, second_track) + other_atoms,
                head=rule.head,
                conditions=conditions,
                assignments=rule.assignments,
                aggregate=rule.aggregate,
                label=f"{rule.label or 'rule'}_via_{cause.rule.label or 'cause'}",
            )
        ]


def eliminate_harmful_joins(program: Program) -> HarmfulJoinEliminationResult:
    """Convenience wrapper around :class:`HarmfulJoinEliminator`."""
    return HarmfulJoinEliminator(program).eliminate()


# ---------------------------------------------------------------------------
# The paper's Skolem-simplification cases (used by unit tests and documentation)
# ---------------------------------------------------------------------------

def is_virtual_join(left: object, right: object) -> bool:
    """Decide whether equating ``left`` and ``right`` is unsatisfiable.

    Mirrors the three "virtual join" cases of the Skolem simplification:

    1a. a ground (harmless) value equated to a Skolem term — impossible since
        labelled nulls differ from all constants;
    1b. two Skolem terms with *different* function names — impossible since
        ranges are disjoint;
    1c. a Skolem term equated to a term that contains it (recursive
        application) — impossible since Skolem functions are injective.
    """
    left_is_skolem = isinstance(left, SkolemTerm)
    right_is_skolem = isinstance(right, SkolemTerm)
    if left_is_skolem != right_is_skolem:
        return True
    if not left_is_skolem:
        return False
    assert isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm)
    if left.function != right.function:
        return True
    if left != right and (left.uses_function(right.function) and (
        left.depth() != right.depth()
    )):
        return True
    return False


def can_linearize(left: SkolemTerm, right: SkolemTerm) -> bool:
    """Two atoms carrying the *same* Skolem function can be unified (case 2)."""
    return left.function == right.function and left.depth() == right.depth()


def simplify_skolem_equalities(pairs: Sequence[Tuple[object, object]]) -> Dict[str, int]:
    """Classify a set of Skolem equalities as the simplification step would.

    Returns counters of how many pairs are dropped as virtual joins and how
    many are linearizable, which is what the rewriting statistics report.
    """
    dropped = 0
    linearized = 0
    kept = 0
    for left, right in pairs:
        if is_virtual_join(left, right):
            dropped += 1
        elif isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm) and can_linearize(left, right):
            linearized += 1
        else:
            kept += 1
    return {"virtual": dropped, "linearized": linearized, "kept": kept}
