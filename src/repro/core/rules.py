"""Rules (existential rules / TGDs), constraints and programs.

A Vadalog rule is a first-order sentence
``∀x̄∀ȳ (φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))`` where the body ``φ`` and the head ``ψ``
are conjunctions of atoms (Section 2.1).  In the surface syntax the
existential quantification is implicit: every head variable that does not
occur in the body is existentially quantified.

Besides plain existential rules, a program may contain:

* **negative constraints** ``φ(x̄) → ⊥`` (disjointness / non-membership),
* **equality-generating dependencies** ``φ(x̄) → xi = xj``,
* body **conditions**, **assignments** and **monotonic aggregations**
  (:mod:`repro.core.conditions`),
* **annotations** (``@input``, ``@output``, ``@bind``, ``@post`` …) handled
  by :mod:`repro.engine.annotations`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .atoms import Atom, Fact, Predicate
from .conditions import AggregateSpec, Assignment, Comparison
from .terms import Variable

DOM_PREDICATE = "Dom"
"""Name of the active-domain guard predicate ``Dom`` (Section 2, Example 6)."""


class RuleError(Exception):
    """Raised when a rule is structurally invalid."""


@dataclass(frozen=True)
class Rule:
    """An existential rule (tuple-generating dependency).

    Parameters
    ----------
    body:
        The relational atoms of the body (conjunction).  ``Dom`` atoms are
        allowed and treated as active-domain guards.
    head:
        The head atoms (conjunction).  Head variables absent from the body
        and not defined by an assignment/aggregation are existential.
    conditions:
        Comparison conditions that must hold for the rule to fire.
    assignments:
        Computed values for head variables.
    aggregate:
        At most one monotonic aggregation per rule (as in the system).
    label:
        Optional identifier used in provenance, plans and error messages.
    """

    body: Tuple[Atom, ...]
    head: Tuple[Atom, ...]
    conditions: Tuple[Comparison, ...] = ()
    assignments: Tuple[Assignment, ...] = ()
    aggregate: Optional[AggregateSpec] = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.head:
            raise RuleError("a rule must have at least one head atom")
        if not self.body:
            raise RuleError(
                "a rule must have at least one body atom (facts are added to the database)"
            )
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "conditions", tuple(self.conditions))
        object.__setattr__(self, "assignments", tuple(self.assignments))
        defined = set(self.body_variables())
        for assignment in self.assignments:
            missing = [v for v in assignment.variables() if v not in defined]
            if missing:
                raise RuleError(
                    f"assignment {assignment} uses variables not bound in the body: "
                    f"{', '.join(v.name for v in missing)}"
                )
            defined.add(assignment.variable)
        if self.aggregate is not None:
            missing = [v for v in self.aggregate.variables() if v not in defined]
            if missing:
                raise RuleError(
                    f"aggregation {self.aggregate} uses variables not bound in the body: "
                    f"{', '.join(v.name for v in missing)}"
                )

    # -- structural views ----------------------------------------------------
    @property
    def relational_body(self) -> Tuple[Atom, ...]:
        """Body atoms excluding the ``Dom`` active-domain guards."""
        return tuple(a for a in self.body if a.predicate != DOM_PREDICATE)

    @property
    def dom_guards(self) -> Tuple[Atom, ...]:
        """The ``Dom`` guard atoms of the body."""
        return tuple(a for a in self.body if a.predicate == DOM_PREDICATE)

    def is_linear(self) -> bool:
        """A rule is linear when its body consists of a single relational atom."""
        return len(self.relational_body) == 1

    def body_variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for atom in self.body:
            for variable in atom.variables():
                seen.setdefault(variable, None)
        return tuple(seen)

    def head_variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for atom in self.head:
            for variable in atom.variables():
                seen.setdefault(variable, None)
        return tuple(seen)

    def computed_variables(self) -> Tuple[Variable, ...]:
        """Head variables whose value is produced by an assignment/aggregation."""
        computed = [a.variable for a in self.assignments]
        if self.aggregate is not None:
            computed.append(self.aggregate.variable)
        return tuple(computed)

    def existential_variables(self) -> Tuple[Variable, ...]:
        """Head variables that are existentially quantified.

        These are head variables neither bound in the body nor computed by an
        assignment or aggregation.
        """
        bound = set(self.body_variables()) | set(self.computed_variables())
        seen: Dict[Variable, None] = {}
        for variable in self.head_variables():
            if variable not in bound:
                seen.setdefault(variable, None)
        return tuple(seen)

    def frontier_variables(self) -> Tuple[Variable, ...]:
        """Variables shared between body and head (the rule frontier)."""
        head_vars = set(self.head_variables())
        return tuple(v for v in self.body_variables() if v in head_vars)

    def has_existentials(self) -> bool:
        return bool(self.existential_variables())

    def predicates(self) -> Tuple[Predicate, ...]:
        seen: Dict[Predicate, None] = {}
        for atom in itertools.chain(self.body, self.head):
            seen.setdefault(atom.signature, None)
        return tuple(seen)

    def body_predicate_names(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for atom in self.relational_body:
            seen.setdefault(atom.predicate, None)
        return tuple(seen)

    def head_predicate_names(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for atom in self.head:
            seen.setdefault(atom.predicate, None)
        return tuple(seen)

    def is_recursive_with(self, other: "Rule") -> bool:
        """True when this rule's head feeds the other rule's body (direct edge)."""
        heads = set(self.head_predicate_names())
        return any(p in heads for p in other.body_predicate_names())

    # -- presentation ----------------------------------------------------------
    def __str__(self) -> str:
        body_parts: List[str] = [repr(a) for a in self.body]
        body_parts.extend(str(c) for c in self.conditions)
        body_parts.extend(str(a) for a in self.assignments)
        if self.aggregate is not None:
            body_parts.append(str(self.aggregate))
        head_part = ", ".join(repr(a) for a in self.head)
        text = f"{head_part} :- {', '.join(body_parts)}."
        return f"[{self.label}] {text}" if self.label else text

    def with_label(self, label: str) -> "Rule":
        return Rule(
            body=self.body,
            head=self.head,
            conditions=self.conditions,
            assignments=self.assignments,
            aggregate=self.aggregate,
            label=label,
        )


@dataclass(frozen=True)
class NegativeConstraint:
    """A negative constraint ``φ(x̄) → ⊥`` (Section 2, "Modeling Features")."""

    body: Tuple[Atom, ...]
    conditions: Tuple[Comparison, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if not self.body:
            raise RuleError("a negative constraint needs at least one body atom")
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "conditions", tuple(self.conditions))

    def __str__(self) -> str:
        parts = [repr(a) for a in self.body] + [str(c) for c in self.conditions]
        return f"⊥ :- {', '.join(parts)}."


@dataclass(frozen=True)
class EqualityConstraint:
    """An equality-generating dependency ``φ(x̄) → xi = xj``.

    As in the paper we assume EGDs do not interact with the existential rules
    (they are checked over ground values, typically guarded by ``Dom``), which
    preserves decidability of the reasoning task.
    """

    body: Tuple[Atom, ...]
    left: Variable
    right: Variable
    conditions: Tuple[Comparison, ...] = ()
    label: str = ""

    def __post_init__(self) -> None:
        if not self.body:
            raise RuleError("an EGD needs at least one body atom")
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "conditions", tuple(self.conditions))
        body_vars = {v for atom in self.body for v in atom.variables()}
        for side in (self.left, self.right):
            if side not in body_vars:
                raise RuleError(f"EGD equates variable {side.name} not bound in the body")

    def __str__(self) -> str:
        parts = [repr(a) for a in self.body] + [str(c) for c in self.conditions]
        return f"{self.left.name} = {self.right.name} :- {', '.join(parts)}."


@dataclass
class Program:
    """A Vadalog program: rules, constraints, facts and annotations.

    The program is the unit handed to the reasoner.  ``facts`` are inline
    facts written in the program text; the extensional database proper is
    provided separately (see :class:`repro.storage.database.Database`).
    """

    rules: List[Rule] = field(default_factory=list)
    constraints: List[NegativeConstraint] = field(default_factory=list)
    egds: List[EqualityConstraint] = field(default_factory=list)
    facts: List[Fact] = field(default_factory=list)
    inputs: Set[str] = field(default_factory=set)
    outputs: Set[str] = field(default_factory=set)
    annotations: List["Annotation"] = field(default_factory=list)

    def add_rule(self, rule: Rule) -> None:
        if not rule.label:
            rule = rule.with_label(f"r{len(self.rules) + 1}")
        self.rules.append(rule)

    def add_fact(self, fact: Fact) -> None:
        self.facts.append(fact)

    def predicates(self) -> Tuple[Predicate, ...]:
        seen: Dict[Predicate, None] = {}
        for rule in self.rules:
            for predicate in rule.predicates():
                seen.setdefault(predicate, None)
        for fact in self.facts:
            seen.setdefault(fact.signature, None)
        return tuple(seen)

    def edb_predicates(self) -> Set[str]:
        """Predicates that never occur in a rule head (extensional predicates)."""
        heads = {name for rule in self.rules for name in rule.head_predicate_names()}
        all_preds = {p.name for p in self.predicates()}
        return (all_preds - heads) - {DOM_PREDICATE}

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule head (intensional predicates)."""
        return {name for rule in self.rules for name in rule.head_predicate_names()}

    def output_predicates(self) -> Set[str]:
        """The ``Ans`` predicates: explicit outputs, else every IDB predicate."""
        if self.outputs:
            return set(self.outputs)
        return self.idb_predicates()

    def rules_defining(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if predicate in r.head_predicate_names()]

    def rules_using(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if predicate in r.body_predicate_names()]

    def dependency_edges(self) -> Iterator[Tuple[str, str]]:
        """Yield predicate dependency edges body-predicate → head-predicate."""
        for rule in self.rules:
            for body_pred in rule.body_predicate_names():
                for head_pred in rule.head_predicate_names():
                    yield body_pred, head_pred

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __str__(self) -> str:
        lines = [str(r) for r in self.rules]
        lines.extend(str(c) for c in self.constraints)
        lines.extend(str(e) for e in self.egds)
        return "\n".join(lines)

    def copy(self) -> "Program":
        clone = Program(
            rules=list(self.rules),
            constraints=list(self.constraints),
            egds=list(self.egds),
            facts=list(self.facts),
            inputs=set(self.inputs),
            outputs=set(self.outputs),
            annotations=list(self.annotations),
        )
        return clone


@dataclass(frozen=True)
class Annotation:
    """A ``@name("arg", ...)`` behaviour-injection fact (Section 5)."""

    name: str
    arguments: Tuple[object, ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(repr(a) for a in self.arguments)
        return f"@{self.name}({inner})."


def make_rule(
    body: Sequence[Atom],
    head: Sequence[Atom],
    conditions: Sequence[Comparison] = (),
    assignments: Sequence[Assignment] = (),
    aggregate: Optional[AggregateSpec] = None,
    label: str = "",
) -> Rule:
    """Convenience constructor mirroring the dataclass with sequence inputs."""
    return Rule(
        body=tuple(body),
        head=tuple(head),
        conditions=tuple(conditions),
        assignments=tuple(assignments),
        aggregate=aggregate,
        label=label,
    )


def program_from_rules(rules: Iterable[Rule], outputs: Iterable[str] = ()) -> Program:
    """Build a program from rules, labelling them ``r1 .. rn`` in order."""
    program = Program()
    for rule in rules:
        program.add_rule(rule)
    program.outputs = set(outputs)
    return program
