"""The chase engine (Section 3.4, Algorithm 2) with pluggable termination.

The engine materialises ``Σ(D)`` for a program Σ and database D by applying
rules until no termination-strategy-admitted fact can be added.  Rules are
applied in **round-robin** order (the breadth-first policy of Section 4's
execution model): in every round each rule is given the chance to fire on
the facts derived in the previous round (semi-naive evaluation), which keeps
the fact propagation uniform across rules and makes the derivation order
deterministic for a fixed program and database.

Every derived fact is wrapped in a :class:`~repro.core.forests.ChaseNode`
carrying the linear-forest / warded-forest metadata needed by Algorithm 1
(:mod:`repro.core.termination`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .aggregates import AggregateRegistry
from .atoms import Atom, Fact
from .conditions import AggregateSpec
from .expressions import ExpressionError
from .fact_store import FactStore
from .forests import ChaseNode, derived_node, input_node
from .limits import (
    STATUS_COMPLETE,
    CancellationToken,
    ExecutionBudget,
    ExecutionGovernor,
    ExecutionStopped,
)
from .rules import DOM_PREDICATE, Program, Rule
from .terms import Constant, Null, NullFactory, Term, Variable
from .termination import TerminationStrategy, WardedTerminationStrategy
from .wardedness import ProgramAnalysis, RuleAnalysis, RuleKind, analyse_program
from ..testing.faults import fault_point


class InconsistencyError(Exception):
    """Raised when a negative constraint or EGD is violated (fail-fast mode)."""


class ChaseLimitError(Exception):
    """Raised when a configured safety limit (facts/iterations) is exceeded."""


@dataclass(frozen=True)
class Violation:
    """A violated constraint together with the facts witnessing the violation."""

    kind: str
    label: str
    witnesses: Tuple[Fact, ...]
    detail: str = ""

    def __str__(self) -> str:
        facts = ", ".join(repr(f) for f in self.witnesses)
        return f"{self.kind} {self.label or ''} violated by {facts} {self.detail}".strip()


@dataclass
class ChaseConfig:
    """Safety limits and behaviour switches of a chase run."""

    max_rounds: Optional[int] = None
    max_facts: Optional[int] = None
    fail_on_violation: bool = False
    check_constraints: bool = True
    apply_egds: bool = True
    #: Resource budget for the run.  Unlike ``max_rounds``/``max_facts``
    #: (hard safety limits that *raise* :class:`ChaseLimitError`), exhausting
    #: the budget ends the run gracefully with a structured non-``complete``
    #: status and the sound partial materialisation derived so far.
    budget: Optional[ExecutionBudget] = None
    #: Cooperative cancellation token checked at governed checkpoints.
    cancel: Optional[CancellationToken] = None


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    store: FactStore
    nodes: List[ChaseNode]
    program: Program
    strategy: TerminationStrategy
    aggregates: AggregateRegistry
    violations: List[Violation] = field(default_factory=list)
    rounds: int = 0
    chase_steps: int = 0
    candidate_facts: int = 0
    elapsed_seconds: float = 0.0
    #: Which evaluation path produced the result ("compiled", "naive" or
    #: "streaming"); benchmark rows and diagnostics report it.
    executor: str = ""
    #: Wall-clock seconds until the first answer fact reached a sink
    #: (streaming runs only; the materializing chase has no earlier answer
    #: than its completion).
    first_answer_seconds: Optional[float] = None
    #: Extra counters attached by non-chase executors (e.g. the streaming
    #: pipeline's pull/buffer statistics), merged into :meth:`stats`.
    extra_stats: Dict[str, object] = field(default_factory=dict)
    #: Structured run outcome: ``"complete"``, ``"deadline_exceeded"``,
    #: ``"budget_exceeded"`` or ``"cancelled"``.  Non-complete runs carry the
    #: sound partial materialisation derived before the stop.
    status: str = STATUS_COMPLETE
    #: Human-readable explanation of a non-complete status.
    stop_reason: Optional[str] = None
    #: High-water mark of resident facts (extensional + derived) in the store.
    peak_resident_facts: int = 0
    #: Degradation/early-stop notices (worker recoveries, budget stops).
    warnings: List[str] = field(default_factory=list)

    _derived_cache: Optional[Tuple[Fact, ...]] = field(default=None, repr=False, compare=False)
    _derived_seen: int = field(default=-1, repr=False, compare=False)

    def facts(self, predicate: Optional[str] = None) -> Tuple[Fact, ...]:
        """All facts of the result, optionally restricted to one predicate."""
        if predicate is None:
            return self.store.facts()
        return tuple(self.store.by_predicate(predicate))

    def derived_facts(self) -> Tuple[Fact, ...]:
        """Facts produced by rules (excluding the extensional input).

        The tuple is computed once per node count and cached — ``stats()``
        and callers iterating the result repeatedly no longer rebuild it.
        """
        if self._derived_cache is None or self._derived_seen != len(self.nodes):
            self._derived_cache = tuple(n.fact for n in self.nodes if not n.is_input)
            self._derived_seen = len(self.nodes)
        return self._derived_cache

    def node_count(self) -> int:
        return len(self.nodes)

    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "facts": len(self.store),
            "derived_facts": len(self.derived_facts()),
            "rounds": self.rounds,
            "chase_steps": self.chase_steps,
            "candidate_facts": self.candidate_facts,
            "elapsed_seconds": self.elapsed_seconds,
            "violations": len(self.violations),
            "strategy": self.strategy.name,
            "status": self.status,
            "peak_resident_facts": self.peak_resident_facts,
        }
        if self.stop_reason is not None:
            data["stop_reason"] = self.stop_reason
        if self.executor:
            data["executor"] = self.executor
        if self.first_answer_seconds is not None:
            data["first_answer_seconds"] = self.first_answer_seconds
        data.update(self.extra_stats)
        data.update({f"strategy_{k}": v for k, v in self.strategy.stats.as_dict().items()})
        return data


class ChaseEngine:
    """Materialisation engine guided by a termination strategy.

    Rule bodies are evaluated by one of two executors:

    ``"compiled"`` (the default)
        Each rule is compiled once into a slot-machine join plan
        (:func:`repro.engine.plan.compile_rule_join_plan`) and evaluated by
        tuple position through the store's dynamic indexes
        (:class:`repro.engine.joins.CompiledRuleExecutor`).
    ``"naive"``
        The original interpreted backtracking matcher building a binding
        ``dict`` per candidate fact.  Kept as the reference implementation
        for differential testing and as an escape hatch.
    """

    def __init__(
        self,
        program: Program,
        database: Iterable[Fact] = (),
        strategy: Optional[TerminationStrategy] = None,
        analysis: Optional[ProgramAnalysis] = None,
        null_factory: Optional[NullFactory] = None,
        config: Optional[ChaseConfig] = None,
        executor: str = "compiled",
        join_plans: Optional[Dict[int, object]] = None,
        tracer=None,
    ) -> None:
        if executor not in ("compiled", "naive"):
            raise ValueError(f"unknown executor {executor!r}; use 'compiled' or 'naive'")
        #: Optional :class:`repro.obs.Tracer`.  ``None`` (the default) keeps
        #: every instrumentation block behind an ``is not None`` guard so the
        #: untraced path runs no telemetry code at all.
        self.tracer = tracer
        self.program = program
        self.analysis = analysis or analyse_program(program)
        self.strategy = strategy if strategy is not None else WardedTerminationStrategy()
        self.null_factory = null_factory or NullFactory()
        self.config = config or ChaseConfig()
        self.executor = executor
        #: Per-run budget/cancellation monitor; ``None`` outside ``run()`` and
        #: for ungoverned runs, so callers of :meth:`fire_binding` (the
        #: streaming pipeline) pay nothing.
        self._governor: Optional[ExecutionGovernor] = None
        #: Set by :meth:`continue_rounds` around a DRed rederivation round:
        #: the delta is the whole store, so per-atom seed plans would
        #: enumerate each join ``body_length`` times over; full-join mode
        #: seeds only the first plan with the predicate's full extent (the
        #: before-seed restriction passes everything — every resident fact
        #: is stamped with an earlier round — so one seed covers the join).
        self._full_join_round = False
        self.aggregates = AggregateRegistry()
        self._database_facts = list(database) + list(program.facts)
        self._rule_analyses: Dict[int, RuleAnalysis] = {
            id(rule): self.analysis.analysis_for(rule) for rule in program.rules
        }
        self._compiled: Dict[int, object] = {}
        if executor == "compiled":
            # Imported lazily: the engine package imports this module.
            from ..engine.joins import CompiledRuleExecutor
            from ..engine.plan import compile_rule_join_plan

            for rule in program.rules:
                plan = join_plans.get(id(rule)) if join_plans else None
                if plan is None:
                    plan = compile_rule_join_plan(rule)
                self._compiled[id(rule)] = CompiledRuleExecutor(plan)
        # Conditions mentioning assignment/aggregate variables can only be
        # evaluated after those values are computed ("post" conditions); the
        # remaining ones are checked while matching the body.
        self._post_conditions: Dict[int, Tuple] = {}
        for rule in program.rules:
            body_vars = set(rule.body_variables())
            post = tuple(
                c for c in rule.conditions if any(v not in body_vars for v in c.variables())
            )
            self._post_conditions[id(rule)] = post
        self._register_aggregated_positions()

    # ------------------------------------------------------------------ setup
    def _register_aggregated_positions(self) -> None:
        for rule in self.program.rules:
            if rule.aggregate is None:
                continue
            for atom in rule.head:
                for index, term in enumerate(atom.terms):
                    if term == rule.aggregate.variable:
                        self.aggregates.register_position(
                            atom.predicate, index, rule.aggregate.function
                        )

    # -------------------------------------------------------------------- run
    def run(self) -> ChaseResult:
        """Run the chase to completion (or until a safety limit triggers)."""
        started = time.perf_counter()
        store = FactStore()
        nodes: List[ChaseNode] = []
        node_of: Dict[Fact, ChaseNode] = {}

        # Bulk input load through the store's write-batch protocol: stage
        # everything (deduplicating), commit once, then register the chase
        # nodes for the facts that actually entered the store.
        batch = store.write_batch()
        loaded = [fact for fact in self._database_facts if batch.add(fact)]
        batch.apply()
        for fact in loaded:
            node = input_node(fact, step=0)
            nodes.append(node)
            node_of[fact] = node
            self.strategy.register_input(node)

        result = ChaseResult(
            store=store,
            nodes=nodes,
            program=self.program,
            strategy=self.strategy,
            aggregates=self.aggregates,
            executor=self.executor,
        )

        governor = ExecutionGovernor.for_config(self.config)
        self._governor = governor
        result.peak_resident_facts = len(store)

        tracer = self.tracer
        chase_span = None
        if tracer is not None:
            if governor is not None:
                governor.tracer = tracer
            chase_span = tracer.begin(
                "chase", f"chase:{self.executor}", executor=self.executor
            )
            chase_span.counters["input_facts"] = len(store)

        round_index = 0
        delta: List[ChaseNode] = list(nodes)
        try:
            while delta:
                if governor is not None:
                    stop = governor.round_status(
                        round_index, len(store), result.chase_steps
                    )
                    if stop is not None:
                        result.status, result.stop_reason = stop
                        break
                round_index += 1
                if self.config.max_rounds is not None and round_index > self.config.max_rounds:
                    raise ChaseLimitError(
                        f"chase exceeded the configured maximum of {self.config.max_rounds} rounds"
                    )
                if tracer is None:
                    delta = self._evaluate_round(store, node_of, delta, round_index, result)
                else:
                    round_span = tracer.begin(
                        "round", f"round:{round_index}", round=round_index
                    )
                    round_span.counters["delta_in"] = len(delta)
                    delta = self._evaluate_round(store, node_of, delta, round_index, result)
                    round_span.counters["derived"] = len(delta)
                    round_span.counters["resident_facts"] = len(store)
                    tracer.end(round_span)
                    tracer.metrics.histogram("chase.round_seconds").observe(
                        round_span.duration
                    )
                if len(store) > result.peak_resident_facts:
                    result.peak_resident_facts = len(store)
        except ExecutionStopped as stop:
            # An inner-loop tick (deadline/cancellation) unwound the round;
            # everything admitted so far is already committed and sound.
            result.status, result.stop_reason = stop.status, stop.detail
        finally:
            self._governor = None
        result.rounds = round_index
        if len(store) > result.peak_resident_facts:
            result.peak_resident_facts = len(store)

        if result.status == STATUS_COMPLETE:
            self.check_violations(result)
        else:
            result.warnings.append(
                f"chase stopped early ({result.status}): {result.stop_reason}; "
                "the materialisation is a sound subset of the complete result"
            )
        result.elapsed_seconds = time.perf_counter() - started
        if tracer is not None:
            tracer.unwind(chase_span)
            chase_span.counters["facts"] = len(store)
            chase_span.counters["derived"] = result.chase_steps
            chase_span.counters["rounds"] = result.rounds
            chase_span.counters["candidates"] = result.candidate_facts
            chase_span.counters["peak_resident_facts"] = result.peak_resident_facts
            chase_span.attrs["status"] = result.status
            if result.stop_reason:
                chase_span.attrs["stop_reason"] = result.stop_reason
            tracer.end(chase_span)
            tracer.metrics.gauge("chase.peak_resident_facts").set_max(
                result.peak_resident_facts
            )
        return result

    def continue_rounds(
        self,
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        delta: List[ChaseNode],
        result: ChaseResult,
        start_round: int,
        rules: Optional[List[Rule]] = None,
    ) -> int:
        """Run semi-naive rounds seeded with ``delta`` until fixpoint.

        This is the incremental-continuation entry point used by the
        resident reasoner (:mod:`repro.engine.incremental`): ``delta`` are
        facts that just entered an already-materialised ``store`` (upserted
        inputs, or the rederivation front of a retraction) and
        ``start_round`` is the last completed round, so round numbering —
        and with it the store's round stamps driving the before-seed probe
        restriction — stays monotone across maintenance operations.

        ``rules`` restricts the *first* round to a subset of the program
        (the DRed rederivation phase only fires rules whose head predicate
        was deleted); later rounds always run the full program.  Returns the
        index of the last evaluated round.
        """
        round_index = start_round
        first_restriction = rules
        while delta:
            round_index += 1
            if self.config.max_rounds is not None and round_index > self.config.max_rounds:
                raise ChaseLimitError(
                    f"chase exceeded the configured maximum of {self.config.max_rounds} rounds"
                )
            self._full_join_round = first_restriction is not None
            try:
                delta = self._evaluate_round(
                    store, node_of, delta, round_index, result, rules=first_restriction
                )
            finally:
                self._full_join_round = False
            first_restriction = None
            if len(store) > result.peak_resident_facts:
                result.peak_resident_facts = len(store)
        result.rounds = round_index
        return round_index

    def _evaluate_round(
        self,
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        delta: List[ChaseNode],
        round_index: int,
        result: ChaseResult,
        rules: Optional[List[Rule]] = None,
    ) -> List[ChaseNode]:
        """Evaluate one semi-naive round; returns the nodes it derived.

        This is the template method the parallel executor overrides
        (:class:`repro.engine.partition.ParallelChaseEngine`): the base
        implementation applies the rules sequentially in round-robin order
        against the live store.
        """
        delta_facts = [node.fact for node in delta]
        delta_by_predicate: Dict[str, List[Fact]] = {}
        if self.executor == "naive":
            store.current_round = round_index
            for fact in delta_facts:
                delta_by_predicate.setdefault(fact.predicate, []).append(fact)
        else:
            # Stamp the round and build the per-round delta indexes used
            # by the compiled executors' seed probes.
            store.begin_round(round_index, delta_facts)
        new_nodes: List[ChaseNode] = []
        tracer = self.tracer
        for rule in (self.program.rules if rules is None else rules):
            if tracer is None:
                produced = self._apply_rule(
                    rule, store, node_of, delta_by_predicate, round_index, result
                )
            else:
                produced = self._apply_rule_traced(
                    tracer, rule, store, node_of, delta_by_predicate, round_index, result
                )
            new_nodes.extend(produced)
            if self.config.max_facts is not None and len(store) > self.config.max_facts:
                raise ChaseLimitError(
                    f"chase exceeded the configured maximum of {self.config.max_facts} facts"
                )
        return new_nodes

    def _apply_rule_traced(
        self,
        tracer,
        rule: Rule,
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        delta_by_predicate: Dict[str, List[Fact]],
        round_index: int,
        result: ChaseResult,
    ) -> List[ChaseNode]:
        """Wrap :meth:`_apply_rule` in a per-(round, rule) span.

        Counters are bumped in bulk after the rule finishes (never per
        fire), keeping the traced path within the ≤2% overhead target:
        ``candidates`` is every head instantiation attempted, ``fires`` the
        admitted subset, ``deduped`` the difference (already-present or
        termination-rejected candidates).
        """
        label = rule.label or "rule"
        span = tracer.begin("rule", f"rule:{label}", rule=label, round=round_index)
        candidates_before = result.candidate_facts
        try:
            produced = self._apply_rule(
                rule, store, node_of, delta_by_predicate, round_index, result
            )
        except BaseException as exc:
            tracer.end(span, status="error", error=repr(exc))
            raise
        fires = len(produced)
        candidates = result.candidate_facts - candidates_before
        span.counters["fires"] = fires
        span.counters["candidates"] = candidates
        span.counters["deduped"] = candidates - fires
        tracer.end(span)
        return produced

    # ---------------------------------------------------------- rule matching
    def _apply_rule(
        self,
        rule: Rule,
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        delta_by_predicate: Dict[str, List[Fact]],
        round_index: int,
        result: ChaseResult,
    ) -> List[ChaseNode]:
        fault_point("chase.rule", rule=rule.label or "rule", round=round_index)
        executor = self._compiled.get(id(rule))
        if executor is not None:
            return self._apply_rule_compiled(
                rule, executor, store, node_of, round_index, result
            )
        analysis = self._rule_analyses[id(rule)]
        produced: List[ChaseNode] = []
        body = rule.relational_body
        governor = self._governor
        tick = governor.tick if governor is not None else None
        seed_range = range(1) if self._full_join_round else range(len(body))
        for seed_index in seed_range:
            for binding, used_facts in self._matches(
                rule, body, seed_index, store, delta_by_predicate, round_index
            ):
                if tick is not None:
                    tick()
                produced.extend(
                    self._fire(
                        rule,
                        analysis,
                        binding,
                        used_facts,
                        store,
                        node_of,
                        round_index,
                        result,
                    )
                )
        return produced

    def _apply_rule_compiled(
        self,
        rule: Rule,
        executor,
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        round_index: int,
        result: ChaseResult,
    ) -> List[ChaseNode]:
        """Hot path: evaluate the rule body through its compiled join plan.

        The executor already evaluated every comparison that only needs body
        slots.  Rules without computed values or final guards fire straight
        from the slot array (:meth:`_fire_compiled`); the rest build a dict
        binding, re-check ``Dom`` guards / residual conditions and go through
        the generic :meth:`_fire`.
        """
        analysis = self._rule_analyses[id(rule)]
        plan = executor.plan
        produced: List[ChaseNode] = []
        governor = self._governor
        tick = governor.tick if governor is not None else None
        seed_lists = None
        if self._full_join_round and plan.seed_plans:
            # DRed full round: one seed plan over the predicate's full
            # extent replaces body_length delta-seeded passes (see
            # ``_full_join_round``); admission checks still run per fact.
            seed_lists = [()] * len(plan.seed_plans)
            # Copied: the store's bucket grows as the round admits facts.
            seed_lists[0] = list(store.by_predicate(plan.seed_plans[0].seed.predicate))
        if plan.simple_fire:
            fire = self._fire_compiled
            for slots, used_facts in executor.matches(store, round_index, seed_lists):
                if tick is not None:
                    tick()
                fire(
                    rule, analysis, plan, slots, used_facts,
                    store, node_of, round_index, result, produced,
                )
            return produced
        residual = plan.residual_conditions
        for binding, used_facts in executor.bindings(store, round_index, seed_lists):
            if tick is not None:
                tick()
            if residual and not all(c.holds(binding) for c in residual):
                continue
            if not self._dom_guards_hold(rule, binding, store):
                continue
            produced.extend(
                self._fire(
                    rule,
                    analysis,
                    binding,
                    used_facts,
                    store,
                    node_of,
                    round_index,
                    result,
                )
            )
        return produced

    def _fire_compiled(
        self,
        rule: Rule,
        analysis: RuleAnalysis,
        plan,
        slots: List[Term],
        used_facts: List[Fact],
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        round_index: int,
        result: ChaseResult,
        produced: List[ChaseNode],
        sink=None,
        admit=None,
    ) -> None:
        """Slot-based firing: instantiate heads positionally, no dict binding.

        Only used for rules whose plan has head templates (no assignments,
        aggregation, post conditions, ``Dom`` guards or residual conditions);
        semantically identical to :meth:`_fire` on those rules, including the
        fresh-null generation order.  ``sink`` is the write target — the
        live store by default, a :class:`~repro.core.fact_store.WriteBatch`
        in the parallel admission stage.
        """
        if sink is None:
            sink = store
        if admit is None:
            admit = self.strategy.admit
        if plan.existentials:
            nulls = tuple(self.null_factory.fresh() for _ in plan.existentials)
        else:
            nulls = ()
        parents = None
        ward_parent = None
        contains_row = sink.contains_row
        for predicate, entries in plan.head_templates:
            result.candidate_facts += 1
            # Entry kinds from repro.engine.plan: 1 = HEAD_SLOT, 2 = HEAD_NULL,
            # 0 = HEAD_GROUND (payload is the term itself).
            terms = tuple(
                [
                    slots[payload]
                    if kind == 1
                    else (nulls[payload] if kind == 2 else payload)
                    for kind, payload in entries
                ]
            )
            if contains_row(predicate, terms):
                continue
            head_fact = Fact.from_ground(predicate, terms)
            if parents is None:
                parents = [node_of[f] for f in used_facts if f in node_of]
                ward_parent = self._ward_parent(rule, analysis, used_facts, node_of)
            node = derived_node(
                fact=head_fact,
                kind=analysis.kind,
                rule_label=rule.label or "rule",
                parents=parents,
                ward_parent=ward_parent,
                step=round_index,
            )
            if not admit(node):
                continue
            sink.add(head_fact)
            node_of[head_fact] = node
            result.nodes.append(node)
            result.chase_steps += 1
            produced.append(node)

    def _ward_parent(
        self,
        rule: Rule,
        analysis: RuleAnalysis,
        used_facts: List[Fact],
        node_of: Dict[Fact, ChaseNode],
    ) -> Optional[ChaseNode]:
        """The chase node bound to the rule's ward, if any (warded rules)."""
        if analysis.kind is not RuleKind.WARDED or analysis.ward is None:
            return None
        for atom, fact in zip(rule.relational_body, used_facts):
            if atom is analysis.ward and fact in node_of:
                return node_of[fact]
        for atom, fact in zip(rule.relational_body, used_facts):
            if atom == analysis.ward and fact in node_of:
                return node_of[fact]
        return None

    def _matches(
        self,
        rule: Rule,
        body: Tuple[Atom, ...],
        seed_index: int,
        store: FactStore,
        delta_by_predicate: Dict[str, List[Fact]],
        round_index: int,
        ) -> Iterator[Tuple[Dict[Variable, Term], List[Fact]]]:
        """Enumerate bindings where atom ``seed_index`` matches a delta fact.

        To avoid producing the same join twice across different seed choices,
        atoms before the seed are restricted to facts of *earlier* rounds
        while atoms after the seed may match any fact (the standard semi-naive
        decomposition).
        """
        seed_atom = body[seed_index]
        other_atoms = [(i, atom) for i, atom in enumerate(body) if i != seed_index]

        for seed_fact in delta_by_predicate.get(seed_atom.predicate, ()):
            seed_binding = seed_atom.match(seed_fact)
            if seed_binding is None:
                continue
            used: List[Optional[Fact]] = [None] * len(body)
            used[seed_index] = seed_fact
            yield from self._extend_match(
                rule,
                other_atoms,
                0,
                dict(seed_binding),
                used,
                store,
                round_index,
                seed_index,
            )

    def _extend_match(
        self,
        rule: Rule,
        other_atoms: List[Tuple[int, Atom]],
        position: int,
        binding: Dict[Variable, Term],
        used: List[Optional[Fact]],
        store: FactStore,
        round_index: int,
        seed_index: int,
    ) -> Iterator[Tuple[Dict[Variable, Term], List[Fact]]]:
        if position == len(other_atoms):
            if self._guards_hold(rule, binding, store):
                yield dict(binding), [f for f in used if f is not None]
            return
        atom_index, atom = other_atoms[position]
        ground_atom = atom.substitute(binding)
        for fact in store.candidates(ground_atom, binding):
            if atom_index < seed_index and store.round_of(fact) >= round_index:
                # Atoms before the seed may only use facts from earlier rounds,
                # otherwise the same join would be enumerated once per seed.
                continue
            extension = ground_atom.match(fact)
            if extension is None:
                continue
            new_binding = dict(binding)
            new_binding.update(extension)
            used[atom_index] = fact
            yield from self._extend_match(
                rule,
                other_atoms,
                position + 1,
                new_binding,
                used,
                store,
                round_index,
                seed_index,
            )
            used[atom_index] = None

    def _guards_hold(
        self, rule: Rule, binding: Dict[Variable, Term], store: FactStore
    ) -> bool:
        """Check ``Dom`` guards and comparison conditions for a full body match."""
        if not self._dom_guards_hold(rule, binding, store):
            return False
        post = self._post_conditions.get(id(rule), ())
        for condition in rule.conditions:
            if condition in post:
                continue
            if not condition.holds(binding):
                return False
        return True

    def _dom_guards_hold(
        self, rule: Rule, binding: Dict[Variable, Term], store: FactStore
    ) -> bool:
        """Check the ``Dom`` active-domain guards for a full body match."""
        for guard in rule.dom_guards:
            for term in guard.terms:
                if isinstance(term, Variable):
                    if term.name == "_STAR":
                        # ``Dom(*)``: every bound body variable must be a ground
                        # constant of the active domain (Section 2, Example 6).
                        if any(not isinstance(v, Constant) for v in binding.values()):
                            return False
                        continue
                    bound = binding.get(term)
                    if bound is None or not isinstance(bound, Constant):
                        return False
                    if not store.in_active_domain(bound.value):
                        return False
                elif isinstance(term, Null):
                    return False
        return True

    def _post_conditions_hold(self, rule: Rule, binding: Dict[Variable, Term]) -> bool:
        """Evaluate the conditions deferred until computed values are available."""
        for condition in self._post_conditions.get(id(rule), ()):
            if not condition.holds(binding):
                return False
        return True

    # ----------------------------------------------------------------- firing
    def fire_binding(
        self,
        rule: Rule,
        binding: Dict[Variable, Term],
        used_facts: List[Fact],
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        step: int,
        result: ChaseResult,
        admit=None,
        sink=None,
    ) -> List[ChaseNode]:
        """Fire ``rule`` on a full body ``binding`` against an external store.

        This is the reusable chase-step kernel: assignments, aggregations,
        post conditions, fresh-null generation, forest metadata and the
        termination check all happen here.  The streaming pipeline executor
        (:mod:`repro.engine.pipeline`) matches rule bodies itself and funnels
        every match through this method so both executors share one firing
        semantics.  ``admit`` overrides the termination oracle (the pipeline
        passes its per-filter :class:`~repro.engine.wrappers.TerminationWrapper`).
        """
        analysis = self._rule_analyses[id(rule)]
        return self._fire(
            rule,
            analysis,
            binding,
            used_facts,
            store,
            node_of,
            step,
            result,
            admit=admit,
            sink=sink,
        )

    def dom_guards_hold(
        self, rule: Rule, binding: Dict[Variable, Term], store: FactStore
    ) -> bool:
        """Public alias of the ``Dom`` active-domain guard check."""
        return self._dom_guards_hold(rule, binding, store)

    def check_violations(self, result: ChaseResult) -> None:
        """Run the deferred EGD and negative-constraint checks on ``result``."""
        if self.config.apply_egds and self.program.egds:
            self._apply_egds(result)
        if self.config.check_constraints and self.program.constraints:
            self._check_constraints(result)

    def _fire(
        self,
        rule: Rule,
        analysis: RuleAnalysis,
        binding: Dict[Variable, Term],
        used_facts: List[Fact],
        store: FactStore,
        node_of: Dict[Fact, ChaseNode],
        round_index: int,
        result: ChaseResult,
        admit=None,
        sink=None,
    ) -> List[ChaseNode]:
        if sink is None:
            sink = store
        full_binding = dict(binding)
        try:
            for assignment in rule.assignments:
                full_binding[assignment.variable] = assignment.compute(full_binding)
            if rule.aggregate is not None:
                aggregate_value = self._aggregate_value(rule, rule.aggregate, full_binding)
                if aggregate_value is None:
                    return []
                full_binding[rule.aggregate.variable] = aggregate_value
        except ExpressionError:
            return []
        if not self._post_conditions_hold(rule, full_binding):
            return []

        existentials = rule.existential_variables()
        for variable in existentials:
            full_binding[variable] = self.null_factory.fresh()

        if admit is None:
            admit = self.strategy.admit
        produced: List[ChaseNode] = []
        parents = [node_of[f] for f in used_facts if f in node_of]
        ward_parent = self._ward_parent(rule, analysis, used_facts, node_of)

        for head_atom in rule.head:
            head_fact = self._instantiate_head(head_atom, full_binding)
            result.candidate_facts += 1
            if head_fact in sink:
                continue
            node = derived_node(
                fact=head_fact,
                kind=analysis.kind,
                rule_label=rule.label or "rule",
                parents=parents,
                ward_parent=ward_parent,
                step=round_index,
            )
            if not admit(node):
                continue
            sink.add(head_fact)
            node_of[head_fact] = node
            result.nodes.append(node)
            result.chase_steps += 1
            produced.append(node)
        return produced

    def _instantiate_head(self, atom: Atom, binding: Dict[Variable, Term]) -> Fact:
        terms: List[Term] = []
        for term in atom.terms:
            if isinstance(term, Variable):
                value = binding.get(term)
                if value is None:
                    raise InconsistencyError(
                        f"head variable {term.name} of {atom!r} is unbound; "
                        "the rule is unsafe"
                    )
                terms.append(value)
            else:
                terms.append(term)
        return Fact(atom.predicate, terms)

    def _aggregate_value(
        self, rule: Rule, spec: AggregateSpec, binding: Dict[Variable, Term]
    ) -> Optional[Term]:
        evaluator = self.aggregates.evaluator_for(rule.label or str(id(rule)), spec)
        group_variables = tuple(
            v
            for v in rule.head_variables()
            if v != spec.variable and v in binding
        )
        group_key = tuple(self._binding_key(binding[v]) for v in group_variables)
        if any(isinstance(binding[v], Null) for v in group_variables):
            # Group-by arguments must be non-null (Section 5 constraint 1).
            return None
        if spec.contributors:
            contributor_terms = [binding.get(v) for v in spec.contributors]
            if any(t is None or isinstance(t, Null) for t in contributor_terms):
                # Contributors must be non-null values (Section 5, constraint 1).
                return None
            contributor_key: Hashable = tuple(self._binding_key(t) for t in contributor_terms)
        else:
            contributor_key = tuple(
                sorted((v.name, str(self._binding_key(t))) for v, t in binding.items())
            )
        value = spec.argument.evaluate(binding)
        if isinstance(value, Null):
            # Counting/collecting aggregations treat labelled nulls by identity;
            # numeric aggregations cannot use them as values.
            if spec.function not in ("mcount", "munion"):
                return None
            value = ("null", value.ident)
        current = evaluator.update(group_key, contributor_key, value)
        if isinstance(current, frozenset):
            return Constant(current)
        return Constant(current)

    @staticmethod
    def _binding_key(term: Term) -> Hashable:
        if isinstance(term, Constant):
            return ("c", term.value)
        if isinstance(term, Null):
            return ("n", term.ident)
        raise TypeError(f"unexpected non-ground binding {term!r}")

    # ------------------------------------------------------------ constraints
    def _check_constraints(self, result: ChaseResult) -> None:
        for constraint in self.program.constraints:
            for binding, used in self._constraint_matches(constraint.body, result.store):
                if all(c.holds(binding) for c in constraint.conditions):
                    violation = Violation(
                        kind="negative-constraint",
                        label=constraint.label,
                        witnesses=tuple(used),
                    )
                    result.violations.append(violation)
                    if self.config.fail_on_violation:
                        raise InconsistencyError(str(violation))

    def _apply_egds(self, result: ChaseResult) -> None:
        for egd in self.program.egds:
            for binding, used in self._constraint_matches(egd.body, result.store):
                if not all(c.holds(binding) for c in egd.conditions):
                    continue
                left = binding.get(egd.left)
                right = binding.get(egd.right)
                if left is None or right is None or left == right:
                    continue
                if isinstance(left, Constant) and isinstance(right, Constant):
                    violation = Violation(
                        kind="egd",
                        label=egd.label,
                        witnesses=tuple(used),
                        detail=f"({left} != {right})",
                    )
                    result.violations.append(violation)
                    if self.config.fail_on_violation:
                        raise InconsistencyError(str(violation))

    def _constraint_matches(
        self, body: Tuple[Atom, ...], store: FactStore
    ) -> Iterator[Tuple[Dict[Variable, Term], List[Fact]]]:
        relational = [a for a in body if a.predicate != DOM_PREDICATE]
        dom_guards = [a for a in body if a.predicate == DOM_PREDICATE]

        def recurse(index: int, binding: Dict[Variable, Term], used: List[Fact]):
            if index == len(relational):
                for guard in dom_guards:
                    for term in guard.terms:
                        if isinstance(term, Variable):
                            bound = binding.get(term)
                            if bound is None or not isinstance(bound, Constant):
                                return
                yield dict(binding), list(used)
                return
            atom = relational[index].substitute(binding)
            for fact in store.candidates(atom, binding):
                extension = atom.match(fact)
                if extension is None:
                    continue
                new_binding = dict(binding)
                new_binding.update(extension)
                used.append(fact)
                yield from recurse(index + 1, new_binding, used)
                used.pop()

        yield from recurse(0, {}, [])


def run_chase(
    program: Program,
    database: Iterable[Fact] = (),
    strategy: Optional[TerminationStrategy] = None,
    config: Optional[ChaseConfig] = None,
    executor: str = "compiled",
    parallelism: Optional[int] = None,
    parallel_backend: str = "threads",
    tracer=None,
) -> ChaseResult:
    """One-call helper: build a :class:`ChaseEngine` and run it.

    ``executor="parallel"`` routes through the sharded round executor
    (:class:`repro.engine.partition.ParallelChaseEngine`); ``parallelism``
    and ``parallel_backend`` are only meaningful there.  ``tracer`` is an
    optional :class:`repro.obs.Tracer`; callers owning the tracer must call
    ``tracer.finish()`` themselves (the reasoner does this for ``reason()``).
    """
    if executor not in ("compiled", "naive", "parallel"):
        raise ValueError(
            f"unknown executor {executor!r}; run_chase supports 'compiled', "
            "'naive' and 'parallel' (use VadalogReasoner/reason() for 'streaming')"
        )
    if executor == "parallel":
        # Imported lazily: the engine package imports this module.
        from ..engine.partition import ParallelChaseEngine

        parallel_engine = ParallelChaseEngine(
            program,
            database,
            strategy=strategy,
            config=config,
            parallelism=parallelism,
            backend=parallel_backend,
            tracer=tracer,
        )
        return parallel_engine.run()
    engine = ChaseEngine(
        program, database, strategy=strategy, config=config, executor=executor,
        tracer=tracer,
    )
    return engine.run()
