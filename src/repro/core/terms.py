"""Terms of the Vadalog / Warded Datalog± language.

The paper distinguishes three disjoint, countably infinite sets of symbols
(Section 2.1):

* **constants** (``C``) — ground values from the extensional database,
* **labelled nulls** (``N``) — fresh witnesses introduced by the chase to
  satisfy existential quantification,
* **variables** (``V``) — regular (universally quantified) rule variables.

This module provides immutable, hashable Python representations of each of
these symbol classes plus small utilities (fresh-name generators and
substitution application) used throughout the reasoner.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Tuple, Union


class Term:
    """Abstract base class of all term kinds.

    Terms are value objects: they are immutable, hashable and compare by
    value.  The concrete subclasses are :class:`Constant`, :class:`Variable`
    and :class:`Null`.
    """

    __slots__ = ()

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def is_null(self) -> bool:
        return isinstance(self, Null)

    @property
    def is_ground(self) -> bool:
        """A term is ground if it is not a variable (constants and nulls)."""
        return not isinstance(self, Variable)


@dataclass(frozen=True, slots=True, eq=False)
class Constant(Term):
    """A ground constant wrapping an arbitrary hashable Python value.

    Vadalog terms are typed (Section 5 "Data Types"); we support the basic
    types by simply wrapping the corresponding Python value (``int``,
    ``float``, ``str``, ``bool``, ``date`` …) as well as frozen composites
    (tuples, frozensets) for the set/list data types.

    Terms are the keys of every hot index of the engine (fact-store position
    indexes, join probes, binding slots), so the hash is computed once at
    construction and cached (the class-specific salt keeps constants, nulls
    and variables from colliding in mixed dictionaries) and ``__eq__`` takes
    an identity fast path before comparing values.
    """

    value: Any
    _hash: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("c", self.value)))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Constant:
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True, slots=True, eq=False)
class Variable(Term):
    """A (universally or existentially quantified) rule variable."""

    name: str
    _hash: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("v", self.name)))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Variable:
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True, eq=False)
class Null(Term):
    """A labelled null ``ν_i`` introduced by the chase for an existential.

    Nulls carry an integer identifier.  Two nulls are the same labelled null
    iff their identifiers coincide.  The optional ``origin`` records the
    Skolem term the null stands for (used by the Skolemized baselines and by
    the harmful-join elimination machinery); it does not take part in
    equality.
    """

    ident: int
    _hash: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("n", self.ident)))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Null:
            return self.ident == other.ident
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Null({self.ident})"

    def __str__(self) -> str:
        return f"_:n{self.ident}"


Value = Union[Constant, Null]
Substitution = Mapping[Variable, Term]


class NullFactory:
    """Thread-safe factory of fresh labelled nulls.

    The chase must never reuse a null identifier within one reasoning task;
    a factory instance is attached to each chase run so that identifiers are
    deterministic for a given execution (useful for reproducible tests).
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def fresh(self) -> Null:
        """Return a labelled null with an identifier never handed out before."""
        with self._lock:
            return Null(next(self._counter))

    def fresh_many(self, n: int) -> Tuple[Null, ...]:
        """Return ``n`` distinct fresh nulls."""
        return tuple(self.fresh() for _ in range(n))


class VariableFactory:
    """Factory of fresh variables, used by program rewritings.

    Generated names use a reserved ``_V`` prefix so they can never clash with
    user-written variable names (the parser rejects identifiers starting with
    an underscore).
    """

    def __init__(self, prefix: str = "_V") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self) -> Variable:
        return Variable(f"{self._prefix}{next(self._counter)}")

    def fresh_many(self, n: int) -> Tuple[Variable, ...]:
        return tuple(self.fresh() for _ in range(n))


def make_term(value: Any) -> Term:
    """Coerce a raw Python value into a :class:`Term`.

    Existing terms are passed through unchanged; strings beginning with an
    upper-case letter are *not* treated as variables here (that convention
    belongs to the parser) — every non-term value becomes a :class:`Constant`.
    """
    if isinstance(value, Term):
        return value
    return Constant(value)


def constants_of(terms: Iterable[Term]) -> Tuple[Constant, ...]:
    """Return the constants occurring in ``terms`` in order of appearance."""
    return tuple(t for t in terms if isinstance(t, Constant))


def nulls_of(terms: Iterable[Term]) -> Tuple[Null, ...]:
    """Return the labelled nulls occurring in ``terms`` in order of appearance."""
    return tuple(t for t in terms if isinstance(t, Null))


def variables_of(terms: Iterable[Term]) -> Tuple[Variable, ...]:
    """Return the variables occurring in ``terms`` in order of appearance."""
    return tuple(t for t in terms if isinstance(t, Variable))


def apply_substitution(term: Term, substitution: Substitution) -> Term:
    """Apply a variable substitution to a single term.

    Variables not bound by the substitution are returned unchanged, as are
    constants and nulls.
    """
    if isinstance(term, Variable):
        return substitution.get(term, term)
    return term


def merge_substitutions(
    first: Substitution, second: Substitution
) -> Dict[Variable, Term] | None:
    """Merge two substitutions, returning ``None`` on conflicting bindings.

    Used by the rule-matching machinery when combining the bindings obtained
    from different body atoms of a join.
    """
    merged: Dict[Variable, Term] = dict(first)
    for variable, value in second.items():
        bound = merged.get(variable)
        if bound is None:
            merged[variable] = value
        elif bound != value:
            return None
    return merged
