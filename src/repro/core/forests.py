"""Chase-graph guide structures: warded forest, linear forest, lifted linear forest.

Section 3 of the paper introduces three related structures over the chase
graph:

* the **warded forest** — all nodes, the edges of linear-rule applications
  and, for each warded rule application, the single edge from the fact bound
  to the ward (Section 3.1, Figure 2);
* the **linear forest** — all nodes and only linear-rule edges (Section 3.3);
* the **lifted linear forest** — the linear forest collapsed modulo pattern
  isomorphism of subtree roots (Section 3.3, Figure 3).

The termination strategy (Algorithm 1) only needs compact summaries of these
structures (:mod:`repro.core.termination`); the explicit graph classes here
are used for program analysis, testing the isomorphism theorems, statistics
and the figures-style introspection offered by the public API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from .atoms import Fact
from .isomorphism import isomorphism_key, pattern_key
from .provenance import EMPTY_PROVENANCE, Provenance
from .wardedness import RuleKind

#: Kind marker for facts loaded from the extensional database.
INPUT_KIND = "input"


@dataclass(eq=False)
class ChaseNode:
    """A node of the chase graph: a fact plus the Section-3.4 metadata.

    Attributes
    ----------
    fact:
        The derived fact.
    kind:
        The generating-rule kind (:class:`RuleKind`) or :data:`INPUT_KIND`
        for database facts.
    rule_label:
        Label of the rule that generated the fact (empty for input facts).
    parents:
        The body facts of the generating chase step.
    linear_parent:
        The parent in the *linear forest* (single body fact of a linear rule),
        ``None`` otherwise.
    warded_parent:
        The parent in the *warded forest*: the linear parent for linear rules,
        the fact bound to the ward for warded rules, ``None`` otherwise.
    l_root / w_root:
        Roots of the containing trees in the linear and warded forest.
    provenance:
        Rule labels applied from ``l_root`` to this fact in the linear forest.
    step:
        Chase-step counter at creation (for reporting and ordering).
    """

    fact: Fact
    kind: object = INPUT_KIND
    rule_label: str = ""
    parents: Tuple["ChaseNode", ...] = ()
    linear_parent: Optional["ChaseNode"] = None
    warded_parent: Optional["ChaseNode"] = None
    l_root: "ChaseNode" = None  # type: ignore[assignment]
    w_root: "ChaseNode" = None  # type: ignore[assignment]
    provenance: Provenance = EMPTY_PROVENANCE
    step: int = 0
    ident: int = field(default_factory=itertools.count().__next__)

    def __post_init__(self) -> None:
        if self.l_root is None:
            self.l_root = self
        if self.w_root is None:
            self.w_root = self

    @property
    def is_input(self) -> bool:
        return self.kind == INPUT_KIND

    @property
    def depth_in_linear_forest(self) -> int:
        return len(self.provenance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaseNode({self.fact!r}, kind={self.kind}, step={self.step})"


def input_node(fact: Fact, step: int = 0) -> ChaseNode:
    """Create a chase node for an extensional (database) fact."""
    return ChaseNode(fact=fact, kind=INPUT_KIND, step=step)


def derived_node(
    fact: Fact,
    kind: RuleKind,
    rule_label: str,
    parents: Sequence[ChaseNode],
    ward_parent: Optional[ChaseNode],
    step: int,
) -> ChaseNode:
    """Create a chase node for a derived fact, wiring the forest metadata.

    * linear rules: the single parent is both the linear and the warded parent;
      the new node inherits ``l_root``, ``w_root`` and extends the provenance;
    * warded rules: the ward parent is the warded-forest parent (the node
      inherits its ``w_root``) while the node starts a new linear-forest tree;
    * other non-linear rules: the node roots new trees in both forests.
    """
    parents = tuple(parents)
    if kind is RuleKind.LINEAR:
        parent = parents[0]
        return ChaseNode(
            fact=fact,
            kind=kind,
            rule_label=rule_label,
            parents=parents,
            linear_parent=parent,
            warded_parent=parent,
            l_root=parent.l_root,
            w_root=parent.w_root,
            provenance=parent.provenance + (rule_label,),
            step=step,
        )
    if kind is RuleKind.WARDED and ward_parent is not None:
        return ChaseNode(
            fact=fact,
            kind=kind,
            rule_label=rule_label,
            parents=parents,
            linear_parent=None,
            warded_parent=ward_parent,
            l_root=None,
            w_root=ward_parent.w_root,
            provenance=EMPTY_PROVENANCE,
            step=step,
        )
    return ChaseNode(
        fact=fact,
        kind=kind,
        rule_label=rule_label,
        parents=parents,
        linear_parent=None,
        warded_parent=None,
        l_root=None,
        w_root=None,
        provenance=EMPTY_PROVENANCE,
        step=step,
    )


class Forest:
    """A forest over chase nodes defined by a parent-selection function."""

    def __init__(self, nodes: Iterable[ChaseNode], parent_of) -> None:
        self._nodes: List[ChaseNode] = list(nodes)
        self._parent_of = parent_of
        self._children: Dict[int, List[ChaseNode]] = {}
        for node in self._nodes:
            parent = parent_of(node)
            if parent is not None:
                self._children.setdefault(parent.ident, []).append(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Tuple[ChaseNode, ...]:
        return tuple(self._nodes)

    def roots(self) -> List[ChaseNode]:
        return [n for n in self._nodes if self._parent_of(n) is None]

    def children(self, node: ChaseNode) -> Sequence[ChaseNode]:
        return self._children.get(node.ident, ())

    def subtree(self, node: ChaseNode) -> List[ChaseNode]:
        """Nodes of the subtree rooted in ``node`` (pre-order)."""
        result: List[ChaseNode] = []
        stack = [node]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self.children(current)))
        return result

    def depth(self, node: ChaseNode) -> int:
        depth = 0
        current = self._parent_of(node)
        while current is not None:
            depth += 1
            current = self._parent_of(current)
        return depth

    def max_depth(self) -> int:
        return max((self.depth(n) for n in self._nodes), default=0)

    def tree_sizes(self) -> Dict[int, int]:
        """Size of each tree keyed by root identifier."""
        sizes: Dict[int, int] = {}
        for root in self.roots():
            sizes[root.ident] = len(self.subtree(root))
        return sizes

    def subtree_signature(self, node: ChaseNode, key=isomorphism_key) -> Hashable:
        """A canonical signature of the subtree rooted in ``node``.

        Two subtrees with equal signatures are isomorphic in the sense of the
        paper (node-wise fact isomorphism plus coinciding edge structure by
        generating rule).  Children are sorted by signature so the result does
        not depend on insertion order.
        """
        child_signatures = tuple(
            sorted(
                (self.subtree_signature(child, key), child.rule_label)
                for child in self.children(node)
            )
        )
        return (key(node.fact), child_signatures)


class WardedForest(Forest):
    """The warded forest of a chase graph (Section 3.1)."""

    def __init__(self, nodes: Iterable[ChaseNode]) -> None:
        super().__init__(nodes, lambda n: n.warded_parent)


class LinearForest(Forest):
    """The linear forest of a chase graph (Section 3.3)."""

    def __init__(self, nodes: Iterable[ChaseNode]) -> None:
        super().__init__(nodes, lambda n: n.linear_parent)


class LiftedLinearForest:
    """The lifted linear forest: linear-forest trees grouped by root pattern.

    Each equivalence class (keyed by the pattern of the root fact) stores the
    set of distinct *provenance paths* observed in the class — the compact
    representation used by the summary structure of Algorithm 1.
    """

    def __init__(self, linear_forest: LinearForest) -> None:
        self._classes: Dict[Hashable, Set[Provenance]] = {}
        self._members: Dict[Hashable, List[ChaseNode]] = {}
        for node in linear_forest.nodes():
            root_pattern = pattern_key(node.l_root.fact)
            self._classes.setdefault(root_pattern, set()).add(node.provenance)
            self._members.setdefault(root_pattern, []).append(node)

    def __len__(self) -> int:
        return len(self._classes)

    def class_keys(self) -> Tuple[Hashable, ...]:
        return tuple(self._classes)

    def paths(self, class_key: Hashable) -> Set[Provenance]:
        return set(self._classes.get(class_key, set()))

    def members(self, class_key: Hashable) -> Sequence[ChaseNode]:
        return self._members.get(class_key, ())

    def compression_ratio(self, linear_forest: LinearForest) -> float:
        """#linear-forest trees per lifted class (≥ 1; higher = more sharing)."""
        roots = len(linear_forest.roots())
        return roots / len(self._classes) if self._classes else 1.0
