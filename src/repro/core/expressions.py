"""Typed expression language for rule bodies (Section 5, "Expressions").

Vadalog supports expressions in rule bodies with two purposes:

1. as the left-hand side of a *condition* — a comparison
   (``>``, ``<``, ``>=``, ``<=``, ``==``, ``!=``) between an expression and a
   body variable or another expression;
2. as the left-hand side of an *assignment*, which defines the value of an
   (existentially quantified) head variable.

Expressions are built from terms and combined with type-related operators:
algebraic (``+ - * / %`` and exponentiation), string operators
(``startswith``, ``substring``, ``indexof``, ``concat``, ``lower``,
``upper``), boolean connectives and type-conversion functions.

Evaluation happens against a *binding*, a mapping from variables to ground
terms (constants or nulls).  Operations on labelled nulls raise
:class:`ExpressionError` except for (in)equality comparisons, mirroring the
system's behaviour that nulls carry no value semantics.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Sequence, Tuple

from .terms import Constant, Null, Term, Variable


class ExpressionError(Exception):
    """Raised when an expression cannot be evaluated for a given binding."""


Binding = Mapping[Variable, Term]


class Expression:
    """Abstract base class for expressions."""

    __slots__ = ()

    def evaluate(self, binding: Binding) -> Any:
        """Evaluate to a plain Python value under ``binding``."""
        raise NotImplementedError

    def variables(self) -> Tuple[Variable, ...]:
        """Variables referenced by the expression, without duplicates."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Literal(Expression):
    """A literal constant value."""

    value: Any

    def evaluate(self, binding: Binding) -> Any:
        return self.value

    def variables(self) -> Tuple[Variable, ...]:
        return ()

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True, slots=True)
class VariableRef(Expression):
    """A reference to a body variable."""

    variable: Variable

    def evaluate(self, binding: Binding) -> Any:
        term = binding.get(self.variable)
        if term is None:
            raise ExpressionError(f"unbound variable {self.variable.name}")
        if isinstance(term, Constant):
            return term.value
        if isinstance(term, Null):
            return term
        raise ExpressionError(
            f"variable {self.variable.name} bound to non-ground term {term}"
        )

    def variables(self) -> Tuple[Variable, ...]:
        return (self.variable,)

    def __str__(self) -> str:
        return self.variable.name


def _require_value(value: Any, context: str) -> Any:
    if isinstance(value, Null):
        raise ExpressionError(f"labelled null used in {context}")
    return value


def _checked_div(left: Any, right: Any) -> Any:
    if right == 0:
        raise ExpressionError("division by zero")
    return left / right


_BINARY_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _checked_div,
    "%": operator.mod,
    "**": operator.pow,
    "&": lambda a, b: bool(a) and bool(b),
    "|": lambda a, b: bool(a) or bool(b),
    "concat": lambda a, b: str(a) + str(b),
    "startswith": lambda a, b: str(a).startswith(str(b)),
    "endswith": lambda a, b: str(a).endswith(str(b)),
    "contains": lambda a, b: str(b) in str(a),
    "indexof": lambda a, b: str(a).find(str(b)),
    "min": min,
    "max": max,
}

_UNARY_OPS: Dict[str, Callable[[Any], Any]] = {
    "-": operator.neg,
    "not": lambda a: not bool(a),
    "abs": abs,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "lower": lambda a: str(a).lower(),
    "upper": lambda a: str(a).upper(),
    "length": lambda a: len(str(a)),
    "toString": str,
    "toInt": int,
    "toFloat": float,
    "toBoolean": bool,
}


@dataclass(frozen=True, slots=True)
class UnaryOp(Expression):
    """Application of a unary operator to a sub-expression."""

    op: str
    operand: Expression

    def evaluate(self, binding: Binding) -> Any:
        func = _UNARY_OPS.get(self.op)
        if func is None:
            raise ExpressionError(f"unknown unary operator {self.op!r}")
        value = _require_value(self.operand.evaluate(binding), f"operator {self.op}")
        try:
            return func(value)
        except ExpressionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surface as typed error
            raise ExpressionError(f"cannot apply {self.op} to {value!r}: {exc}") from exc

    def variables(self) -> Tuple[Variable, ...]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True, slots=True)
class BinaryOp(Expression):
    """Application of a binary operator to two sub-expressions."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, binding: Binding) -> Any:
        func = _BINARY_OPS.get(self.op)
        if func is None:
            raise ExpressionError(f"unknown binary operator {self.op!r}")
        left = _require_value(self.left.evaluate(binding), f"operator {self.op}")
        right = _require_value(self.right.evaluate(binding), f"operator {self.op}")
        try:
            return func(left, right)
        except ExpressionError:
            raise
        except Exception as exc:  # noqa: BLE001 - surface as typed error
            raise ExpressionError(
                f"cannot apply {self.op} to {left!r}, {right!r}: {exc}"
            ) from exc

    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for variable in self.left.variables() + self.right.variables():
            seen.setdefault(variable, None)
        return tuple(seen)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    """A call to a named n-ary function (e.g. a type conversion or Skolem)."""

    name: str
    arguments: Tuple[Expression, ...]

    def evaluate(self, binding: Binding) -> Any:
        values = [arg.evaluate(binding) for arg in self.arguments]
        if self.name in _UNARY_OPS and len(values) == 1:
            return _UNARY_OPS[self.name](_require_value(values[0], self.name))
        if self.name in _BINARY_OPS and len(values) == 2:
            return _BINARY_OPS[self.name](
                _require_value(values[0], self.name),
                _require_value(values[1], self.name),
            )
        raise ExpressionError(f"unknown function {self.name}/{len(values)}")

    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for arg in self.arguments:
            for variable in arg.variables():
                seen.setdefault(variable, None)
        return tuple(seen)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.arguments)
        return f"{self.name}({inner})"


def literal(value: Any) -> Literal:
    """Shorthand constructor for a literal expression."""
    return Literal(value)


def var(name: str) -> VariableRef:
    """Shorthand constructor for a variable reference expression."""
    return VariableRef(Variable(name))


def term_expression(term: Term) -> Expression:
    """Wrap a term as an expression (constants → literals, variables → refs)."""
    if isinstance(term, Variable):
        return VariableRef(term)
    if isinstance(term, Constant):
        return Literal(term.value)
    raise ExpressionError("labelled nulls cannot appear in source expressions")


def evaluate_all(expressions: Sequence[Expression], binding: Binding) -> Tuple[Any, ...]:
    """Evaluate a sequence of expressions under the same binding."""
    return tuple(e.evaluate(binding) for e in expressions)
