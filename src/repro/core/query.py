"""Queries, answers and post-processing (Sections 2.1 and 5).

Given a program Σ and a set of answer predicates ``Ans``, the evaluation of
the query over a database D is ``Q(D) = { t | Ans(t) ∈ Σ(D) }``.  The
*reasoning task* asks for the universal answer — an instance homomorphic to
every other answer.  This module extracts answers from a
:class:`~repro.core.chase.ChaseResult` and applies the post-processing
directives of Section 5:

* dropping facts with labelled nulls yields the **certain answer**;
* reducing monotonic aggregates to their **final value** per group;
* sorting by selected attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from .aggregates import is_increasing
from .atoms import Fact
from .chase import ChaseResult
from .isomorphism import deduplicate_isomorphic
from .terms import Constant, Null


@dataclass(frozen=True)
class Query:
    """A reasoning query: the answer predicates plus post-processing options."""

    answer_predicates: Tuple[str, ...]
    certain: bool = False
    reduce_aggregates: bool = True
    order_by: Tuple[int, ...] = ()
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "answer_predicates", tuple(self.answer_predicates))
        object.__setattr__(self, "order_by", tuple(self.order_by))


@dataclass
class AnswerSet:
    """Answers of a reasoning task, grouped by predicate."""

    facts_by_predicate: Dict[str, List[Fact]] = field(default_factory=dict)

    def facts(self, predicate: Optional[str] = None) -> Tuple[Fact, ...]:
        if predicate is not None:
            return tuple(self.facts_by_predicate.get(predicate, ()))
        result: List[Fact] = []
        for facts in self.facts_by_predicate.values():
            result.extend(facts)
        return tuple(result)

    def tuples(self, predicate: str) -> Set[Tuple[object, ...]]:
        """Ground value tuples of a predicate (nulls rendered as ``Null`` objects)."""
        return {fact.values() for fact in self.facts_by_predicate.get(predicate, ())}

    def ground_tuples(self, predicate: str) -> Set[Tuple[object, ...]]:
        """Value tuples of null-free facts only (the certain answer)."""
        return {
            fact.values()
            for fact in self.facts_by_predicate.get(predicate, ())
            if not fact.has_nulls
        }

    def count(self, predicate: Optional[str] = None) -> int:
        return len(self.facts(predicate))

    def __len__(self) -> int:
        return self.count()


def _final_aggregate_facts(
    facts: Sequence[Fact], aggregated_positions: Dict[int, str]
) -> List[Fact]:
    """Keep only the final aggregate value per group.

    ``aggregated_positions`` maps a position index of the predicate to the
    aggregation function computing it.  The group is identified by all other
    positions.  Numeric aggregates reduce to the extreme value
    (max for increasing, min for decreasing functions); set aggregates
    (``munion``) reduce to the **union** of every observed value — several
    rules deriving the same predicate produce independent accumulation
    chains whose running sets are mutually incomparable, and the monotonic
    fixpoint joins them all, independently of the order in which the chase
    (or the streaming pipeline) enumerated the contributions.
    """
    if not aggregated_positions:
        return list(facts)
    representative: Dict[Hashable, Fact] = {}
    merged: Dict[Hashable, Dict[int, object]] = {}
    order: List[Hashable] = []
    for fact in facts:
        group_key = tuple(
            term for index, term in enumerate(fact.terms) if index not in aggregated_positions
        )
        current = merged.get(group_key)
        if current is None:
            representative[group_key] = fact
            merged[group_key] = {
                index: fact.terms[index]
                for index in aggregated_positions
                if index < fact.arity
            }
            order.append(group_key)
            continue
        for index, function in aggregated_positions.items():
            if index >= fact.arity:
                continue
            new_term = fact.terms[index]
            old_term = current.get(index, new_term)
            if isinstance(new_term, Null) or isinstance(old_term, Null):
                continue
            new_value = new_term.value if isinstance(new_term, Constant) else new_term
            old_value = old_term.value if isinstance(old_term, Constant) else old_term
            if isinstance(new_value, frozenset) and isinstance(old_value, frozenset):
                if not new_value <= old_value:
                    current[index] = Constant(old_value | new_value)
            elif is_increasing(function):
                try:
                    if new_value > old_value:
                        current[index] = new_term
                except TypeError:
                    continue
            else:
                try:
                    if new_value < old_value:
                        current[index] = new_term
                except TypeError:
                    continue
    result: List[Fact] = []
    for group_key in order:
        fact = representative[group_key]
        values = merged[group_key]
        if all(values[index] is fact.terms[index] for index in values):
            result.append(fact)
        else:
            terms = list(fact.terms)
            for index, term in values.items():
                terms[index] = term
            result.append(Fact(fact.predicate, terms))
    return result


def extract_answers(result: ChaseResult, query: Query) -> AnswerSet:
    """Extract (and post-process) the answers of a chase run."""
    answers = AnswerSet()
    aggregated = result.aggregates.aggregated_positions()
    for predicate in query.answer_predicates:
        facts = list(result.store.by_predicate(predicate))
        facts = deduplicate_isomorphic(facts)
        if query.reduce_aggregates:
            positions = {
                index: function
                for (pred, index), function in aggregated.items()
                if pred == predicate
            }
            facts = _final_aggregate_facts(facts, positions)
        if query.certain:
            facts = [f for f in facts if not f.has_nulls]
        if query.order_by:
            facts.sort(key=lambda f: tuple(str(f.terms[i]) for i in query.order_by if i < f.arity))
        if query.limit is not None:
            facts = facts[: query.limit]
        answers.facts_by_predicate[predicate] = facts
    return answers


def universal_answer(result: ChaseResult, predicates: Iterable[str]) -> AnswerSet:
    """The universal answer: all facts of the answer predicates (nulls kept)."""
    return extract_answers(result, Query(tuple(predicates), certain=False))


def certain_answer(result: ChaseResult, predicates: Iterable[str]) -> AnswerSet:
    """The certain answer: facts of the answer predicates without nulls."""
    return extract_answers(result, Query(tuple(predicates), certain=True))
