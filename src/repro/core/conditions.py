"""Body conditions and head assignments of Vadalog rules.

A rule body may contain, besides relational atoms:

* **comparisons** between expressions (``w > 0.5``, ``x != y`` …);
* **assignments** that compute a value for a head variable from body
  variables (``v = w * 2``);
* **monotonic aggregations** (``v = msum(w, <y>)``), which are a special
  kind of assignment evaluated statefully by the engine
  (:mod:`repro.core.aggregates`).

Comparisons involving labelled nulls follow the system semantics: equality
and inequality are decided by null identity, every ordering comparison with
a null evaluates to false (a null has no value to compare).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Tuple

from .expressions import Binding, Expression, ExpressionError
from .terms import Constant, Null, Term, Variable

_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "=": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_EQUALITY_OPS = {"==", "=", "!=", "<>"}


class ConditionError(Exception):
    """Raised when a condition is malformed (unknown operator, etc.)."""


@dataclass(frozen=True, slots=True)
class Comparison:
    """A comparison condition ``left <op> right`` between two expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ConditionError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for variable in self.left.variables() + self.right.variables():
            seen.setdefault(variable, None)
        return tuple(seen)

    def holds(self, binding: Binding) -> bool:
        """Evaluate the comparison under ``binding``.

        Ordering comparisons on labelled nulls (or on unbound/failed
        expressions) evaluate to ``False`` rather than raising, so that the
        chase simply does not fire the rule for that match.
        """
        try:
            left = self.left.evaluate(binding)
            right = self.right.evaluate(binding)
        except ExpressionError:
            return False
        involves_null = isinstance(left, Null) or isinstance(right, Null)
        if involves_null and self.op not in _EQUALITY_OPS:
            return False
        try:
            return bool(_COMPARATORS[self.op](left, right))
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class Assignment:
    """An assignment ``variable = expression`` computed from body bindings.

    The assigned variable behaves like an existentially quantified head
    variable whose value is fully determined by the expression (Section 5).
    """

    variable: Variable
    expression: Expression

    def variables(self) -> Tuple[Variable, ...]:
        return self.expression.variables()

    def compute(self, binding: Binding) -> Term:
        """Compute the assigned term (a constant) for a body binding."""
        value = self.expression.evaluate(binding)
        if isinstance(value, Null):
            return value
        return Constant(value)

    def __str__(self) -> str:
        return f"{self.variable.name} = {self.expression}"


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """A monotonic-aggregation assignment ``z = maggr(x, <contributors>)``.

    ``function`` is one of ``msum``, ``mprod``, ``mcount``, ``mmin``,
    ``mmax``, ``munion``.  ``argument`` is the aggregated expression, and
    ``contributors`` is the (possibly empty) tuple of contributor variables
    that define the sub-grouping/windowing described in Section 5.  The
    group-by arguments are not stored here: they are derived by the rule as
    the head variables shared with the body.
    """

    variable: Variable
    function: str
    argument: Expression
    contributors: Tuple[Variable, ...] = ()

    SUPPORTED = ("msum", "mprod", "mcount", "mmin", "mmax", "munion")

    def __post_init__(self) -> None:
        if self.function not in self.SUPPORTED:
            raise ConditionError(
                f"unknown monotonic aggregation {self.function!r}; "
                f"supported: {', '.join(self.SUPPORTED)}"
            )

    def variables(self) -> Tuple[Variable, ...]:
        seen: Dict[Variable, None] = {}
        for variable in self.argument.variables():
            seen.setdefault(variable, None)
        for variable in self.contributors:
            seen.setdefault(variable, None)
        return tuple(seen)

    def __str__(self) -> str:
        contributors = ", ".join(v.name for v in self.contributors)
        inner = f"{self.argument}"
        if contributors:
            inner += f", <{contributors}>"
        return f"{self.variable.name} = {self.function}({inner})"


def comparison_between_terms(op: str, left: Term, right: Term) -> Comparison:
    """Build a comparison condition from two raw terms (used by the parser)."""
    from .expressions import term_expression

    return Comparison(op, term_expression(left), term_expression(right))


def binding_from_terms(mapping: Mapping[Variable, Term]) -> Binding:
    """Identity helper that documents the binding type used by conditions."""
    return mapping
