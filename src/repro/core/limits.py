"""Execution budgets, cooperative cancellation and the run governor.

Vadalog is deployed as a long-lived reasoning service (Section 5 of the
paper); in that setting a pathological program must *end* — with whatever
sound partial materialisation exists — rather than take the process down.
This module defines the resource-governance vocabulary shared by every
executor:

* :class:`ExecutionBudget` — declarative per-run ceilings: a wall-clock
  deadline, a cap on derived (intensional) facts, a cap on chase rounds and
  a peak-resident-facts ceiling;
* :class:`CancellationToken` — a thread-safe cooperative cancellation
  handle the caller can trip from another thread;
* :class:`ExecutionGovernor` — the per-run object the chase loop, the
  streaming pull scheduler and the parallel admit phase consult.  Round
  boundaries call :meth:`ExecutionGovernor.round_status` (all budget axes);
  hot inner loops call the strided :meth:`ExecutionGovernor.tick`, which
  only pays for a clock read every ``TICK_STRIDE`` calls and raises
  :class:`ExecutionStopped` when the deadline has passed or the token was
  cancelled.

Because the chase is monotone, stopping early is always *sound*: the facts
admitted so far are a subset of the full materialisation, so partial
results can be surfaced with a structured status instead of an exception.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional, Tuple

# Structured run statuses surfaced on ChaseResult / ReasoningResult.
STATUS_COMPLETE = "complete"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_BUDGET = "budget_exceeded"
STATUS_CANCELLED = "cancelled"

RUN_STATUSES = (STATUS_COMPLETE, STATUS_DEADLINE, STATUS_BUDGET, STATUS_CANCELLED)


@dataclass(frozen=True)
class ExecutionBudget:
    """Per-run resource ceilings; ``None`` on an axis means unlimited.

    ``max_derived_facts`` counts intensional derivations (chase steps), so a
    large extensional database does not consume the budget just by loading.
    ``max_resident_facts`` bounds the total store size (extensional +
    intensional) — groundwork for bounded-memory execution.
    """

    deadline_seconds: Optional[float] = None
    max_derived_facts: Optional[int] = None
    max_rounds: Optional[int] = None
    max_resident_facts: Optional[int] = None

    def is_unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_derived_facts is None
            and self.max_rounds is None
            and self.max_resident_facts is None
        )


class CancellationToken:
    """Thread-safe cooperative cancellation handle.

    The caller keeps a reference and calls :meth:`cancel` (typically from
    another thread, a signal handler or a service control plane); the run
    observes it at the next governed checkpoint and ends with status
    ``"cancelled"`` and the partial results admitted so far.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        if reason is not None and self._reason is None:
            self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> Optional[str]:
        return self._reason


class ExecutionStopped(Exception):
    """Internal control-flow signal: the governor ended the run early.

    Raised from inner-loop ticks, caught at the executor's run boundary and
    converted into a structured status + partial result.  It must never
    escape the public API.
    """

    def __init__(self, status: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


class ExecutionGovernor:
    """Per-run budget/cancellation monitor shared by all executors.

    One governor is created per ``run()`` (never reused), so the deadline
    clock starts when execution actually starts.  ``tick()`` is designed
    for hot loops: it increments a counter and only consults the clock and
    the token every :data:`TICK_STRIDE` calls.
    """

    TICK_STRIDE = 1024

    def __init__(
        self,
        budget: Optional[ExecutionBudget] = None,
        cancel: Optional[CancellationToken] = None,
    ) -> None:
        self.budget = budget if budget is not None else ExecutionBudget()
        self.cancel = cancel
        self.started_at = time.perf_counter()
        self._deadline_at: Optional[float] = None
        if self.budget.deadline_seconds is not None:
            self._deadline_at = self.started_at + self.budget.deadline_seconds
        self._ticks = 0
        #: Precomputed: does any per-fact (non-clock) budget axis apply?
        self.has_fact_limits = (
            self.budget.max_derived_facts is not None
            or self.budget.max_resident_facts is not None
        )
        #: Optional :class:`repro.obs.Tracer` (duck-typed, set by the owning
        #: executor after construction): every stop decision is recorded as
        #: an instant ``governor-stop`` span plus a ``governor.stops`` counter.
        self.tracer = None

    def _stopped(self, status: Tuple[str, str]) -> Tuple[str, str]:
        """Record a stop decision on the active tracer (if any) and pass it on."""
        tracer = self.tracer
        if tracer is not None:
            now = time.perf_counter()
            tracer.emit(
                "governor-stop",
                f"stop:{status[0]}",
                now,
                now,
                attrs={"status": status[0], "detail": status[1]},
            )
            tracer.metrics.counter("governor.stops").inc()
        return status

    @classmethod
    def for_config(cls, config: object) -> Optional["ExecutionGovernor"]:
        """Build a governor from a chase config, or ``None`` if ungoverned.

        Returning ``None`` keeps the default (no budget, no token) path
        completely free of per-match overhead.
        """
        budget: Optional[ExecutionBudget] = getattr(config, "budget", None)
        cancel: Optional[CancellationToken] = getattr(config, "cancel", None)
        if cancel is None and (budget is None or budget.is_unlimited()):
            return None
        return cls(budget, cancel)

    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    # ------------------------------------------------------------------ checks
    def interrupt_status(self) -> Optional[Tuple[str, str]]:
        """Cheap checks that are valid at any point: cancellation + deadline."""
        token = self.cancel
        if token is not None and token.cancelled:
            reason = token.reason or "cancelled by caller"
            return self._stopped((STATUS_CANCELLED, reason))
        if self._deadline_at is not None and time.perf_counter() >= self._deadline_at:
            return self._stopped(
                (
                    STATUS_DEADLINE,
                    f"deadline of {self.budget.deadline_seconds:.3f}s exceeded "
                    f"after {self.elapsed():.3f}s",
                )
            )
        return None

    def round_status(
        self, rounds: int, resident_facts: int, derived_facts: int
    ) -> Optional[Tuple[str, str]]:
        """Full budget check at a round/sweep boundary.

        ``rounds`` is the number of *completed* rounds; the caller asks
        before starting the next one.
        """
        status = self.interrupt_status()
        if status is not None:
            return status
        budget = self.budget
        if budget.max_rounds is not None and rounds >= budget.max_rounds:
            return self._stopped(
                (
                    STATUS_BUDGET,
                    f"round budget of {budget.max_rounds} chase rounds exhausted",
                )
            )
        if (
            budget.max_derived_facts is not None
            and derived_facts >= budget.max_derived_facts
        ):
            return self._stopped(
                (
                    STATUS_BUDGET,
                    f"derived-fact budget of {budget.max_derived_facts} exhausted "
                    f"({derived_facts} facts derived)",
                )
            )
        if (
            budget.max_resident_facts is not None
            and resident_facts > budget.max_resident_facts
        ):
            return self._stopped(
                (
                    STATUS_BUDGET,
                    f"resident-fact ceiling of {budget.max_resident_facts} exceeded "
                    f"({resident_facts} facts resident)",
                )
            )
        return None

    def admission_status(
        self, resident_facts: int, derived_facts: int
    ) -> Optional[Tuple[str, str]]:
        """Per-fact-admission budget check (integer compares only).

        Used by executors whose "round" can admit many facts before the next
        boundary (the streaming pipeline's sweeps): the fact-count axes are
        enforced as facts are admitted, without paying for a clock read.
        """
        budget = self.budget
        if (
            budget.max_derived_facts is not None
            and derived_facts >= budget.max_derived_facts
        ):
            return self._stopped(
                (
                    STATUS_BUDGET,
                    f"derived-fact budget of {budget.max_derived_facts} exhausted "
                    f"({derived_facts} facts derived)",
                )
            )
        if (
            budget.max_resident_facts is not None
            and resident_facts > budget.max_resident_facts
        ):
            return self._stopped(
                (
                    STATUS_BUDGET,
                    f"resident-fact ceiling of {budget.max_resident_facts} exceeded "
                    f"({resident_facts} facts resident)",
                )
            )
        return None

    def tick(self) -> None:
        """Strided inner-loop checkpoint; raises :class:`ExecutionStopped`.

        Safe to call once per join match / per pull: only every
        ``TICK_STRIDE``-th call consults the clock and the token.
        """
        self._ticks += 1
        if self._ticks % self.TICK_STRIDE:
            return
        status = self.interrupt_status()
        if status is not None:
            raise ExecutionStopped(*status)

    def check_now(self) -> None:
        """Unstrided checkpoint; raises :class:`ExecutionStopped`."""
        status = self.interrupt_status()
        if status is not None:
            raise ExecutionStopped(*status)
