"""Skolem functions (Section 5, "Skolem Functions").

Vadalog Skolem functions compute the identity of labelled nulls: they are
*deterministic* (the same arguments always yield the same labelled null),
*injective* and *range disjoint* (two distinct functions never produce the
same null).  They are used

* by users, through the ``#f(x, y)`` surface syntax, to control null
  identity;
* internally, by the harmful-join elimination algorithm (Section 3.2) and by
  the Skolem-chase baseline, to represent existential witnesses symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from .terms import Constant, Null, NullFactory, Term


@dataclass(frozen=True, slots=True)
class SkolemTerm:
    """A symbolic Skolem term ``f(a1, ..., an)`` over ground arguments.

    Skolem terms are values (hashable, compare by function name and
    arguments) so they can be nested: an argument may itself be a
    :class:`SkolemTerm`, which is how the harmful-join elimination detects the
    "recursive application" simplification case (1c).
    """

    function: str
    arguments: Tuple[Hashable, ...]

    def depth(self) -> int:
        """Nesting depth of Skolem terms (a flat term has depth 1)."""
        inner = [a.depth() for a in self.arguments if isinstance(a, SkolemTerm)]
        return 1 + (max(inner) if inner else 0)

    def uses_function(self, name: str) -> bool:
        """True when ``name`` occurs anywhere in this term (including nested)."""
        if self.function == name:
            return True
        return any(
            isinstance(a, SkolemTerm) and a.uses_function(name) for a in self.arguments
        )

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.arguments)
        return f"#{self.function}({inner})"


class SkolemFactory:
    """Maps Skolem terms to labelled nulls, enforcing the system guarantees.

    * **Deterministic**: repeated invocations with the same function and
      arguments return the same :class:`~repro.core.terms.Null`.
    * **Injective**: different arguments yield different nulls.
    * **Range disjoint**: different function names never share a null
      (guaranteed because the cache key includes the function name and every
      null is freshly drawn from the shared :class:`NullFactory`).
    """

    def __init__(self, null_factory: NullFactory | None = None) -> None:
        self._null_factory = null_factory or NullFactory()
        self._cache: Dict[SkolemTerm, Null] = {}

    def __len__(self) -> int:
        return len(self._cache)

    def null_for(self, function: str, arguments: Tuple[Hashable, ...]) -> Null:
        """Return the labelled null denoted by ``#function(arguments)``."""
        term = SkolemTerm(function, tuple(arguments))
        null = self._cache.get(term)
        if null is None:
            null = self._null_factory.fresh()
            self._cache[term] = null
        return null

    def null_for_terms(self, function: str, arguments: Tuple[Term, ...]) -> Null:
        """As :meth:`null_for` but accepting ground terms as arguments."""
        key = tuple(self._argument_key(a) for a in arguments)
        return self.null_for(function, key)

    @staticmethod
    def _argument_key(term: Term) -> Hashable:
        if isinstance(term, Constant):
            return ("c", term.value)
        if isinstance(term, Null):
            return ("n", term.ident)
        raise TypeError("Skolem arguments must be ground terms")

    def term_for(self, null: Null) -> SkolemTerm | None:
        """Inverse lookup: the Skolem term a null was generated from, if any."""
        for term, candidate in self._cache.items():
            if candidate == null:
                return term
        return None


def skolem_name(rule_label: str, variable_name: str) -> str:
    """Conventional Skolem-function name for rule ``β`` and existential ``z``.

    Matches the paper's ``f_β`` notation, refined with the variable name so
    that rules with several existentials get distinct (range-disjoint)
    functions.
    """
    return f"f_{rule_label}_{variable_name}"
