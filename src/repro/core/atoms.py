"""Predicates, atoms and facts.

An *atom* over a schema is an expression ``R(t1, ..., tn)`` where ``R`` is a
predicate of arity ``n`` and each ``ti`` is a term (Section 2.1 of the
paper).  A *fact* is a ground atom, i.e. an atom whose terms are constants
or labelled nulls.  The paper (and this code base) uses atom/tuple/fact
interchangeably for ground atoms.

Facts additionally carry the chase metadata required by the termination
strategy of Section 3.4 (generating-rule kind, linear-forest root, warded-
forest root and linear provenance); that metadata lives in
:class:`repro.core.chase.ChaseFact` to keep this module purely about the
logical objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from .terms import (
    Constant,
    Null,
    Substitution,
    Term,
    Variable,
    apply_substitution,
    make_term,
)


@dataclass(frozen=True, slots=True)
class Predicate:
    """A relation symbol with an associated arity."""

    name: str
    arity: int

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


@dataclass(frozen=True, slots=True)
class Position:
    """A predicate position ``p[i]`` (Section 2.1, wardedness analysis)."""

    predicate: str
    index: int

    def __str__(self) -> str:
        return f"{self.predicate}[{self.index}]"


class Atom:
    """An atom ``R(t1, ..., tn)`` over constants, nulls and variables."""

    __slots__ = ("predicate", "terms", "_hash")

    def __init__(self, predicate: str, terms: Sequence[Term | object]) -> None:
        self.predicate = predicate
        self.terms: Tuple[Term, ...] = tuple(make_term(t) for t in terms)
        self._hash = hash((self.predicate, self.terms))

    # -- basic protocol ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({inner})"

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    # -- inspection --------------------------------------------------------
    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def signature(self) -> Predicate:
        return Predicate(self.predicate, self.arity)

    def variables(self) -> Tuple[Variable, ...]:
        """Variables of the atom, in order of first appearance, without duplicates."""
        seen: Dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen[term] = None
        return tuple(seen)

    def constants(self) -> Tuple[Constant, ...]:
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def nulls(self) -> Tuple[Null, ...]:
        return tuple(t for t in self.terms if isinstance(t, Null))

    def is_ground(self) -> bool:
        """True when the atom contains no variables (it is a fact)."""
        return all(not isinstance(t, Variable) for t in self.terms)

    def positions(self) -> Tuple[Position, ...]:
        return tuple(Position(self.predicate, i) for i in range(self.arity))

    def positions_of(self, variable: Variable) -> Tuple[Position, ...]:
        """All positions of this atom at which ``variable`` occurs."""
        return tuple(
            Position(self.predicate, i)
            for i, term in enumerate(self.terms)
            if term == variable
        )

    # -- transformation ----------------------------------------------------
    def substitute(self, substitution: Substitution) -> "Atom":
        """Apply a substitution, returning a new atom."""
        return Atom(
            self.predicate,
            tuple(apply_substitution(t, substitution) for t in self.terms),
        )

    def rename_predicate(self, new_name: str) -> "Atom":
        return Atom(new_name, self.terms)

    def match(self, fact: "Fact") -> Optional[Dict[Variable, Term]]:
        """Match this (possibly non-ground) atom against a ground fact.

        Returns the most general unifier restricted to this atom's variables,
        or ``None`` if the fact does not match (different predicate, arity, or
        conflicting bindings / mismatching ground terms).
        """
        if self.predicate != fact.predicate or self.arity != fact.arity:
            return None
        bindings: Dict[Variable, Term] = {}
        for pattern_term, fact_term in zip(self.terms, fact.terms):
            if isinstance(pattern_term, Variable):
                bound = bindings.get(pattern_term)
                if bound is None:
                    bindings[pattern_term] = fact_term
                elif bound != fact_term:
                    return None
            elif pattern_term != fact_term:
                return None
        return bindings


class Fact(Atom):
    """A ground atom: every term is a constant or a labelled null."""

    __slots__ = ()

    def __init__(self, predicate: str, terms: Sequence[Term | object]) -> None:
        super().__init__(predicate, terms)
        for term in self.terms:
            if isinstance(term, Variable):
                raise ValueError(
                    f"fact {predicate} contains variable {term.name}; facts must be ground"
                )

    @classmethod
    def from_ground(cls, predicate: str, terms: Tuple[Term, ...]) -> "Fact":
        """Hot-path constructor: ``terms`` must already be ground ``Term``s.

        Skips the per-term coercion and groundness validation of ``__init__``;
        used by the compiled executor, which instantiates heads from slot
        values that are ground by construction.
        """
        obj = cls.__new__(cls)
        obj.predicate = predicate
        obj.terms = terms
        obj._hash = hash((predicate, terms))
        return obj

    @property
    def has_nulls(self) -> bool:
        """True when the fact contains at least one labelled null."""
        return any(isinstance(t, Null) for t in self.terms)

    def values(self) -> Tuple[object, ...]:
        """Python values of the fact, with nulls rendered as ``Null`` objects."""
        return tuple(
            t.value if isinstance(t, Constant) else t for t in self.terms
        )


def fact(predicate: str, *values: object) -> Fact:
    """Convenience constructor: ``fact("Own", "a", "b", 0.6)``."""
    return Fact(predicate, values)


def atom(predicate: str, *terms: object) -> Atom:
    """Convenience constructor for atoms; strings are wrapped as constants.

    Use :class:`repro.core.terms.Variable` explicitly for variables, or use
    the parser for the full surface syntax.
    """
    return Atom(predicate, terms)


def group_by_predicate(facts: Iterable[Fact]) -> Dict[str, list]:
    """Group facts by predicate name (insertion ordered)."""
    grouped: Dict[str, list] = {}
    for f in facts:
        grouped.setdefault(f.predicate, []).append(f)
    return grouped
