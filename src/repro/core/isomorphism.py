"""Fact isomorphism and pattern-isomorphism (Sections 3.1 and 3.3).

Two facts are **isomorphic** when they have the same predicate name, the same
constants in the same positions, and there is a bijection between their
labelled nulls.  Two facts are **pattern-isomorphic** when they have the same
predicate name and there are bijections both between their constants and
between their labelled nulls — e.g. ``P(1, 2, ν1, ν2)`` is pattern-isomorphic
to ``P(3, 4, ν7, ν2)`` but not to ``P(5, 5, ν1, ν2)``.

Instead of performing pairwise checks, the module computes *canonical keys*:
facts are isomorphic iff their :func:`isomorphism_key` coincide, and
pattern-isomorphic iff their :func:`pattern_key` coincide.  This turns the
memorisation structures of Algorithm 1 into hash look-ups.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from .atoms import Fact
from .terms import Constant, Null, Term, Variable


def isomorphism_key(fact: Fact) -> Hashable:
    """Canonical key identifying facts up to bijective renaming of nulls.

    Constants are kept as-is (wrapped with a marker so a constant can never
    collide with a null index); nulls are replaced by the index of their first
    occurrence within the fact.
    """
    null_index: Dict[Null, int] = {}
    key: List[Hashable] = [fact.predicate]
    for term in fact.terms:
        if isinstance(term, Null):
            index = null_index.setdefault(term, len(null_index))
            key.append(("null", index))
        elif isinstance(term, Constant):
            key.append(("const", term.value))
        else:  # pragma: no cover - facts are ground by construction
            raise TypeError(f"fact contains a variable term: {term}")
    return tuple(key)


def pattern_key(fact: Fact) -> Hashable:
    """Canonical key identifying facts up to renaming of nulls *and* constants.

    This realises the equivalence classes of the lifted linear forest: both
    constants and nulls are replaced by first-occurrence indices, but constants
    and nulls remain distinguishable and repeated values keep their sharing
    structure (``P(5, 5)`` ≠ ``P(5, 6)`` as patterns).
    """
    null_index: Dict[Null, int] = {}
    const_index: Dict[object, int] = {}
    key: List[Hashable] = [fact.predicate]
    for term in fact.terms:
        if isinstance(term, Null):
            index = null_index.setdefault(term, len(null_index))
            key.append(("null", index))
        elif isinstance(term, Constant):
            index = const_index.setdefault(term.value, len(const_index))
            key.append(("const", index))
        else:  # pragma: no cover - facts are ground by construction
            raise TypeError(f"fact contains a variable term: {term}")
    return tuple(key)


def isomorphic(first: Fact, second: Fact) -> bool:
    """Decide fact isomorphism (same constants, bijection of nulls)."""
    if first.predicate != second.predicate or first.arity != second.arity:
        return False
    forward: Dict[Null, Null] = {}
    backward: Dict[Null, Null] = {}
    for left, right in zip(first.terms, second.terms):
        if isinstance(left, Constant) or isinstance(right, Constant):
            if left != right:
                return False
            continue
        if isinstance(left, Null) and isinstance(right, Null):
            mapped = forward.get(left)
            if mapped is None:
                if right in backward:
                    return False
                forward[left] = right
                backward[right] = left
            elif mapped != right:
                return False
            continue
        return False
    return True


def pattern_isomorphic(first: Fact, second: Fact) -> bool:
    """Decide pattern-isomorphism (bijection of constants and of nulls)."""
    return pattern_key(first) == pattern_key(second)


def canonical_pattern(fact: Fact) -> Fact:
    """A representative fact of the pattern-equivalence class of ``fact``.

    Constants are replaced by synthetic constants ``c0, c1, ...`` and nulls by
    nulls ``0, 1, ...`` following first occurrence, matching the paper's
    ``π`` mapping (Section 3.3).  Any representative would do; this one is
    deterministic and human-readable.
    """
    null_index: Dict[Null, int] = {}
    const_index: Dict[object, int] = {}
    terms: List[Term] = []
    for term in fact.terms:
        if isinstance(term, Null):
            index = null_index.setdefault(term, len(null_index))
            terms.append(Null(index))
        elif isinstance(term, Constant):
            index = const_index.setdefault(term.value, len(const_index))
            terms.append(Constant(f"c{index}"))
        else:  # pragma: no cover - facts are ground by construction
            raise TypeError(f"fact contains a variable term: {term}")
    return Fact(fact.predicate, terms)


def deduplicate_isomorphic(facts: Iterable[Fact]) -> List[Fact]:
    """Keep one representative per isomorphism class, preserving order."""
    seen: Dict[Hashable, None] = {}
    result: List[Fact] = []
    for fact in facts:
        key = isomorphism_key(fact)
        if key not in seen:
            seen[key] = None
            result.append(fact)
    return result


def atom_structure_key(predicate: str, terms: Tuple[Term, ...]) -> Hashable:
    """Pattern key for a (possibly non-ground) atom, used by rule rewritings.

    Variables are treated like nulls (renamed by first occurrence), which lets
    rewriting steps detect structurally identical rule atoms.
    """
    placeholder_index: Dict[Term, int] = {}
    const_index: Dict[object, int] = {}
    key: List[Hashable] = [predicate]
    for term in terms:
        if isinstance(term, Constant):
            index = const_index.setdefault(term.value, len(const_index))
            key.append(("const", index))
        elif isinstance(term, (Null, Variable)):
            index = placeholder_index.setdefault(term, len(placeholder_index))
            key.append(("ph", index))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected term {term!r}")
    return tuple(key)
