"""Query-driven magic-set rewriting, existential-safe for warded programs.

The paper's logic optimizer (Section 4) rewrites a program *before* it is
compiled; this module adds the classic query-driven rewriting missing from
the elementary passes of :mod:`repro.core.transform`: **magic sets** with
binding-pattern (adornment) propagation, in the spirit of the
streaming-architecture rewritings of Baldazzi et al. (arXiv:2311.12236).
Given a query atom such as ``Control("f0", Y)`` the rewriting

1. computes, per intensional predicate reachable from the query, the set of
   argument positions that arrive **bound** (one global adornment per
   predicate — when several occurrences demand different patterns the meet,
   i.e. the intersection of their bound positions, is used, which is always
   sound);
2. adds a **magic guard** ``_aux_magic_p_<adornment>(bound args)`` in front
   of every rule body defining a demanded predicate, so the rule only fires
   for bindings some consumer actually asked for;
3. derives the magic (demand) facts through **magic rules** following the
   textual sideways-information-passing order of each body, seeded by the
   ``_aux_magic_*`` **EDB facts** carrying the query constants;
4. drops every rule outside the backward slice of the query (the same
   relevance pruning the streaming pipeline applies per predicate —
   :func:`repro.engine.plan.backward_slice` — now shared by *all*
   executors, with the magic guards adding binding-level pruning on top).

Existential safety (Warded Datalog±)
------------------------------------

Plain magic sets are only correct for Datalog.  Under existential rules a
magic guard can cut derivations that certain answers depend on (a pruned
fact may be the ward-side witness that lets a later rule export a labelled
null), and a guard joined on a dangerous variable would destroy the ward.
The rewriting is made *existential-safe* by construction:

* an adornment position is only considered bound when it is an
  **unaffected** position (:func:`repro.core.wardedness.affected_positions`)
  — affected positions may host labelled nulls, so guards never constrain
  them and magic predicates provably contain ground constants only;
* sideways information passing only treats a variable as bound when it
  occurs at an unaffected position of an earlier body atom, which keeps
  every magic *rule* head ground as well;
* a rule **falls back to its unrewritten form** whenever a guard could cut
  its head or its ward: rules with existential quantification (guarding the
  linear rules produced by ``isolate_existentials`` would re-introduce
  joins around existentials, breaking the Algorithm-1 normal form) and
  multi-head rules are never guarded, and adornment positions where any
  defining rule carries a computed (assignment/aggregate) or non-harmless
  head term are weakened away for *all* rules of that predicate.  A
  fallback rule over-computes its predicate, which preserves every certain
  answer (the derived-fact set is monotone in the rule set);
* predicates scanned by negative constraints or EGDs (and everything they
  depend on) are demanded with the all-free adornment, i.e. computed in
  full, mirroring the hidden drain sinks of the streaming pipeline;
* programs using ``Dom`` active-domain guards are not rewritten at all:
  pruning a derivation would shrink the active domain itself (the same veto
  :func:`repro.engine.plan.compile_source_pushdowns` applies).

Because guard variables are harmless in every guarded rule (a variable at
an unaffected head position always has an unaffected body occurrence),
adding the guard atom changes neither the rule's ward nor its variable
roles: a warded program stays warded and Algorithm 1's termination
guarantee carries over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .atoms import Atom, Fact, Position
from .rules import Program, Rule
from .terms import Constant, Variable
from .transform import AUX_PREFIX
from .wardedness import ProgramAnalysis, VariableRole, analyse_program

MAGIC_PREFIX = f"{AUX_PREFIX}magic_"
"""Prefix of the demand predicates introduced by the rewriting."""

REWRITES = ("magic", "none")
"""Accepted values of the reasoner's ``rewrite=`` knob."""


class MagicRewriteError(Exception):
    """Internal invariant violation; callers fall back to the unrewritten run."""


def is_magic_predicate(name: str) -> bool:
    """True for the ``_aux_magic_*`` demand predicates."""
    return name.startswith(MAGIC_PREFIX)


def magic_predicate_name(predicate: str, bound: FrozenSet[int], arity: int) -> str:
    """Name of the demand predicate for ``predicate`` under an adornment.

    The adornment is rendered in the classic ``b``/``f`` notation so the
    rewritten program stays readable in ``explain()`` output and tests.
    """
    adornment = "".join("b" if i in bound else "f" for i in range(arity))
    return f"{MAGIC_PREFIX}{predicate}_{adornment}"


@dataclass
class MagicRewriteResult:
    """Outcome of one magic-set rewriting.

    ``program`` is the rewritten program (magic rules first, then the
    guarded/fallback rules of the backward slice); ``seeds`` are the
    ``_aux_magic_*`` EDB facts that must be added to the database of every
    run.  When ``changed`` is false the rewriting declined (``reason`` says
    why) and ``program`` is the input program unchanged.
    """

    program: Program
    query: Atom
    seeds: List[Fact] = field(default_factory=list)
    #: Final per-predicate adornments (bound position sets), for predicates
    #: that actually received a guard.
    adornments: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    guarded_rules: int = 0
    fallback_rules: int = 0
    magic_rules: int = 0
    pruned_rules: int = 0
    changed: bool = False
    reason: str = ""

    def stats(self) -> Dict[str, object]:
        return {
            "magic_changed": self.changed,
            "magic_guarded_rules": self.guarded_rules,
            "magic_fallback_rules": self.fallback_rules,
            "magic_demand_rules": self.magic_rules,
            "magic_pruned_rules": self.pruned_rules,
            "magic_seeds": len(self.seeds),
            "magic_bound_positions": {
                predicate: sorted(bound)
                for predicate, bound in sorted(self.adornments.items())
            },
            **({"magic_skip_reason": self.reason} if self.reason else {}),
        }


def _unchanged(program: Program, query: Atom, reason: str) -> MagicRewriteResult:
    return MagicRewriteResult(program=program, query=query, changed=False, reason=reason)


def _constraint_predicates(program: Program) -> Set[str]:
    """Body predicates of negative constraints and EGDs (checked in full)."""
    needed: Set[str] = set()
    for checked in list(program.constraints) + list(program.egds):
        for atom in checked.body:
            needed.add(atom.predicate)
    return needed


def _rule_static_guardable(rule: Rule) -> bool:
    """Structural per-rule check: may this rule carry a magic guard at all?"""
    return len(rule.head) == 1 and not rule.has_existentials()


def _rule_safe_positions(rule: Rule, analysis: ProgramAnalysis) -> Set[int]:
    """Head positions of ``rule`` a guard may bind without cutting the ward.

    A position is safe when the head term there is a ground constant or a
    *harmless* body variable; computed (assignment/aggregate) variables and
    harmful/dangerous ones are excluded, so the guard atom shares only
    harmless variables with every other body atom.
    """
    try:
        roles = analysis.analysis_for(rule).roles
    except KeyError:
        roles = {}
    head = rule.head[0]
    safe: Set[int] = set()
    for index, term in enumerate(head.terms):
        if isinstance(term, Constant):
            safe.add(index)
        elif isinstance(term, Variable) and roles.get(term) is VariableRole.HARMLESS:
            safe.add(index)
    return safe


def _guard_atom(rule: Rule, bound: FrozenSet[int]) -> Atom:
    head = rule.head[0]
    terms = tuple(head.terms[i] for i in sorted(bound))
    return Atom(magic_predicate_name(head.predicate, bound, head.arity), terms)


def _sip_walk(
    rule: Rule,
    guarded: bool,
    bound: FrozenSet[int],
    affected: FrozenSet[Position],
    idb: Set[str],
) -> Iterator[Tuple[Atom, Optional[Set[int]], Set[Variable], List[Atom]]]:
    """Yield ``(atom, demand, bound_vars_before, prefix_before)`` per body atom.

    Implements the textual sideways-information-passing order: a variable
    counts as bound when it is a guard variable or occurs at an unaffected
    position of an earlier relational body atom (never at an affected one —
    affected positions may carry labelled nulls at runtime, and magic facts
    must stay ground).  ``demand`` is the set of positions of ``atom`` that
    arrive bound (``None`` for extensional atoms, which need no demand).
    """
    bound_vars: Set[Variable] = set()
    if guarded:
        head = rule.head[0]
        for index in sorted(bound):
            term = head.terms[index]
            if isinstance(term, Variable):
                bound_vars.add(term)
    prefix: List[Atom] = []
    for atom in rule.relational_body:
        demand: Optional[Set[int]] = None
        if atom.predicate in idb:
            demand = {
                i
                for i, term in enumerate(atom.terms)
                if isinstance(term, Constant)
                or (isinstance(term, Variable) and term in bound_vars)
            }
        yield atom, demand, set(bound_vars), list(prefix)
        for i, term in enumerate(atom.terms):
            if isinstance(term, Variable) and Position(atom.predicate, i) not in affected:
                bound_vars.add(term)
        prefix.append(atom)


def _solve_adornments(
    relevant_rules: List[Rule],
    query: Atom,
    affected: FrozenSet[Position],
    idb: Set[str],
    analysis: ProgramAnalysis,
    full_predicates: Set[str],
) -> Dict[str, FrozenSet[int]]:
    """Greatest fixpoint of the per-predicate bound-position sets.

    Starts from the *top* — for every demanded predicate, the unaffected
    head positions that are guard-safe in each of its structurally
    guardable defining rules — pinned to the query's constant positions for
    the query predicate and to the all-free adornment for predicates that
    constraints/EGDs scan in full.  Each pass recomputes every demand under
    the current state and meets them by intersection; the demand operator
    is monotone in the state, so the sets only shrink and the iteration
    converges to the greatest safe adornment assignment.
    """
    rules_defining: Dict[str, List[Rule]] = {}
    for rule in relevant_rules:
        for name in rule.head_predicate_names():
            rules_defining.setdefault(name, []).append(rule)

    def top_of(predicate: str) -> FrozenSet[int]:
        defining = rules_defining.get(predicate, [])
        guardable = [r for r in defining if _rule_static_guardable(r)]
        if not guardable:
            return frozenset()
        safe = set.intersection(
            *(_rule_safe_positions(r, analysis) for r in guardable)
        )
        return frozenset(
            i for i in safe if Position(predicate, i) not in affected
        )

    query_bound = frozenset(
        i for i, t in enumerate(query.terms) if not isinstance(t, Variable)
    )

    demanded = {name for name in rules_defining if name in idb}
    state: Dict[str, FrozenSet[int]] = {}
    for predicate in demanded:
        top = top_of(predicate)
        if predicate in full_predicates:
            top = frozenset()
        if predicate == query.predicate:
            top &= query_bound
        state[predicate] = top

    while True:
        demands: Dict[str, List[FrozenSet[int]]] = {
            predicate: [] for predicate in state
        }
        if query.predicate in demands:
            demands[query.predicate].append(state[query.predicate] & query_bound)
        for rule in relevant_rules:
            head_pred = rule.head[0].predicate if len(rule.head) == 1 else None
            bound = state.get(head_pred, frozenset()) if head_pred else frozenset()
            guarded = bool(bound) and _rule_static_guardable(rule)
            for atom, demand, _vars, _prefix in _sip_walk(
                rule, guarded, bound, affected, idb
            ):
                if demand is None or atom.predicate not in demands:
                    continue
                demands[atom.predicate].append(frozenset(demand))
        new_state: Dict[str, FrozenSet[int]] = {}
        for predicate, sets in demands.items():
            if sets:
                met = frozenset.intersection(*sets)
            else:
                met = frozenset()
            new_state[predicate] = state[predicate] & met
        if new_state == state:
            return state
        state = new_state


def rewrite_with_magic(
    program: Program,
    query: Atom,
    analysis: Optional[ProgramAnalysis] = None,
) -> MagicRewriteResult:
    """Rewrite ``program`` for a point query, preserving certain answers.

    ``query`` is an atom over the program's vocabulary whose constant
    arguments are the bound positions (``Control("f0", Y)`` asks for the
    companies controlled by ``f0``).  The result's ``program`` must be run
    together with the result's ``seeds``; answers are read from the query's
    own predicate, exactly as in the original program.

    The rewriting declines (``changed=False``) when there is nothing it can
    soundly do: ``Dom``-guarded programs, extensional or unknown query
    predicates, and queries where no rule ends up guarded and no rule ends
    up pruned.
    """
    analysis = analysis if analysis is not None else analyse_program(program)
    if any(rule.dom_guards for rule in program.rules):
        return _unchanged(
            program, query, "Dom active-domain guards disable query pruning"
        )
    idb = program.idb_predicates()
    if query.predicate not in idb:
        return _unchanged(program, query, "query predicate is extensional")

    affected = analysis.affected
    # Constraint/EGD-scanned predicates — and, transitively, everything that
    # derives them — must be materialised in full for the deferred checks.
    from ..engine.plan import backward_slice

    constraint_preds = _constraint_predicates(program)
    full_predicates, _ = backward_slice(program, sorted(constraint_preds))
    full_predicates |= constraint_preds

    # Relevance pruning: only rules that can reach the query predicate or a
    # constraint/EGD-scanned predicate survive.
    targets = [query.predicate] + sorted(constraint_preds - {query.predicate})
    _, relevant_rules = backward_slice(program, targets)

    state = _solve_adornments(
        relevant_rules, query, affected, idb, analysis, full_predicates
    )

    result = MagicRewriteResult(
        program=program,
        query=query,
        adornments={p: b for p, b in state.items() if b},
        pruned_rules=len(program.rules) - len(relevant_rules),
    )

    seen_magic: Set[Tuple] = set()
    magic_rules: List[Rule] = []
    seeds: Dict[Fact, None] = {}

    def emit_demands(rule: Rule, guarded: bool, bound: FrozenSet[int]) -> None:
        """Emit magic rules/seeds for the demanded IDB atoms of one body."""
        guard = _guard_atom(rule, bound) if guarded else None
        for atom, demand, bound_vars, prefix in _sip_walk(
            rule, guarded, bound, affected, idb
        ):
            if demand is None:
                continue
            target_bound = state.get(atom.predicate, frozenset())
            if not target_bound:
                continue  # demanded in full; no magic predicate exists
            head_terms = tuple(atom.terms[i] for i in sorted(target_bound))
            if any(
                isinstance(t, Variable) and t not in bound_vars for t in head_terms
            ):
                # The fixpoint guarantees the final adornment is below every
                # occurrence demand; an unbound head variable here would
                # under-demand the predicate and lose answers.
                raise MagicRewriteError(
                    f"unbound demand variable for {atom.predicate} in rule "
                    f"{rule.label or rule}"
                )
            magic_head = Atom(
                magic_predicate_name(atom.predicate, target_bound, atom.arity),
                head_terms,
            )
            body: List[Atom] = ([guard] if guard is not None else []) + prefix
            if not body:
                seeds[Fact(magic_head.predicate, magic_head.terms)] = None
                continue
            if magic_head in body:
                continue  # trivial self-demand: derives nothing new
            key = (
                magic_head.predicate,
                magic_head.terms,
                tuple((a.predicate, a.terms) for a in body),
            )
            if key in seen_magic:
                continue
            seen_magic.add(key)
            magic_rules.append(
                Rule(
                    body=tuple(body),
                    head=(magic_head,),
                    label=f"{rule.label or 'rule'}_d{len(magic_rules) + 1}",
                )
            )

    rewritten_rules: List[Rule] = []
    for rule in relevant_rules:
        head_pred = rule.head[0].predicate if len(rule.head) == 1 else None
        bound = state.get(head_pred, frozenset()) if head_pred else frozenset()
        guarded = bool(bound) and _rule_static_guardable(rule)
        if guarded:
            guard = _guard_atom(rule, bound)
            rewritten_rules.append(
                Rule(
                    body=(guard,) + rule.body,
                    head=rule.head,
                    conditions=rule.conditions,
                    assignments=rule.assignments,
                    aggregate=rule.aggregate,
                    label=f"{rule.label or 'rule'}_m",
                )
            )
            result.guarded_rules += 1
        else:
            rewritten_rules.append(rule)
            if head_pred is None or head_pred in state:
                result.fallback_rules += 1
        emit_demands(rule, guarded, bound)

    # Seed the query demand itself (after the fixpoint the usable bound
    # positions of the query predicate may be smaller than the query's own
    # constant positions).
    query_bound = state.get(query.predicate, frozenset())
    if query_bound:
        seeds[
            Fact(
                magic_predicate_name(query.predicate, query_bound, query.arity),
                tuple(query.terms[i] for i in sorted(query_bound)),
            )
        ] = None

    if not result.guarded_rules and not result.pruned_rules:
        return _unchanged(
            program,
            query,
            "no rule is safely guardable and nothing is prunable for this query",
        )

    rewritten = program.copy()
    rewritten.rules = []
    for rule in magic_rules + rewritten_rules:
        rewritten.add_rule(rule)
    result.program = rewritten
    result.seeds = list(seeds)
    result.magic_rules = len(magic_rules)
    result.changed = True
    return result


def unsound_variant(result: MagicRewriteResult, drop: int = 1) -> MagicRewriteResult:
    """A deliberately broken rewriting, for translation-validation self-tests.

    Removes the last ``drop`` *non-seed* demand rules from the rewritten
    program.  Demand rules propagate relevance through rule bodies (the SIP
    pass of :func:`rewrite_with_magic`); dropping one under-approximates the
    demand set, so guarded rules stop firing for bindings the query can
    still observe and certain answers go missing — exactly the class of bug
    the :mod:`repro.verify` oracle exists to catch.  Used by the oracle
    self-test to prove the symbolic check finds real divergences; never
    called by the production rewrite path.

    Raises :class:`MagicRewriteError` when the rewriting has no demand rules
    to drop (nothing to break).
    """
    demand_labels = [
        rule.label
        for rule in result.program.rules
        if rule.head and is_magic_predicate(rule.head[0].predicate) and rule.body
    ]
    if not demand_labels:
        raise MagicRewriteError("rewriting has no demand rules to drop")
    dropped = set(demand_labels[-max(1, drop):])
    broken_program = result.program.copy()
    broken_program.rules = [
        rule for rule in result.program.rules if rule.label not in dropped
    ]
    broken = MagicRewriteResult(
        program=broken_program,
        query=result.query,
        seeds=list(result.seeds),
        adornments=dict(result.adornments),
        guarded_rules=result.guarded_rules,
        fallback_rules=result.fallback_rules,
        magic_rules=result.magic_rules - len(dropped),
        pruned_rules=result.pruned_rules,
        changed=True,
        reason=f"UNSOUND test variant: dropped demand rules {sorted(dropped)}",
    )
    return broken
