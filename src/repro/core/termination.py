"""Termination strategies for the chase (Section 3.4, Algorithm 1).

A *termination strategy* guides the chase: for every fact a chase step is
about to add it decides whether the step must be activated.  The strategies
implemented here are:

* :class:`WardedTerminationStrategy` — the paper's Algorithm 1, combining
  the **ground structure** ``G`` (facts of each warded-forest tree, target of
  local isomorphism checks) and the **summary structure** ``S`` (learned
  stop-provenances indexed by the pattern of the lifted-linear-forest root);
* :class:`TrivialIsomorphismStrategy` — the "trivial technique" of
  Section 3.2/6.6: memorise *all* generated facts up to isomorphism and cut
  when an isomorphic fact was already produced (exhaustive storage, global
  check);
* :class:`UnboundedStrategy` — performs no pruning beyond exact-duplicate
  elimination; only usable on programs guaranteed to terminate (e.g. plain
  Datalog) and by baselines implementing their own checks;
* :class:`DepthBoundedStrategy` — a defensive cap on the warded-forest /
  derivation depth, used to guard experiments against mis-specified rule
  sets.

All strategies expose counters (isomorphism checks performed, facts pruned)
used by the Figure-7 ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set

from .atoms import Fact
from .forests import ChaseNode
from .isomorphism import isomorphism_key, pattern_key
from .provenance import StopProvenanceSet
from .wardedness import RuleKind


@dataclass
class TerminationStats:
    """Counters reported by every termination strategy."""

    admitted: int = 0
    rejected: int = 0
    isomorphism_checks: int = 0
    vertical_prunes: int = 0
    horizontal_skips: int = 0
    stop_provenances_learned: int = 0
    stored_facts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "isomorphism_checks": self.isomorphism_checks,
            "vertical_prunes": self.vertical_prunes,
            "horizontal_skips": self.horizontal_skips,
            "stop_provenances_learned": self.stop_provenances_learned,
            "stored_facts": self.stored_facts,
        }


class TerminationStrategy:
    """Interface of a termination strategy (the ``check_termination`` oracle)."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = TerminationStats()

    def admit(self, node: ChaseNode) -> bool:
        """Return ``True`` when the chase step producing ``node`` may be activated."""
        raise NotImplementedError

    def register_input(self, node: ChaseNode) -> None:
        """Inform the strategy about an extensional (database) fact."""

    def _record(self, admitted: bool) -> bool:
        if admitted:
            self.stats.admitted += 1
        else:
            self.stats.rejected += 1
        return admitted


class _WardedTree:
    """Facts of one tree of the warded forest, indexed by isomorphism key."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: Set[Hashable] = set()

    def contains_isomorphic(self, fact: Fact) -> bool:
        return isomorphism_key(fact) in self.keys

    def add(self, fact: Fact) -> None:
        self.keys.add(isomorphism_key(fact))

    def __len__(self) -> int:
        return len(self.keys)


class WardedTerminationStrategy(TerminationStrategy):
    """Algorithm 1 of the paper.

    The strategy assumes the program has been normalised so that (1) rules
    are harmless warded and (2) existential quantification appears only in
    linear rules (Section 3.4); :class:`repro.engine.reasoner.VadalogReasoner`
    performs both normalisations before the chase starts.
    """

    name = "warded"

    def __init__(self) -> None:
        super().__init__()
        #: Ground structure ``G``: warded-forest trees keyed by root identity.
        self._ground: Dict[int, _WardedTree] = {}
        #: Summary structure ``S``: stop-provenances keyed by root pattern.
        self._summary: Dict[Hashable, StopProvenanceSet] = {}
        #: Ground (null-free) facts seen anywhere, for the non-linear case.
        self._ground_facts: Set[Fact] = set()

    # -- helpers ---------------------------------------------------------------
    def _tree(self, node: ChaseNode) -> _WardedTree:
        tree = self._ground.get(node.w_root.ident)
        if tree is None:
            tree = _WardedTree()
            self._ground[node.w_root.ident] = tree
        return tree

    def _summary_for(self, node: ChaseNode) -> StopProvenanceSet:
        key = pattern_key(node.l_root.fact)
        entry = self._summary.get(key)
        if entry is None:
            entry = StopProvenanceSet()
            self._summary[key] = entry
        return entry

    # -- protocol ----------------------------------------------------------------
    def register_input(self, node: ChaseNode) -> None:
        self._tree(node).add(node.fact)
        if not node.fact.has_nulls:
            self._ground_facts.add(node.fact)
        self.stats.stored_facts += 1

    def admit(self, node: ChaseNode) -> bool:
        if node.kind in (RuleKind.LINEAR, RuleKind.WARDED):
            summary = self._summary_for(node)
            if summary.covers(node.provenance):
                # Beyond a known stop-provenance: the whole path would only
                # re-generate isomorphic facts (vertical + horizontal pruning).
                self.stats.vertical_prunes += 1
                return self._record(False)
            if summary.within(node.provenance):
                # Strictly within a known maximal path: the fact is needed but
                # no isomorphism check has to be performed.
                self.stats.horizontal_skips += 1
                if not node.fact.has_nulls:
                    self._ground_facts.add(node.fact)
                return self._record(True)
            tree = self._tree(node)
            self.stats.isomorphism_checks += 1
            if tree.contains_isomorphic(node.fact):
                summary.add(node.provenance)
                self.stats.stop_provenances_learned += 1
                return self._record(False)
            tree.add(node.fact)
            self.stats.stored_facts += 1
            if not node.fact.has_nulls:
                self._ground_facts.add(node.fact)
            return self._record(True)

        # Other non-linear generating rules: the fact roots a new warded tree.
        # Existentials are confined to linear rules, hence the fact is ground
        # and redundancy reduces to set containment of ground facts.
        if node.fact.has_nulls:
            # Defensive fallback for non-normalised programs: behave like the
            # trivial global isomorphism check for this fact, which preserves
            # termination.
            key = isomorphism_key(node.fact)
            self.stats.isomorphism_checks += 1
            if any(tree_key == key for tree in self._ground.values() for tree_key in tree.keys):
                return self._record(False)
            self._tree(node).add(node.fact)
            self.stats.stored_facts += 1
            return self._record(True)
        if node.fact in self._ground_facts:
            return self._record(False)
        self._ground_facts.add(node.fact)
        self._tree(node).add(node.fact)
        self.stats.stored_facts += 1
        return self._record(True)

    # -- introspection -------------------------------------------------------
    def ground_structure_size(self) -> int:
        return sum(len(tree) for tree in self._ground.values())

    def summary_structure_size(self) -> int:
        return sum(len(entry) for entry in self._summary.values())

    def tree_count(self) -> int:
        return len(self._ground)


class TrivialIsomorphismStrategy(TerminationStrategy):
    """Exhaustive storage of all facts up to isomorphism, with global checks.

    This is the baseline the paper measures in Section 6.6 (Figure 7): it is
    correct for harmless warded programs (Theorem 2) but stores every
    generated fact and performs one (hash-based) isomorphism lookup per
    candidate fact against the entire history.
    """

    name = "trivial-isomorphism"

    def __init__(self) -> None:
        super().__init__()
        self._keys: Set[Hashable] = set()

    def register_input(self, node: ChaseNode) -> None:
        self._keys.add(isomorphism_key(node.fact))
        self.stats.stored_facts += 1

    def admit(self, node: ChaseNode) -> bool:
        self.stats.isomorphism_checks += 1
        key = isomorphism_key(node.fact)
        if key in self._keys:
            return self._record(False)
        self._keys.add(key)
        self.stats.stored_facts += 1
        return self._record(True)


class UnboundedStrategy(TerminationStrategy):
    """No pruning beyond exact duplicates (the chase engine already removes those)."""

    name = "unbounded"

    def admit(self, node: ChaseNode) -> bool:
        return self._record(True)


class DepthBoundedStrategy(TerminationStrategy):
    """Cap the linear-forest depth of derivations; wraps another strategy.

    Used defensively by experiment harnesses: the inner strategy decides as
    usual, but any derivation deeper than ``max_depth`` in the linear forest
    is cut.
    """

    name = "depth-bounded"

    def __init__(self, max_depth: int, inner: Optional[TerminationStrategy] = None) -> None:
        super().__init__()
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self.inner = inner or UnboundedStrategy()

    def register_input(self, node: ChaseNode) -> None:
        self.inner.register_input(node)

    def admit(self, node: ChaseNode) -> bool:
        if len(node.provenance) > self.max_depth:
            return self._record(False)
        return self._record(self.inner.admit(node))


def strategy_by_name(name: str, **kwargs) -> TerminationStrategy:
    """Factory used by the benchmark harness and the public API."""
    registry = {
        "warded": WardedTerminationStrategy,
        "trivial-isomorphism": TrivialIsomorphismStrategy,
        "unbounded": UnboundedStrategy,
    }
    if name == "depth-bounded":
        return DepthBoundedStrategy(**kwargs)
    if name not in registry:
        raise ValueError(
            f"unknown termination strategy {name!r}; known: {', '.join(registry)} , depth-bounded"
        )
    return registry[name](**kwargs)
