"""Linear-forest provenance and stop-provenances (Section 3.4).

The provenance of a fact ``a`` is the ordered list ``[ρ1, ..., ρn]`` of the
rules applied in the chase from the root of ``a``'s tree in the *linear
forest* down to ``a`` itself.  On provenances the paper defines the inclusion
relation ``⊆`` as the (ordered) prefix relation: ``p_i ⊆ p_j`` iff ``p_i`` is
an initial left-subsequence of ``p_j`` (possibly equal).

A provenance is a **stop-provenance** when the fact it leads to was found
isomorphic to a previously generated fact of the same warded tree: any chase
path extending it is bound to re-generate isomorphic facts and can be cut
(vertical pruning); stored against the *pattern* of the linear-forest root it
can be reused for other ground values (horizontal pruning).
"""

from __future__ import annotations

from typing import Iterable, Tuple

Provenance = Tuple[str, ...]
"""A provenance is an immutable sequence of rule labels."""

EMPTY_PROVENANCE: Provenance = ()


def extend(provenance: Provenance, rule_label: str) -> Provenance:
    """Provenance of the child fact obtained by applying ``rule_label``."""
    return provenance + (rule_label,)


def is_prefix(candidate: Provenance, of: Provenance) -> bool:
    """The ``⊆`` relation of the paper: ordered left-subsequence (prefix)."""
    if len(candidate) > len(of):
        return False
    return of[: len(candidate)] == candidate


def is_strict_prefix(candidate: Provenance, of: Provenance) -> bool:
    """Strict version of :func:`is_prefix` (``⊂``)."""
    return len(candidate) < len(of) and is_prefix(candidate, of)


class StopProvenanceSet:
    """The set of stop-provenances stored for one lifted-linear-forest root.

    Supports the two queries of Algorithm 1:

    * :meth:`covers`  — line 3: is there a stored ``λ`` with ``λ ⊆ p``?  If so
      the fact lies *beyond* a stop-provenance and must be discarded.
    * :meth:`within`  — line 5: is there a stored ``λ`` with ``p ⊂ λ``?  If so
      the fact lies strictly *within* a known maximal path and no isomorphism
      check is needed.

    The set is kept ⊆-minimal: when a new stop-provenance is added, any stored
    provenance extending it becomes redundant and is dropped.
    """

    def __init__(self) -> None:
        self._provenances: list[Provenance] = []

    def __len__(self) -> int:
        return len(self._provenances)

    def __iter__(self):
        return iter(self._provenances)

    def add(self, provenance: Provenance) -> None:
        """Record ``provenance`` as a stop-provenance (keeping minimality)."""
        if self.covers(provenance):
            return
        self._provenances = [
            stored for stored in self._provenances if not is_prefix(provenance, stored)
        ]
        self._provenances.append(provenance)

    def covers(self, provenance: Provenance) -> bool:
        """True when a stored stop-provenance is a prefix of ``provenance``."""
        return any(is_prefix(stored, provenance) for stored in self._provenances)

    def within(self, provenance: Provenance) -> bool:
        """True when ``provenance`` is a strict prefix of a stored stop-provenance."""
        return any(is_strict_prefix(provenance, stored) for stored in self._provenances)


class DerivationIndex:
    """Reverse adjacency over recorded chase derivations (the DRed substrate).

    The chase records, for every derived fact, the single derivation that
    produced it first (:class:`repro.core.forests.ChaseNode.parents` — the
    body facts of the generating step).  This index inverts those edges:
    ``children_of(f)`` is every fact whose *recorded* derivation used ``f``
    in its body.  Delete-and-rederive (:mod:`repro.engine.incremental`) uses
    it for the overdeletion phase: a derived fact is overdeleted when any
    parent of its recorded derivation is deleted, and the closure of that
    rule over a retracted set is exactly a traversal of this index.

    The index is sound for overdeletion because the chase keeps a *single*
    justification per fact and every surviving fact's recorded parents
    survive by construction of the closure — so every survivor still has an
    intact recorded derivation grounded in surviving extensional facts.
    """

    def __init__(self) -> None:
        self._children: dict = {}

    def record(self, fact, parent_facts) -> None:
        """Record that ``fact``'s derivation consumed ``parent_facts``."""
        for parent in parent_facts:
            bucket = self._children.get(parent)
            if bucket is None:
                self._children[parent] = [fact]
            else:
                bucket.append(fact)

    def children_of(self, fact) -> Tuple:
        """Facts whose recorded derivation used ``fact`` in its body."""
        return tuple(self._children.get(fact, ()))

    def forget(self, facts: Iterable) -> None:
        """Drop the adjacency rooted at deleted facts (their out-edges)."""
        for fact in facts:
            self._children.pop(fact, None)

    def unlink(self, fact, parent_facts) -> None:
        """Remove the recorded edge ``parent -> fact`` for each parent.

        Called when ``fact`` is deleted so surviving parents do not keep a
        stale edge to it — a later rederivation of an equal fact records a
        fresh derivation, and stale edges would make future overdeletions
        cascade through justifications that no longer exist.
        """
        for parent in parent_facts:
            bucket = self._children.get(parent)
            if bucket is None:
                continue
            try:
                bucket.remove(fact)
            except ValueError:
                pass
            if not bucket:
                del self._children[parent]

    def __len__(self) -> int:
        return sum(len(children) for children in self._children.values())


def longest_common_prefix(provenances: Iterable[Provenance]) -> Provenance:
    """Longest common prefix of a collection of provenances (used in reports)."""
    iterator = iter(provenances)
    try:
        prefix = list(next(iterator))
    except StopIteration:
        return EMPTY_PROVENANCE
    for provenance in iterator:
        limit = 0
        for left, right in zip(prefix, provenance):
            if left != right:
                break
            limit += 1
        prefix = prefix[:limit]
        if not prefix:
            break
    return tuple(prefix)
