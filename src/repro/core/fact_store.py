"""In-memory fact store with dynamic per-position hash indexes.

This is the data substrate shared by the chase engine and the baselines: a
set of facts grouped by predicate, with hash indexes on (predicate,
position, value) built *dynamically* as facts are inserted, mirroring the
"dynamic indexing" idea of the slot-machine join (Section 4): there is no
persistent pre-computed index, the indexes grow with the derived facts and
can be consulted even while incomplete.

The indexes are keyed by the terms themselves (constants, nulls): terms
cache their hash at construction (:mod:`repro.core.terms`), so a probe costs
two dictionary lookups and no tuple allocation.  On top of the full indexes
the store maintains **per-round delta indexes** (:meth:`begin_round`) used
by the compiled rule executors for semi-naive evaluation, plus the insertion
round of every fact so executors can restrict probes to earlier rounds.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .atoms import Atom, Fact
from .terms import Constant, Term, Variable

_EMPTY: Tuple[Fact, ...] = ()


class FactStore:
    """A set of facts with per-position hash indexes and insertion order."""

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._facts: List[Fact] = []
        # Dedup set keyed by (predicate, terms) — the exact equality of Fact
        # itself — so membership works for whole facts and for rows the
        # compiled fire path has not turned into Fact objects yet.
        self._rows: Set[Tuple[str, Tuple[Term, ...]]] = set()
        self._by_predicate: Dict[str, List[Fact]] = {}
        # predicate -> list of per-position {term: [facts]} dictionaries
        self._position_index: Dict[str, List[Dict[Term, List[Fact]]]] = {}
        self._active_domain: Set[Hashable] = set()
        self._facts_cache: Optional[Tuple[Fact, ...]] = None
        # -- semi-naive round bookkeeping (driven by the chase engine) -------
        self.current_round: int = 0
        self._round_of: Dict[Fact, int] = {}
        self._delta_by_predicate: Dict[str, List[Fact]] = {}
        self._delta_index: Dict[str, List[Dict[Term, List[Fact]]]] = {}
        for fact in facts:
            self.add(fact)

    # -- mutation ------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns ``False`` when an identical fact is present."""
        key = (fact.predicate, fact.terms)
        if key in self._rows:
            return False
        self._rows.add(key)
        self._facts.append(fact)
        self._facts_cache = None
        self._round_of[fact] = self.current_round
        self._by_predicate.setdefault(fact.predicate, []).append(fact)
        position_dicts = self._position_index.get(fact.predicate)
        if position_dicts is None:
            position_dicts = self._position_index[fact.predicate] = []
        while len(position_dicts) < len(fact.terms):
            position_dicts.append({})
        for index, term in enumerate(fact.terms):
            bucket = position_dicts[index].get(term)
            if bucket is None:
                position_dicts[index][term] = [fact]
            else:
                bucket.append(fact)
            if isinstance(term, Constant):
                self._active_domain.add(term.value)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts, returning the number actually added."""
        return sum(1 for fact in facts if self.add(fact))

    # -- inspection ----------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return (fact.predicate, fact.terms) in self._rows

    def contains_row(self, predicate: str, terms: Tuple[Term, ...]) -> bool:
        """Duplicate check without constructing a :class:`Fact` object.

        Used by the compiled fire path: most candidate heads are duplicates,
        and a tuple membership test is far cheaper than building the fact
        first.
        """
        return (predicate, terms) in self._rows

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def facts(self) -> Tuple[Fact, ...]:
        if self._facts_cache is None:
            self._facts_cache = tuple(self._facts)
        return self._facts_cache

    def predicates(self) -> Tuple[str, ...]:
        return tuple(self._by_predicate)

    def by_predicate(self, predicate: str) -> Sequence[Fact]:
        return self._by_predicate.get(predicate, ())

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, ()))

    def active_domain(self) -> Set[Hashable]:
        """Constants occurring anywhere in the store (the ``ACDom`` relation)."""
        return set(self._active_domain)

    def in_active_domain(self, value: Hashable) -> bool:
        return value in self._active_domain

    # -- rounds and deltas ---------------------------------------------------
    def begin_round(self, round_index: int, delta_facts: Iterable[Fact]) -> None:
        """Start a semi-naive round: stamp new facts and index the delta.

        ``delta_facts`` are the facts derived in the previous round; they are
        grouped by predicate and indexed per position so compiled executors
        can seed their joins from the delta with indexed probes.
        """
        self.current_round = round_index
        self._delta_by_predicate = {}
        self._delta_index = {}
        for fact in delta_facts:
            self._delta_by_predicate.setdefault(fact.predicate, []).append(fact)

    def round_of(self, fact: Fact) -> int:
        """The round in which ``fact`` entered the store (0 for inputs)."""
        return self._round_of.get(fact, 0)

    def delta_facts(self, predicate: str) -> Sequence[Fact]:
        """Facts of the current delta (previous round's derivations)."""
        return self._delta_by_predicate.get(predicate, ())

    def delta_candidates(self, predicate: str, position: int, term: Term) -> Sequence[Fact]:
        """Delta facts with ``term`` at ``position`` (indexed probe).

        The per-position delta index of a predicate is built lazily on first
        probe: most seed atoms carry no constants, so eagerly indexing every
        delta predicate each round would be wasted work.
        """
        position_dicts = self._delta_index.get(predicate)
        if position_dicts is None:
            position_dicts = self._delta_index[predicate] = []
            for fact in self._delta_by_predicate.get(predicate, ()):
                while len(position_dicts) < len(fact.terms):
                    position_dicts.append({})
                for index, fact_term in enumerate(fact.terms):
                    bucket = position_dicts[index].get(fact_term)
                    if bucket is None:
                        position_dicts[index][fact_term] = [fact]
                    else:
                        bucket.append(fact)
        if position >= len(position_dicts):
            return _EMPTY
        return position_dicts[position].get(term, _EMPTY)

    # -- matching ------------------------------------------------------------
    def position_candidates(self, predicate: str, position: int, term: Term) -> Sequence[Fact]:
        """Facts of ``predicate`` with ``term`` at ``position`` (indexed probe)."""
        position_dicts = self._position_index.get(predicate)
        if position_dicts is None or position >= len(position_dicts):
            return _EMPTY
        return position_dicts[position].get(term, _EMPTY)

    def position_dicts(self, predicate: str) -> Optional[List[Dict[Term, List[Fact]]]]:
        """The raw per-position index of a predicate (``None`` when unknown).

        Exposed for the compiled executor, whose innermost probe loop wants
        one dictionary access per bound position instead of a method call.
        """
        return self._position_index.get(predicate)

    def candidates(self, atom: Atom, binding: Dict[Variable, Term]) -> Sequence[Fact]:
        """Facts that could match ``atom`` under the (partial) ``binding``.

        Uses the most selective available position index: among the atom
        positions holding a constant or an already-bound variable, the one
        whose candidate bucket is smallest.  Falls back to a full scan of the
        predicate when the atom has no bound position.
        """
        position_dicts = self._position_index.get(atom.predicate)
        if position_dicts is None:
            return _EMPTY if atom.predicate not in self._by_predicate else self._by_predicate[atom.predicate]
        best: Optional[Sequence[Fact]] = None
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                bound = binding.get(term)
                if bound is None:
                    continue
                term = bound
            if index >= len(position_dicts):
                return _EMPTY
            bucket = position_dicts[index].get(term)
            if bucket is None:
                return _EMPTY
            if best is None or len(bucket) < len(best):
                best = bucket
                if len(best) <= 1:
                    break
        if best is not None:
            return best
        return self._by_predicate.get(atom.predicate, ())

    def matches(self, atom: Atom, binding: Optional[Dict[Variable, Term]] = None) -> Iterator[Dict[Variable, Term]]:
        """Yield extensions of ``binding`` that match ``atom`` against the store."""
        binding = dict(binding or {})
        ground_atom = atom.substitute(binding)
        for fact in self.candidates(ground_atom, binding):
            extension = ground_atom.match(fact)
            if extension is None:
                continue
            merged = dict(binding)
            merged.update(extension)
            yield merged

    def copy(self) -> "FactStore":
        return FactStore(self._facts)
