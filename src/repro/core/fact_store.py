"""In-memory fact store with dynamic per-position hash indexes.

This is the data substrate shared by the chase engine and the baselines: a
set of facts grouped by predicate, with hash indexes on (predicate,
position, value) built *dynamically* as facts are inserted, mirroring the
"dynamic indexing" idea of the slot-machine join (Section 4): there is no
persistent pre-computed index, the indexes grow with the derived facts and
can be consulted even while incomplete.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .atoms import Atom, Fact
from .terms import Constant, Null, Term, Variable


def _term_key(term: Term) -> Hashable:
    """Hashable lookup key of a ground term (constants and nulls are disjoint)."""
    if isinstance(term, Constant):
        return ("c", term.value)
    if isinstance(term, Null):
        return ("n", term.ident)
    raise TypeError(f"cannot index non-ground term {term!r}")


class FactStore:
    """A set of facts with per-position hash indexes and insertion order."""

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._facts: List[Fact] = []
        self._fact_set: Set[Fact] = set()
        self._by_predicate: Dict[str, List[Fact]] = {}
        self._position_index: Dict[Tuple[str, int, Hashable], List[Fact]] = {}
        self._active_domain: Set[Hashable] = set()
        for fact in facts:
            self.add(fact)

    # -- mutation ------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns ``False`` when an identical fact is present."""
        if fact in self._fact_set:
            return False
        self._fact_set.add(fact)
        self._facts.append(fact)
        self._by_predicate.setdefault(fact.predicate, []).append(fact)
        for index, term in enumerate(fact.terms):
            key = (fact.predicate, index, _term_key(term))
            self._position_index.setdefault(key, []).append(fact)
            if isinstance(term, Constant):
                self._active_domain.add(term.value)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts, returning the number actually added."""
        return sum(1 for fact in facts if self.add(fact))

    # -- inspection ----------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return fact in self._fact_set

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def facts(self) -> Tuple[Fact, ...]:
        return tuple(self._facts)

    def predicates(self) -> Tuple[str, ...]:
        return tuple(self._by_predicate)

    def by_predicate(self, predicate: str) -> Sequence[Fact]:
        return self._by_predicate.get(predicate, ())

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, ()))

    def active_domain(self) -> Set[Hashable]:
        """Constants occurring anywhere in the store (the ``ACDom`` relation)."""
        return set(self._active_domain)

    def in_active_domain(self, value: Hashable) -> bool:
        return value in self._active_domain

    # -- matching ------------------------------------------------------------
    def candidates(self, atom: Atom, binding: Dict[Variable, Term]) -> Sequence[Fact]:
        """Facts that could match ``atom`` under the (partial) ``binding``.

        Uses the most selective available position index: the first atom
        position holding a constant or an already-bound variable.  Falls back
        to a full scan of the predicate when the atom has no bound position.
        """
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                bound = binding.get(term)
                if bound is None:
                    continue
                term = bound
            key = (atom.predicate, index, _term_key(term))
            return self._position_index.get(key, ())
        return self._by_predicate.get(atom.predicate, ())

    def matches(self, atom: Atom, binding: Optional[Dict[Variable, Term]] = None) -> Iterator[Dict[Variable, Term]]:
        """Yield extensions of ``binding`` that match ``atom`` against the store."""
        binding = dict(binding or {})
        ground_atom = atom.substitute(binding)
        for fact in self.candidates(ground_atom, binding):
            extension = ground_atom.match(fact)
            if extension is None:
                continue
            merged = dict(binding)
            merged.update(extension)
            yield merged

    def copy(self) -> "FactStore":
        return FactStore(self._facts)
