"""In-memory fact store with dynamic per-position hash indexes.

This is the data substrate shared by the chase engine and the baselines: a
set of facts grouped by predicate, with hash indexes on (predicate,
position, value) built *dynamically* as facts are inserted, mirroring the
"dynamic indexing" idea of the slot-machine join (Section 4): there is no
persistent pre-computed index, the indexes grow with the derived facts and
can be consulted even while incomplete.

The indexes are keyed by the terms themselves (constants, nulls): terms
cache their hash at construction (:mod:`repro.core.terms`), so a probe costs
two dictionary lookups and no tuple allocation.  On top of the full indexes
the store maintains **per-round delta indexes** (:meth:`begin_round`) used
by the compiled rule executors for semi-naive evaluation, plus the insertion
round of every fact so executors can restrict probes to earlier rounds.

Since PR 4 the mutation paths are split into an explicit **read-snapshot /
write-batch** protocol shared by all executors:

* :meth:`FactStore.snapshot` returns a :class:`StoreSnapshot` — a read-only
  view of the store at the current mutation epoch exposing exactly the
  probe API the compiled executors consume.  Snapshots are what the
  parallel executor hands to its matching workers: thread workers share the
  view directly (the engine guarantees no writes happen while a matching
  phase is in flight — the snapshot's epoch check enforces it), fork
  workers inherit a copy-on-write image of it.
* :meth:`FactStore.write_batch` returns a :class:`WriteBatch` — a staged
  single-writer sink with the same duck interface as the store's own
  mutation entry points (``add``/``contains_row``/``in_active_domain``).
  Staged facts are visible to duplicate checks immediately but enter the
  indexes only on :meth:`WriteBatch.apply`; the chase engines use batches
  for bulk input loading and the parallel admission stage, while the
  per-fact executors (naive/compiled firing, the streaming pipeline) keep
  writing through :meth:`FactStore.add`, the degenerate auto-commit writer.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .atoms import Atom, Fact
from .terms import Constant, Term, Variable

_EMPTY: Tuple[Fact, ...] = ()


class StaleSnapshotError(RuntimeError):
    """A read hit a :class:`StoreSnapshot` after its store was mutated."""


class FactStore:
    """A set of facts with per-position hash indexes and insertion order."""

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._facts: List[Fact] = []
        # Dedup map keyed by (predicate, terms) — the exact equality of Fact
        # itself — so membership works for whole facts and for rows the
        # compiled fire path has not turned into Fact objects yet.  The value
        # is the fact's position in ``_facts``: a stable integer identity
        # that parallel fork workers use to refer to facts across process
        # boundaries without pickling them.
        self._rows: Dict[Tuple[str, Tuple[Term, ...]], int] = {}
        # Incremented on every mutation; snapshots record it and refuse
        # reads once it moved on (see :class:`StoreSnapshot`).
        self._epoch: int = 0
        self._by_predicate: Dict[str, List[Fact]] = {}
        # predicate -> list of per-position {term: [facts]} dictionaries
        self._position_index: Dict[str, List[Dict[Term, List[Fact]]]] = {}
        self._active_domain: Set[Hashable] = set()
        # Occurrence counts backing the active domain: retraction may only
        # drop a constant when its last occurrence leaves the store.
        self._domain_counts: Dict[Hashable, int] = {}
        # Number of live (non-tombstoned) entries of ``_facts``; removal
        # tombstones the slot to keep row indexes stable (see :meth:`remove`).
        self._live: int = 0
        self._facts_cache: Optional[Tuple[Fact, ...]] = None
        # -- semi-naive round bookkeeping (driven by the chase engine) -------
        self.current_round: int = 0
        self._round_of: Dict[Fact, int] = {}
        self._delta_by_predicate: Dict[str, List[Fact]] = {}
        self._delta_index: Dict[str, List[Dict[Term, List[Fact]]]] = {}
        for fact in facts:
            self.add(fact)

    # -- mutation ------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Insert a fact; returns ``False`` when an identical fact is present.

        This is the single commit path of the store — the auto-commit
        writer.  Bulk insertions and the parallel admission stage go through
        :meth:`write_batch`, which stages facts first and funnels them back
        through this method on :meth:`WriteBatch.apply`.
        """
        key = (fact.predicate, fact.terms)
        if key in self._rows:
            return False
        self._epoch += 1
        self._rows[key] = len(self._facts)
        self._facts.append(fact)
        self._facts_cache = None
        self._round_of[fact] = self.current_round
        self._by_predicate.setdefault(fact.predicate, []).append(fact)
        position_dicts = self._position_index.get(fact.predicate)
        if position_dicts is None:
            position_dicts = self._position_index[fact.predicate] = []
        while len(position_dicts) < len(fact.terms):
            position_dicts.append({})
        for index, term in enumerate(fact.terms):
            bucket = position_dicts[index].get(term)
            if bucket is None:
                position_dicts[index][term] = [fact]
            else:
                bucket.append(fact)
            if isinstance(term, Constant):
                self._active_domain.add(term.value)
                self._domain_counts[term.value] = self._domain_counts.get(term.value, 0) + 1
        self._live += 1
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Insert many facts, returning the number actually added."""
        return sum(1 for fact in facts if self.add(fact))

    def remove(self, fact: Fact) -> bool:
        """Retract a fact; returns ``False`` when it is not in the store.

        Removal is the mutation primitive of the resident reasoner's DRed
        path (:mod:`repro.engine.incremental`).  The fact's slot in the
        insertion sequence is tombstoned (``None``) rather than compacted so
        :meth:`index_of_row` positions handed out earlier stay valid for the
        surviving facts; iteration and :meth:`facts` skip tombstones.  Every
        removal bumps the mutation epoch, so snapshots taken before it go
        stale exactly like they do for inserts.
        """
        key = (fact.predicate, fact.terms)
        index = self._rows.pop(key, None)
        if index is None:
            return False
        self._epoch += 1
        stored = self._facts[index]
        self._facts[index] = None
        self._facts_cache = None
        self._live -= 1
        self._round_of.pop(stored, None)
        bucket = self._by_predicate.get(stored.predicate)
        if bucket is not None:
            try:
                bucket.remove(stored)
            except ValueError:  # pragma: no cover - index kept in lockstep
                pass
        position_dicts = self._position_index.get(stored.predicate)
        for position, term in enumerate(stored.terms):
            if position_dicts is not None and position < len(position_dicts):
                entries = position_dicts[position].get(term)
                if entries is not None:
                    try:
                        entries.remove(stored)
                    except ValueError:  # pragma: no cover
                        pass
                    if not entries:
                        del position_dicts[position][term]
            if isinstance(term, Constant):
                count = self._domain_counts.get(term.value, 0) - 1
                if count <= 0:
                    self._domain_counts.pop(term.value, None)
                    self._active_domain.discard(term.value)
                else:
                    self._domain_counts[term.value] = count
        delta_bucket = self._delta_by_predicate.get(stored.predicate)
        if delta_bucket is not None and stored in delta_bucket:
            delta_bucket.remove(stored)
            self._delta_index.pop(stored.predicate, None)
        return True

    def remove_all(self, facts: Iterable[Fact]) -> int:
        """Retract many facts, returning the number actually removed."""
        return sum(1 for fact in facts if self.remove(fact))

    # -- inspection ----------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        return (fact.predicate, fact.terms) in self._rows

    def contains_row(self, predicate: str, terms: Tuple[Term, ...]) -> bool:
        """Duplicate check without constructing a :class:`Fact` object.

        Used by the compiled fire path: most candidate heads are duplicates,
        and a tuple membership test is far cheaper than building the fact
        first.
        """
        return (predicate, terms) in self._rows

    def __len__(self) -> int:
        return self._live

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts())

    def facts(self) -> Tuple[Fact, ...]:
        if self._facts_cache is None:
            self._facts_cache = tuple(f for f in self._facts if f is not None)
        return self._facts_cache

    def fact_at(self, index: int) -> Fact:
        """The fact at insertion position ``index`` (see :meth:`index_of_row`).

        Positions of removed facts resolve to ``None``; live positions stay
        stable across removals (removal tombstones, it never compacts).
        """
        return self._facts[index]

    def index_of_row(self, predicate: str, terms: Tuple[Term, ...]) -> int:
        """Insertion position of a stored row; raises ``KeyError`` when absent.

        Positions are stable for the lifetime of the store, so they serve as
        process-portable fact identities: a fork worker whose store image was
        inherited at round start resolves the same index to the same fact as
        the parent.
        """
        return self._rows[(predicate, terms)]

    def predicates(self) -> Tuple[str, ...]:
        return tuple(self._by_predicate)

    def by_predicate(self, predicate: str) -> Sequence[Fact]:
        return self._by_predicate.get(predicate, ())

    def count(self, predicate: str) -> int:
        return len(self._by_predicate.get(predicate, ()))

    def active_domain(self) -> Set[Hashable]:
        """Constants occurring anywhere in the store (the ``ACDom`` relation)."""
        return set(self._active_domain)

    def in_active_domain(self, value: Hashable) -> bool:
        return value in self._active_domain

    # -- rounds and deltas ---------------------------------------------------
    def begin_round(self, round_index: int, delta_facts: Iterable[Fact]) -> None:
        """Start a semi-naive round: stamp new facts and index the delta.

        ``delta_facts`` are the facts derived in the previous round; they are
        grouped by predicate and indexed per position so compiled executors
        can seed their joins from the delta with indexed probes.
        """
        self._epoch += 1
        self.current_round = round_index
        self._delta_by_predicate = {}
        self._delta_index = {}
        for fact in delta_facts:
            self._delta_by_predicate.setdefault(fact.predicate, []).append(fact)

    def round_of(self, fact: Fact) -> int:
        """The round in which ``fact`` entered the store (0 for inputs)."""
        return self._round_of.get(fact, 0)

    def delta_facts(self, predicate: str) -> Sequence[Fact]:
        """Facts of the current delta (previous round's derivations)."""
        return self._delta_by_predicate.get(predicate, ())

    def delta_candidates(self, predicate: str, position: int, term: Term) -> Sequence[Fact]:
        """Delta facts with ``term`` at ``position`` (indexed probe).

        The per-position delta index of a predicate is built lazily on first
        probe: most seed atoms carry no constants, so eagerly indexing every
        delta predicate each round would be wasted work.
        """
        position_dicts = self._delta_index.get(predicate)
        if position_dicts is None:
            position_dicts = self._delta_index[predicate] = []
            for fact in self._delta_by_predicate.get(predicate, ()):
                while len(position_dicts) < len(fact.terms):
                    position_dicts.append({})
                for index, fact_term in enumerate(fact.terms):
                    bucket = position_dicts[index].get(fact_term)
                    if bucket is None:
                        position_dicts[index][fact_term] = [fact]
                    else:
                        bucket.append(fact)
        if position >= len(position_dicts):
            return _EMPTY
        return position_dicts[position].get(term, _EMPTY)

    # -- matching ------------------------------------------------------------
    def position_candidates(self, predicate: str, position: int, term: Term) -> Sequence[Fact]:
        """Facts of ``predicate`` with ``term`` at ``position`` (indexed probe)."""
        position_dicts = self._position_index.get(predicate)
        if position_dicts is None or position >= len(position_dicts):
            return _EMPTY
        return position_dicts[position].get(term, _EMPTY)

    def position_dicts(self, predicate: str) -> Optional[List[Dict[Term, List[Fact]]]]:
        """The raw per-position index of a predicate (``None`` when unknown).

        Exposed for the compiled executor, whose innermost probe loop wants
        one dictionary access per bound position instead of a method call.
        """
        return self._position_index.get(predicate)

    def candidates(self, atom: Atom, binding: Dict[Variable, Term]) -> Sequence[Fact]:
        """Facts that could match ``atom`` under the (partial) ``binding``.

        Uses the most selective available position index: among the atom
        positions holding a constant or an already-bound variable, the one
        whose candidate bucket is smallest.  Falls back to a full scan of the
        predicate when the atom has no bound position.
        """
        position_dicts = self._position_index.get(atom.predicate)
        if position_dicts is None:
            return _EMPTY if atom.predicate not in self._by_predicate else self._by_predicate[atom.predicate]
        best: Optional[Sequence[Fact]] = None
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                bound = binding.get(term)
                if bound is None:
                    continue
                term = bound
            if index >= len(position_dicts):
                return _EMPTY
            bucket = position_dicts[index].get(term)
            if bucket is None:
                return _EMPTY
            if best is None or len(bucket) < len(best):
                best = bucket
                if len(best) <= 1:
                    break
        if best is not None:
            return best
        return self._by_predicate.get(atom.predicate, ())

    def matches(self, atom: Atom, binding: Optional[Dict[Variable, Term]] = None) -> Iterator[Dict[Variable, Term]]:
        """Yield extensions of ``binding`` that match ``atom`` against the store."""
        binding = dict(binding or {})
        ground_atom = atom.substitute(binding)
        for fact in self.candidates(ground_atom, binding):
            extension = ground_atom.match(fact)
            if extension is None:
                continue
            merged = dict(binding)
            merged.update(extension)
            yield merged

    def copy(self) -> "FactStore":
        return FactStore(self.facts())

    # -- read-snapshot / write-batch protocol --------------------------------
    @property
    def epoch(self) -> int:
        """Mutation counter; bumped by every insert and every round start."""
        return self._epoch

    def snapshot(self) -> "StoreSnapshot":
        """A read-only view of the store at the current mutation epoch."""
        return StoreSnapshot(self)

    def write_batch(self) -> "WriteBatch":
        """A staged single-writer sink; see :class:`WriteBatch`."""
        return WriteBatch(self)


class StoreSnapshot:
    """Read-only view of a :class:`FactStore` at a fixed mutation epoch.

    The snapshot exposes exactly the probe API the compiled rule executors
    consume (:class:`~repro.engine.joins.CompiledRuleExecutor` only reads),
    so an executor can run against a snapshot or a live store
    interchangeably.  It is a zero-copy facade: reads delegate to the
    underlying store and a cheap epoch check at every entry point raises
    :class:`StaleSnapshotError` if the store was mutated after the snapshot
    was taken — the guard that makes "workers never observe a half-applied
    write" an invariant instead of a convention.  (Fork workers operate on
    a copy-on-write process image, so their snapshot can never go stale.)
    """

    __slots__ = ("_store", "_epoch")

    def __init__(self, store: FactStore) -> None:
        self._store = store
        self._epoch = store.epoch

    def _check(self) -> FactStore:
        store = self._store
        if store.epoch != self._epoch:
            raise StaleSnapshotError(
                "store mutated after the snapshot was taken "
                f"(epoch {store.epoch} != snapshot epoch {self._epoch})"
            )
        return store

    @property
    def stale(self) -> bool:
        return self._store.epoch != self._epoch

    # The per-call check costs one attribute read and one comparison; the
    # executors' inner loops then use the returned structures directly.
    def by_predicate(self, predicate: str) -> Sequence[Fact]:
        return self._check().by_predicate(predicate)

    def position_dicts(self, predicate: str) -> Optional[List[Dict[Term, List[Fact]]]]:
        return self._check().position_dicts(predicate)

    def position_candidates(self, predicate: str, position: int, term: Term) -> Sequence[Fact]:
        return self._check().position_candidates(predicate, position, term)

    def delta_facts(self, predicate: str) -> Sequence[Fact]:
        return self._check().delta_facts(predicate)

    def delta_candidates(self, predicate: str, position: int, term: Term) -> Sequence[Fact]:
        return self._check().delta_candidates(predicate, position, term)

    def candidates(self, atom: Atom, binding: Dict[Variable, Term]) -> Sequence[Fact]:
        return self._check().candidates(atom, binding)

    def matches(self, atom: Atom, binding: Optional[Dict[Variable, Term]] = None):
        return self._check().matches(atom, binding)

    def round_of(self, fact: Fact) -> int:
        # Called once per probed candidate in the innermost loop: skip the
        # per-call epoch check — the candidate sequence it is applied to was
        # obtained through a checked entry point in the same phase.
        return self._store.round_of(fact)

    def contains_row(self, predicate: str, terms: Tuple[Term, ...]) -> bool:
        return self._check().contains_row(predicate, terms)

    def fact_at(self, index: int) -> Fact:
        return self._check().fact_at(index)

    def index_of_row(self, predicate: str, terms: Tuple[Term, ...]) -> int:
        return self._check().index_of_row(predicate, terms)

    def in_active_domain(self, value: Hashable) -> bool:
        return self._check().in_active_domain(value)

    def __len__(self) -> int:
        return len(self._check())

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._check()


class WriteBatch:
    """Staged writes against a :class:`FactStore` (the single-writer sink).

    A batch exposes the same duck interface as the store's own mutation
    entry points — ``add`` returning ``False`` on duplicates,
    ``contains_row``, ``__contains__``, ``in_active_domain``, ``__len__`` —
    so the chase fire paths can write to either without branching.  Staged
    facts are visible to the batch's *own* duplicate and active-domain
    checks immediately (the admission stage must not admit the same head
    twice within a round) but reach the store's indexes only on
    :meth:`apply`, which commits in staging order through
    :meth:`FactStore.add`.  Until then, concurrent readers of the store —
    and any :class:`StoreSnapshot` taken before the batch — observe a
    consistent pre-batch state.
    """

    __slots__ = ("_store", "_staged", "_staged_rows", "_staged_constants")

    def __init__(self, store: FactStore) -> None:
        self._store = store
        self._staged: List[Fact] = []
        self._staged_rows: Set[Tuple[str, Tuple[Term, ...]]] = set()
        self._staged_constants: Set[Hashable] = set()

    def add(self, fact: Fact) -> bool:
        """Stage a fact; returns ``False`` when present in store or batch."""
        key = (fact.predicate, fact.terms)
        if key in self._staged_rows or self._store.contains_row(fact.predicate, fact.terms):
            return False
        self._staged_rows.add(key)
        self._staged.append(fact)
        for term in fact.terms:
            if isinstance(term, Constant):
                self._staged_constants.add(term.value)
        return True

    def contains_row(self, predicate: str, terms: Tuple[Term, ...]) -> bool:
        return (predicate, terms) in self._staged_rows or self._store.contains_row(
            predicate, terms
        )

    def __contains__(self, fact: Fact) -> bool:
        return self.contains_row(fact.predicate, fact.terms)

    def in_active_domain(self, value: Hashable) -> bool:
        return self._store.in_active_domain(value) or value in self._staged_constants

    def __len__(self) -> int:
        """Store size as if the batch were already applied (safety limits)."""
        return len(self._store) + len(self._staged)

    @property
    def pending(self) -> int:
        return len(self._staged)

    def apply(self) -> List[Fact]:
        """Commit the staged facts to the store, in staging order."""
        staged, self._staged = self._staged, []
        self._staged_rows = set()
        self._staged_constants = set()
        add = self._store.add
        for fact in staged:
            add(fact)
        return staged
