"""End-to-end tests of the VadalogReasoner facade on the paper's examples."""

import pytest

from repro import Database, VadalogReasoner, reason
from repro.core.chase import ChaseConfig
from repro.engine.annotations import AnnotationError, collect_bindings
from repro.core.parser import parse_program

EXAMPLE_1 = """
@output("Spouse").
Spouse(Y, X, S, L, E) :- Spouse(X, Y, S, L, E).
"""

EXAMPLE_2 = """
@output("Control").
Control(X, Y) :- Own(X, Y, W), W > 0.5.
Control(X, Z) :- Control(X, Y), Own(Y, Z, W), V = msum(W, <Y>), V > 0.5.
"""

EXAMPLE_6 = """
@output("SoftLink").
SoftLink(X, Y) :- Own(X, Y, W).
SoftLink(Y, X) :- SoftLink(X, Y).
SoftLink(X, Y) :- Own(Z, X, W1), Own(Z, Y, W2).
Own(Z, X, W1), Own(Z, Y, W2) :- Incorp(X, Y).
X1 = X2 :- Dom(*), Incorp(Y, Z), Own(X1, Y, W1), Own(X2, Z, W1).
:- Own(X, X, W).
"""


class TestPaperExamples:
    def test_example_1_symmetric_marriage(self):
        result = reason(
            EXAMPLE_1,
            database={"Spouse": [("alice", "bob", 2001, "rome", 2010)]},
        )
        tuples = result.ground_tuples("Spouse")
        assert ("bob", "alice", 2001, "rome", 2010) in tuples
        assert len(tuples) == 2

    def test_example_2_company_control(self):
        database = {
            "Own": [
                ("a", "b", 0.6),
                ("a", "d", 0.8),
                ("b", "c", 0.3),
                ("d", "c", 0.3),
            ]
        }
        result = reason(EXAMPLE_2, database=database)
        control = result.ground_tuples("Control")
        assert ("a", "b") in control and ("a", "d") in control
        # a controls c only jointly through b and d (0.3 + 0.3 > 0.5).
        assert ("a", "c") in control
        assert ("b", "c") not in control

    def test_example_3_key_person(self):
        program = """
        @output("KeyPerson").
        KeyPerson(P, X) :- Company(X).
        KeyPerson(P, Y) :- Control(X, Y), KeyPerson(P, X).
        """
        database = {
            "Company": [("a",), ("b",), ("c",)],
            "Control": [("a", "b"), ("a", "c")],
            "KeyPerson": [("Bob", "a")],
        }
        result = reason(program, database=database)
        assert result.ground_tuples("KeyPerson") == {
            ("Bob", "a"),
            ("Bob", "b"),
            ("Bob", "c"),
        }
        universal = result.tuples("KeyPerson")
        assert len(universal) > 3  # anonymous key persons for b and c exist

    def test_example_6_constraints_and_egds(self):
        database = {
            "Own": [("holding", "x", 0.5), ("holding", "y", 0.5)],
            "Incorp": [("x", "y")],
        }
        result = reason(EXAMPLE_6, database=database)
        soft_links = result.ground_tuples("SoftLink")
        assert ("x", "y") in soft_links and ("y", "x") in soft_links
        assert result.chase.violations == []

    def test_example_6_detects_self_ownership(self):
        database = {"Own": [("x", "x", 1.0)], "Incorp": []}
        result = reason(EXAMPLE_6, database=database)
        assert any(v.kind == "negative-constraint" for v in result.chase.violations)


class TestReasonerInterface:
    def test_accepts_program_object_and_database_object(self):
        program = parse_program(EXAMPLE_2)
        database = Database.from_dict({"Own": [("a", "b", 0.9)]})
        reasoner = VadalogReasoner(program)
        result = reasoner.reason(database=database)
        assert ("a", "b") in result.ground_tuples("Control")

    def test_certain_flag_drops_nulls(self):
        program = """
        @output("HasBoss").
        HasBoss(X, B) :- Employee(X).
        """
        result = reason(program, database={"Employee": [("emma",)]}, certain=True)
        assert result.answers.count("HasBoss") == 0
        universal = reason(program, database={"Employee": [("emma",)]}, certain=False)
        assert universal.answers.count("HasBoss") == 1

    def test_outputs_override(self):
        result = reason(
            EXAMPLE_2,
            database={"Own": [("a", "b", 0.9)]},
            outputs=["Control", "Own"],
        )
        assert result.answers.count("Own") == 1

    def test_explain_mentions_fragment_and_plan(self):
        reasoner = VadalogReasoner(EXAMPLE_2)
        text = reasoner.explain()
        assert "fragment" in text
        assert "Reasoning access plan" in text

    def test_strategy_override_per_reason_call(self):
        reasoner = VadalogReasoner(EXAMPLE_2)
        result = reasoner.reason(
            database={"Own": [("a", "b", 0.9)]}, strategy="trivial-isomorphism"
        )
        assert result.chase.strategy.name == "trivial-isomorphism"

    def test_non_warded_program_warns(self):
        program = """
        @output("Out").
        P(X, H) :- S(X).
        Q(Y, H) :- P(Y, H).
        Out(H) :- P(X, H), Q(Y, H).
        """
        reasoner = VadalogReasoner(program)
        assert any("not warded" in w for w in reasoner.warnings)

    def test_unsupported_harmful_join_warns_but_runs(self):
        program = """
        @output("StrongLink").
        PSC(X, P) :- Company(X).
        PSC(X, P) :- Control(Y, X), PSC(Y, P).
        StrongLink(X, Y, W) :- PSC(X, P), PSC(Y, P), W = mcount(P), W >= 1.
        """
        result = reason(program, database={"Company": [("a",), ("b",)], "Control": [("a", "b")]})
        assert any("harmful-join elimination skipped" in w for w in result.warnings)
        assert result.chase.rounds > 0

    def test_chase_config_limits_respected(self):
        from repro.core.chase import ChaseLimitError

        program = """
        @output("T").
        T(X, Y) :- E(X, Y).
        T(X, Z) :- T(X, Y), E(Y, Z).
        """
        edges = {"E": [(f"n{i}", f"n{i+1}") for i in range(40)]}
        reasoner = VadalogReasoner(program, chase_config=ChaseConfig(max_rounds=2))
        with pytest.raises(ChaseLimitError):
            reasoner.reason(database=edges)

    def test_timings_and_stats_exposed(self):
        result = reason(EXAMPLE_2, database={"Own": [("a", "b", 0.9)]})
        stats = result.stats()
        assert "time_total" in stats and stats["facts"] >= 2


class TestAnnotations:
    def test_csv_bind_loads_facts(self, tmp_path):
        csv_path = tmp_path / "own.csv"
        csv_path.write_text("a,b,0.9\nb,c,0.8\n")
        program = f"""
        @bind("Own", "csv", "own.csv").
        @output("Control").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        """
        reasoner = VadalogReasoner(program, base_path=str(tmp_path))
        result = reasoner.reason()
        assert result.ground_tuples("Control") == {("a", "b"), ("b", "c")}

    def test_post_certain_directive(self):
        program = """
        @output("HasBoss").
        @post("HasBoss", "certain").
        HasBoss(X, B) :- Employee(X).
        """
        result = reason(program, database={"Employee": [("e1",)]})
        assert result.answers.count("HasBoss") == 0

    def test_post_limit_directive(self):
        program = """
        @output("Copy").
        @post("Copy", "limit", 1).
        Copy(X) :- Item(X).
        """
        result = reason(program, database={"Item": [("a",), ("b",), ("c",)]})
        assert result.answers.count("Copy") == 1

    def test_malformed_bind_raises(self):
        program = parse_program('@bind("Own", "csv").\nP(X) :- Own(X).')
        with pytest.raises(AnnotationError):
            collect_bindings(program)

    def test_unsupported_post_operation(self):
        program = parse_program('@post("P", "explode").\nP(X) :- Q(X).')
        with pytest.raises(AnnotationError):
            collect_bindings(program)
