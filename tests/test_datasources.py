"""Tests for the multi-backend datasource layer (``@bind`` → SQLite/CSV/JSONL).

Covers the registry and its error surface (unknown backend, missing file,
arity mismatch — the resolution failures a user hits first), the pushdown
compiler's soundness rules, the LRU page cache, ``@output`` writeback, and
the end-to-end equivalence of the in-memory and SQLite backends on the
companies and DBpedia workloads across the materializing and streaming
executors.
"""

import sqlite3

import pytest

from repro.core.parser import parse_program
from repro.engine.annotations import (
    AnnotationError,
    collect_bindings,
)
from repro.engine.plan import compile_source_pushdowns
from repro.engine.reasoner import VadalogReasoner
from repro.storage.database import Database
from repro.storage.datasources import (
    CsvDataSource,
    DataSourceError,
    InMemoryDataSource,
    JsonlDataSource,
    Pushdown,
    RetryPolicy,
    RowPageCache,
    SQLiteDataSource,
    clear_memory_relations,
    create_datasource,
    datasource_kinds,
    load_database_sqlite,
    publish_memory_relation,
    save_database_sqlite,
)
from repro.workloads import control_scenario, majority_control_scenario, psc_scenario


def make_sqlite(path, table="Own", rows=(("a", "b", 0.6), ("b", "c", 0.4))):
    with sqlite3.connect(str(path)) as conn:
        conn.execute(f"CREATE TABLE {table} (c0, c1, c2)")
        conn.executemany(f"INSERT INTO {table} VALUES (?, ?, ?)", list(rows))
    return path


# ---------------------------------------------------------------------------
# Resolution errors (annotation → source)
# ---------------------------------------------------------------------------


class TestResolutionErrors:
    def test_unknown_backend_lists_known_kinds(self):
        program = parse_program('@bind("Own", "mongodb", "own.bson").\nP(X) :- Own(X).')
        with pytest.raises(AnnotationError) as err:
            collect_bindings(program)
        message = str(err.value)
        assert "unknown @bind source kind 'mongodb'" in message
        for kind in datasource_kinds():
            assert kind in message

    def test_missing_csv_file(self, tmp_path):
        program = parse_program(
            '@bind("Own", "csv", "nope.csv").\nP(X) :- Own(X).'
        )
        with pytest.raises(AnnotationError) as err:
            collect_bindings(program, base_path=str(tmp_path))
        assert "does not exist" in str(err.value)
        assert "nope.csv" in str(err.value)

    def test_missing_sqlite_file(self, tmp_path):
        program = parse_program(
            '@bind("Own", "sqlite", "nope.db").\nP(X) :- Own(X, Y, W).'
        )
        with pytest.raises(AnnotationError, match="does not exist"):
            collect_bindings(program, base_path=str(tmp_path))

    def test_missing_sqlite_table(self, tmp_path):
        make_sqlite(tmp_path / "data.db", table="Other")
        program = parse_program(
            '@bind("Own", "sqlite", "data.db").\nP(X) :- Own(X, Y, W).'
        )
        with pytest.raises(AnnotationError, match="table 'Own' does not exist"):
            collect_bindings(program, base_path=str(tmp_path))

    def test_sqlite_arity_mismatch(self, tmp_path):
        make_sqlite(tmp_path / "data.db")  # 3 columns
        program = parse_program(
            '@bind("Own", "sqlite", "data.db").\nP(X) :- Own(X, Y).'
        )
        with pytest.raises(AnnotationError) as err:
            collect_bindings(program, base_path=str(tmp_path))
        assert "arity mismatch" in str(err.value)
        assert "3 columns" in str(err.value) and "arity 2" in str(err.value)

    def test_csv_arity_mismatch_reports_row(self, tmp_path):
        (tmp_path / "own.csv").write_text("a,b\n")
        program = parse_program('@bind("Own", "csv", "own.csv").\nP(X) :- Own(X, Y, W).')
        reasoner = VadalogReasoner(program, base_path=str(tmp_path))
        with pytest.raises(AnnotationError, match="arity mismatch"):
            reasoner.reason()

    def test_unpublished_memory_relation(self):
        clear_memory_relations()
        program = parse_program('@bind("Own", "memory", "ghost").\nP(X) :- Own(X).')
        with pytest.raises(AnnotationError, match="not published"):
            collect_bindings(program)

    def test_sqlite_mapping_to_missing_column(self, tmp_path):
        make_sqlite(tmp_path / "data.db")
        program = parse_program(
            '@bind("Own", "sqlite", "data.db").\n'
            '@mapping("Own", 0, "owner_id").\n'
            "P(X) :- Own(X, Y, W)."
        )
        with pytest.raises(AnnotationError, match="lacks mapped column"):
            collect_bindings(program, base_path=str(tmp_path))

    def test_jsonl_objects_without_mapping(self, tmp_path):
        (tmp_path / "own.jsonl").write_text('{"a": 1, "b": 2}\n')
        source = JsonlDataSource("Own", tmp_path / "own.jsonl")
        with pytest.raises(DataSourceError, match="@mapping"):
            list(source.scan())

    def test_malformed_jsonl_line(self, tmp_path):
        (tmp_path / "own.jsonl").write_text("not json\n")
        source = JsonlDataSource("Own", tmp_path / "own.jsonl")
        with pytest.raises(DataSourceError, match="not valid JSON"):
            list(source.scan())


# ---------------------------------------------------------------------------
# Backends: scan, pushdown, writeback
# ---------------------------------------------------------------------------


class TestBackends:
    def test_memory_registry_roundtrip(self):
        clear_memory_relations()
        publish_memory_relation("own_rows", [("a", "b"), ("b", "c")])
        source = create_datasource("memory", "Own", "own_rows", arity=2)
        assert sorted(source.scan()) == [("a", "b"), ("b", "c")]
        assert source.stats.relation_rows == 2

    def test_csv_types_and_pushdown(self, tmp_path):
        (tmp_path / "own.csv").write_text("a,b,0.6\nb,c,0.4\n")
        source = CsvDataSource("Own", tmp_path / "own.csv")
        rows = list(source.scan(Pushdown(((2, ">", 0.5),))))
        assert rows == [("a", "b", 0.6)]
        # CSV has no native filter: all rows are read, fewer are emitted.
        assert source.stats.rows_scanned == 2
        assert source.stats.rows_emitted == 1

    def test_jsonl_roundtrip_with_columns(self, tmp_path):
        source = JsonlDataSource(
            "Own", tmp_path / "own.jsonl", columns=["src", "dst"]
        )
        source.write_rows([("a", "b"), ("b", "c")])
        assert sorted(source.scan()) == [("a", "b"), ("b", "c")]
        text = (tmp_path / "own.jsonl").read_text()
        assert '"src": "a"' in text  # objects use the mapped column names

    def test_sqlite_native_pushdown_scans_fewer_rows(self, tmp_path):
        make_sqlite(tmp_path / "data.db", rows=[("a", "b", 0.6), ("b", "c", 0.4), ("c", "d", 0.9)])
        source = SQLiteDataSource("Own", tmp_path / "data.db", table="Own")
        rows = list(source.scan(Pushdown(((2, ">", 0.5),))))
        assert sorted(rows) == [("a", "b", 0.6), ("c", "d", 0.9)]
        assert source.stats.rows_scanned == 2  # the 0.4 row never left SQLite
        assert source.stats.relation_rows == 3

    def test_sqlite_projection_reconstructs_equality_columns(self, tmp_path):
        make_sqlite(tmp_path / "data.db")
        source = SQLiteDataSource("Own", tmp_path / "data.db")
        rows = list(source.scan(Pushdown(((0, "==", "a"),))))
        assert rows == [("a", "b", 0.6)]  # col0 rebuilt from the constant

    def test_sqlite_string_ordering_falls_back_to_python(self, tmp_path):
        make_sqlite(tmp_path / "data.db")
        source = SQLiteDataSource("Own", tmp_path / "data.db")
        rows = list(source.scan(Pushdown(((1, ">", "b"),))))
        assert rows == [("b", "c", 0.4)]
        # Ordering on strings is not pushed natively: every row is fetched.
        assert source.stats.rows_scanned == 2

    def test_sqlite_writeback_roundtrip(self, tmp_path):
        source = SQLiteDataSource(
            "Control", tmp_path / "out.db", create=True, arity=2
        )
        source.write_rows([("a", "b"), ("a", "c")])
        again = SQLiteDataSource("Control", tmp_path / "out.db")
        assert sorted(again.scan()) == [("a", "b"), ("a", "c")]

    def test_save_and_load_database_sqlite(self, tmp_path):
        database = Database.from_dict(
            {"Own": [("a", "b", 0.6)], "Company": [("a",), ("b",)]}
        )
        save_database_sqlite(database, tmp_path / "db.sqlite")
        loaded = load_database_sqlite(tmp_path / "db.sqlite")
        assert sorted(loaded.relation("Company").tuples) == [("a",), ("b",)]
        assert loaded.relation("Own").tuples == [("a", "b", 0.6)]


class TestPageCache:
    def test_second_scan_served_from_cache(self, tmp_path):
        (tmp_path / "own.csv").write_text("a,b\nb,c\n")
        source = CsvDataSource("Own", tmp_path / "own.csv")
        assert list(source.scan()) == list(source.scan())
        assert source.stats.cache_served_scans == 1
        assert source.stats.rows_scanned == 2  # the file was read only once

    def test_cache_keyed_by_pushdown(self, tmp_path):
        (tmp_path / "own.csv").write_text("a,b\nb,c\n")
        source = CsvDataSource("Own", tmp_path / "own.csv")
        filtered = Pushdown(((0, "==", "a"),))
        assert list(source.scan(filtered)) == [("a", "b")]
        assert list(source.scan()) == [("a", "b"), ("b", "c")]
        assert list(source.scan(filtered)) == [("a", "b")]
        assert source.stats.cache_served_scans == 1

    def test_abandoned_scan_is_not_cached(self, tmp_path):
        (tmp_path / "own.csv").write_text("a,b\nb,c\n")
        source = CsvDataSource("Own", tmp_path / "own.csv")
        next(iter(source.scan()))  # pull one row, drop the cursor
        assert list(source.scan()) == [("a", "b"), ("b", "c")]
        assert source.stats.cache_served_scans == 0

    def test_lru_eviction_counts_pages(self):
        cache = RowPageCache(page_size=2, max_pages=2)
        stats = InMemoryDataSource("P", []).stats
        cache.put(("a",), [(1,), (2,), (3,)], stats)  # 2 pages
        cache.put(("b",), [(4,)], stats)  # 1 page -> evicts ("a",)
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) is not None
        assert stats.pages_evicted == 2

    def test_writeback_invalidates_cache(self, tmp_path):
        source = JsonlDataSource("P", tmp_path / "p.jsonl")
        source.write_rows([(1,)])
        assert list(source.scan()) == [(1,)]
        source.write_rows([(2,)])
        assert list(source.scan()) == [(2,)]

    def test_repeated_reason_serves_sources_from_cache(self, tmp_path):
        make_sqlite(tmp_path / "in.db")
        program = """
        @bind("Own", "sqlite", "in.db").
        @output("Control").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        """
        reasoner = VadalogReasoner(program, base_path=str(tmp_path))
        first = reasoner.reason()
        second = reasoner.reason()
        assert first.ground_tuples("Control") == second.ground_tuples("Control")
        own = second.source_stats["Own"]
        assert own["cache_served_scans"] == 1   # second run never hit SQLite
        assert own["rows_scanned"] == 1         # lifetime counter: one real scan


# ---------------------------------------------------------------------------
# Pushdown compilation soundness
# ---------------------------------------------------------------------------


class TestPushdownCompilation:
    def compile(self, text, predicates=("Own",)):
        return compile_source_pushdowns(parse_program(text), predicates)

    def test_constraint_on_every_occurrence_is_pushed(self):
        pushdowns = self.compile(
            """
            Control(X, Y) :- Own(X, Y, W), W > 0.5.
            Control(X, Z) :- Control(X, Y), Own(Y, Z, W), W > 0.5.
            """
        )
        assert pushdowns["Own"].constraints == ((2, ">", 0.5),)

    def test_unconstrained_occurrence_vetoes_pushdown(self):
        pushdowns = self.compile(
            """
            Control(X, Y) :- Own(X, Y, W), W > 0.5.
            Holds(X, Z) :- Own(X, Z, W).
            """
        )
        assert "Own" not in pushdowns

    def test_ground_terms_become_equalities(self):
        pushdowns = self.compile('P(X) :- Own(X, "acme", W), W >= 0.1.')
        assert set(pushdowns["Own"].constraints) == {(1, "==", "acme"), (2, ">=", 0.1)}

    def test_idb_and_output_predicates_excluded(self):
        pushdowns = self.compile(
            """
            @output("Own").
            Own(X, Y, W) :- Base(X, Y, W).
            P(X) :- Own(X, Y, W), W > 0.5.
            """
        )
        assert pushdowns == {}

    def test_constraint_body_vetoes_pushdown(self):
        pushdowns = self.compile(
            """
            P(X) :- Own(X, Y, W), W > 0.5.
            :- Own(X, X, W).
            """
        )
        assert "Own" not in pushdowns

    def test_aggregate_condition_not_pushed(self):
        # V constrains the aggregate result, not the Own column it reads.
        pushdowns = self.compile(
            "P(X, V) :- Own(X, Y, W), V = msum(W, <Y>), V > 0.5."
        )
        assert "Own" not in pushdowns

    def test_pushdown_matches_mirrors_engine_semantics(self):
        pushdown = Pushdown(((0, ">", 5),))
        assert pushdown.matches((7,))
        assert not pushdown.matches((3,))
        assert not pushdown.matches(("string",))  # TypeError -> reject


# ---------------------------------------------------------------------------
# End-to-end: workloads from SQLite on both executors
# ---------------------------------------------------------------------------


def run_scenario(scenario, executor):
    reasoner = VadalogReasoner(
        scenario.program.copy(), executor=executor, base_path=scenario.base_path
    )
    return reasoner.reason(database=scenario.database, outputs=scenario.outputs)


@pytest.mark.parametrize("executor", ["compiled", "streaming"])
class TestBackendEquivalence:
    def test_companies_control(self, tmp_path, executor):
        memory = run_scenario(control_scenario(30), executor)
        sqlite_run = run_scenario(
            control_scenario(30, backend="sqlite", data_dir=tmp_path), executor
        )
        assert memory.ground_tuples("Control") == sqlite_run.ground_tuples("Control")
        assert memory.answers.count("Control") == sqlite_run.answers.count("Control")

    def test_dbpedia_psc(self, tmp_path, executor):
        memory = run_scenario(psc_scenario(30, 20), executor)
        sqlite_run = run_scenario(
            psc_scenario(30, 20, backend="sqlite", data_dir=tmp_path), executor
        )
        assert memory.ground_tuples("PSC") == sqlite_run.ground_tuples("PSC")

    def test_majority_control_pushdown(self, tmp_path, executor):
        memory = run_scenario(majority_control_scenario(30), executor)
        sqlite_run = run_scenario(
            majority_control_scenario(30, backend="sqlite", data_dir=tmp_path),
            executor,
        )
        assert memory.ground_tuples("Control") == sqlite_run.ground_tuples("Control")
        own = sqlite_run.source_stats["Own"]
        assert own["pushdown"] == "col2 > 0.5"
        assert own["rows_scanned"] < own["relation_rows"]

    def test_requested_bound_predicate_disables_pushdown(self, tmp_path, executor):
        # Asking for Own itself must serve the full relation even though the
        # program's rules would allow a W > 0.5 pushdown.
        memory_scenario = majority_control_scenario(20)
        expected = VadalogReasoner(
            memory_scenario.program.copy(), executor=executor
        ).reason(database=memory_scenario.database, outputs=["Own"])
        scenario = majority_control_scenario(20, backend="sqlite", data_dir=tmp_path)
        result = VadalogReasoner(
            scenario.program.copy(), executor=executor, base_path=scenario.base_path
        ).reason(database=scenario.database, outputs=["Own"])
        assert result.ground_tuples("Own") == expected.ground_tuples("Own")
        assert len(result.ground_tuples("Own")) > 10  # the full relation
        assert result.source_stats["Own"]["pushdown"] is None

    def test_streaming_prunes_unused_source(self, tmp_path, executor):
        scenario = control_scenario(20, backend="sqlite", data_dir=tmp_path)
        result = run_scenario(scenario, executor)
        company = result.source_stats["Company"]
        if executor == "streaming":
            # Company feeds no rule in the slice: its table is never read.
            assert company["rows_scanned"] == 0 and company["scans"] == 0
        else:
            assert company["rows_scanned"] > 0


class TestWriteback:
    def test_output_bind_writes_certain_answers(self, tmp_path):
        make_sqlite(tmp_path / "in.db")
        program = """
        @bind("Own", "sqlite", "in.db").
        @bind("Control", "csv", "control.csv").
        @output("Control").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        """
        result = VadalogReasoner(program, base_path=str(tmp_path)).reason()
        assert (tmp_path / "control.csv").read_text().strip() == "a,b"
        assert result.source_stats["Control"]["rows_written"] == 1
        assert result.source_stats["Control"]["direction"] == "output"

    def test_null_answers_are_skipped_and_counted(self, tmp_path):
        program = """
        @bind("WorksIn", "csv", "worksin.csv").
        @output("WorksIn").
        WorksIn(E, D) :- Employee(E).
        """
        result = VadalogReasoner(program, base_path=str(tmp_path)).reason(
            database={"Employee": [("e1",)]}
        )
        assert (tmp_path / "worksin.csv").read_text() == ""
        assert result.source_stats["WorksIn"]["rows_skipped_nulls"] == 1

    def test_unrequested_output_bind_is_not_wiped(self, tmp_path):
        make_sqlite(tmp_path / "in.db")
        program = """
        @bind("Own", "sqlite", "in.db").
        @bind("Control", "csv", "control.csv").
        @output("Control").
        @output("Strong").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        Strong(X, Y) :- Own(X, Y, W), W > 0.3.
        """
        reasoner = VadalogReasoner(program, base_path=str(tmp_path))
        reasoner.reason()
        assert (tmp_path / "control.csv").read_text().strip() == "a,b"
        # A later run asking only for Strong must not truncate control.csv.
        reasoner.reason(outputs=["Strong"])
        assert (tmp_path / "control.csv").read_text().strip() == "a,b"

    def test_memory_writeback_updates_published_relation(self):
        clear_memory_relations()
        publish_memory_relation("q_rows", [("a",), ("b",)])
        publish_memory_relation("p_rows", [])
        program = """
        @bind("Q", "memory", "q_rows").
        @bind("P", "memory", "p_rows").
        @output("P").
        P(X) :- Q(X).
        """
        from repro.storage.datasources import _MEMORY_RELATIONS

        result = VadalogReasoner(program).reason()
        assert result.source_stats["P"]["rows_written"] == 2
        assert sorted(_MEMORY_RELATIONS["p_rows"]) == [("a",), ("b",)]

    def test_streaming_lazy_run_writes_back_on_complete(self, tmp_path):
        make_sqlite(tmp_path / "in.db")
        program = """
        @bind("Own", "sqlite", "in.db").
        @bind("Control", "jsonl", "control.jsonl").
        @output("Control").
        Control(X, Y) :- Own(X, Y, W), W > 0.5.
        """
        reasoner = VadalogReasoner(
            program, executor="streaming", base_path=str(tmp_path)
        )
        lazy = reasoner.stream()
        assert not (tmp_path / "control.jsonl").exists()
        lazy.complete()
        assert (tmp_path / "control.jsonl").read_text().strip() == '["a", "b"]'


# ---------------------------------------------------------------------------
# Error paths and the retry policy (robustness layer)
# ---------------------------------------------------------------------------


class FlakyCsvDataSource(CsvDataSource):
    """A CSV source that raises a transient OSError mid-scan, once."""

    def __init__(self, *args, fail_after_rows=2, failures=1, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_after_rows = fail_after_rows
        self.failures_left = failures

    def _scan_rows(self, pushdown):
        count = 0
        for row in super()._scan_rows(pushdown):
            yield row
            count += 1
            if count == self.fail_after_rows and self.failures_left:
                self.failures_left -= 1
                raise OSError("simulated transient I/O failure")


class TestRetryPolicy:
    def fast_policy(self, attempts=3):
        return RetryPolicy(attempts=attempts, base_delay=0.001)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.05, multiplier=2.0, max_delay=0.15)
        assert policy.delay_for(1) == pytest.approx(0.05)
        assert policy.delay_for(2) == pytest.approx(0.10)
        assert policy.delay_for(3) == pytest.approx(0.15)  # capped
        assert policy.delay_for(10) == pytest.approx(0.15)

    def test_transient_failure_mid_scan_resumes_without_duplicates(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("".join(f"{i},{i + 1}\n" for i in range(10)))
        source = FlakyCsvDataSource(
            "E", path, fail_after_rows=4, retry_policy=self.fast_policy()
        )
        rows = list(source.scan())
        assert rows == [(i, i + 1) for i in range(10)]
        assert source.stats.retries == 1
        assert source.stats.retry_giveups == 0

    def test_retry_exhaustion_raises_datasource_error(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("1,2\n")
        source = FlakyCsvDataSource(
            "E",
            path,
            fail_after_rows=1,
            failures=99,
            retry_policy=self.fast_policy(attempts=2),
        )
        with pytest.raises(DataSourceError) as err:
            list(source.scan())
        assert "failed after 3 attempts" in str(err.value)
        assert isinstance(err.value.__cause__, OSError)
        assert source.stats.retries == 2
        assert source.stats.retry_giveups == 1

    def test_file_vanishing_between_retries_is_not_retried(self, tmp_path):
        # First attempt dies with a transient OSError; before the retry the
        # file disappears.  The retry's missing-file DataSourceError is
        # semantic, not transient: it propagates immediately.
        path = tmp_path / "edges.csv"
        path.write_text("1,2\n2,3\n")

        class VanishingCsv(FlakyCsvDataSource):
            def _scan_rows(self, pushdown):
                if self.failures_left:
                    self.failures_left = 0
                    yield (1, 2)
                    path.unlink()
                    raise OSError("disk detached")
                yield from super()._scan_rows(pushdown)

        source = VanishingCsv("E", path, retry_policy=self.fast_policy())
        with pytest.raises(DataSourceError, match="not found"):
            list(source.scan())
        assert source.stats.retries == 1
        assert source.stats.retry_giveups == 0

    def test_malformed_csv_row_is_not_retried(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\nc\n")  # second row has the wrong arity
        source = CsvDataSource("P", path, arity=2, retry_policy=self.fast_policy())
        with pytest.raises(DataSourceError, match="arity mismatch"):
            list(source.scan())
        assert source.stats.retries == 0

    def test_malformed_jsonl_line_is_not_retried(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('["a", "b"]\n{not json\n')
        source = JsonlDataSource("P", path, retry_policy=self.fast_policy())
        with pytest.raises(DataSourceError, match="not valid JSON"):
            list(source.scan())
        assert source.stats.retries == 0

    def test_missing_file_at_scan_start_is_not_retried(self, tmp_path):
        source = CsvDataSource(
            "P", tmp_path / "nope.csv", retry_policy=self.fast_policy()
        )
        with pytest.raises(DataSourceError, match="not found"):
            list(source.scan())
        assert source.stats.retries == 0
        assert source.stats.retry_giveups == 0

    def test_sqlite_lock_contention_is_absorbed(self, tmp_path):
        import threading

        path = make_sqlite(tmp_path / "locked.db")
        source = SQLiteDataSource(
            "Own",
            path,
            busy_timeout=0.05,
            retry_policy=RetryPolicy(attempts=10, base_delay=0.05),
        )
        blocker = sqlite3.connect(str(path), check_same_thread=False)
        blocker.execute("BEGIN EXCLUSIVE")
        release = threading.Timer(0.4, blocker.commit)
        release.start()
        try:
            rows = list(source.scan())
        finally:
            release.cancel()
            blocker.close()
        assert sorted(rows) == [("a", "b", 0.6), ("b", "c", 0.4)]
        assert source.stats.retries >= 1
        assert source.stats.retry_giveups == 0

    def test_sqlite_lock_exhaustion_raises_datasource_error(self, tmp_path):
        path = make_sqlite(tmp_path / "locked.db")
        source = SQLiteDataSource(
            "Own",
            path,
            busy_timeout=0.01,
            retry_policy=RetryPolicy(attempts=2, base_delay=0.001),
        )
        blocker = sqlite3.connect(str(path))
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            with pytest.raises(DataSourceError, match="failed after 3 attempts"):
                list(source.scan())
        finally:
            blocker.rollback()
            blocker.close()
        assert source.stats.retry_giveups == 1

    def test_retry_counters_surface_in_stats_dict(self, tmp_path):
        path = tmp_path / "edges.csv"
        path.write_text("1,2\n")
        source = FlakyCsvDataSource(
            "E", path, fail_after_rows=1, retry_policy=self.fast_policy()
        )
        list(source.scan())
        stats = source.stats.as_dict()
        assert stats["retries"] == 1
        assert stats["retry_giveups"] == 0
